//! Smoke tests over the figure harness: each figure regenerates on a
//! reduced workload and reproduces the paper's qualitative shape.

use experiments::figures::{self, FigureConfig};
use librisk::prelude::PolicyKind;

fn cfg() -> FigureConfig {
    FigureConfig {
        jobs: 300,
        seeds: vec![1],
        threads: experiments::sweep::default_threads(),
    }
}

#[test]
fn fig1_shape_matches_paper() {
    let fig = figures::fig1(&cfg());
    assert_eq!(fig.panels.len(), 4);
    let trace_fulfilled = &fig.panels[1].series;
    let curve = |name: &str| -> Vec<(f64, f64)> {
        trace_fulfilled
            .iter()
            .find(|s| s.name() == name)
            .unwrap()
            .mean_points()
    };
    let librarisk = curve("LibraRisk");
    let libra = curve("Libra");
    let edf = curve("EDF");
    // Fulfilled % grows as workload lightens (first point vs last point).
    assert!(librarisk.last().unwrap().1 > librarisk.first().unwrap().1);
    // LibraRisk beats Libra at light load by a clear margin (paper §5.2).
    assert!(librarisk.last().unwrap().1 > libra.last().unwrap().1 + 5.0);
    // EDF leads under the heaviest load (paper: delay factor < 0.3)…
    assert!(edf[0].1 > libra[0].1);
    // …but LibraRisk overtakes EDF as the workload lightens.
    assert!(
        librarisk.last().unwrap().1 > edf.last().unwrap().1,
        "LibraRisk {:.1}% vs EDF {:.1}% at delay factor 1.0",
        librarisk.last().unwrap().1,
        edf.last().unwrap().1
    );
    // Slowdown panels: EDF is always lowest (paper §5.1).
    for panel in [&fig.panels[2], &fig.panels[3]] {
        let sd = |name: &str| {
            panel
                .series
                .iter()
                .find(|s| s.name() == name)
                .unwrap()
                .mean_points()
                .last()
                .unwrap()
                .1
        };
        assert!(sd("EDF") <= sd("Libra") + 1e-9);
        assert!(sd("EDF") <= sd("LibraRisk") + 1e-9);
    }
}

#[test]
fn fig2_more_relaxed_deadlines_fulfil_more() {
    let fig = figures::fig2(&cfg());
    for panel in &fig.panels[..2] {
        for series in &panel.series {
            let pts = series.mean_points();
            let first = pts.first().unwrap().1;
            let last = pts.last().unwrap().1;
            if series.name() == "LibraRisk" && panel.label.contains("trace") {
                // LibraRisk's trace-estimate curve is near-flat: its
                // advantage concentrates at tight deadlines (the paper:
                // "the improvement is higher when the deadline high:low
                // ratio is low"), so only require it not to collapse.
                assert!(
                    last >= first - 10.0,
                    "LibraRisk trace curve collapsed ({first:.1} → {last:.1})"
                );
            } else {
                assert!(
                    last >= first - 2.0,
                    "{}: fulfilled % should not fall as deadlines relax ({first:.1} → {last:.1})",
                    series.name()
                );
            }
        }
    }
    // The paper's §5.3 claim: LibraRisk's improvement over Libra is
    // largest at low ratios.
    let trace_fulfilled = &fig.panels[1].series;
    let pts = |name: &str| -> Vec<(f64, f64)> {
        trace_fulfilled
            .iter()
            .find(|s| s.name() == name)
            .unwrap()
            .mean_points()
    };
    let librarisk = pts("LibraRisk");
    let libra = pts("Libra");
    let gap_first = librarisk.first().unwrap().1 - libra.first().unwrap().1;
    let gap_last = librarisk.last().unwrap().1 - libra.last().unwrap().1;
    assert!(
        gap_first > gap_last,
        "improvement must shrink as deadlines relax ({gap_first:.1} vs {gap_last:.1})"
    );
    assert!(gap_last > 0.0, "LibraRisk stays ahead of Libra everywhere");
}

#[test]
fn fig3_librarisk_rises_while_others_fall() {
    let fig = figures::fig3(&cfg());
    let trace_fulfilled = &fig.panels[1].series;
    let pts = |name: &str| -> Vec<(f64, f64)> {
        trace_fulfilled
            .iter()
            .find(|s| s.name() == name)
            .unwrap()
            .mean_points()
    };
    // Paper §5.4: with trace estimates, EDF and Libra fulfil fewer jobs
    // as urgency rises; LibraRisk holds or rises.
    let edf = pts("EDF");
    let libra = pts("Libra");
    let librarisk = pts("LibraRisk");
    assert!(edf.last().unwrap().1 < edf.first().unwrap().1 - 10.0);
    assert!(libra.last().unwrap().1 < libra.first().unwrap().1 - 10.0);
    assert!(librarisk.last().unwrap().1 > librarisk.first().unwrap().1 - 5.0);
    // And the 80 %-urgency gap over Libra exceeds the 20 % gap (≈2×).
    let gap_at = |x: f64| {
        librarisk.iter().find(|p| p.0 == x).unwrap().1 - libra.iter().find(|p| p.0 == x).unwrap().1
    };
    assert!(gap_at(80.0) > gap_at(20.0));
}

#[test]
fn fig4_librarisk_degrades_least_with_inaccuracy() {
    let fig = figures::fig4(&cfg());
    for panel in &fig.panels[..2] {
        let drop = |name: &str| {
            let pts = panel
                .series
                .iter()
                .find(|s| s.name() == name)
                .unwrap()
                .mean_points();
            pts.first().unwrap().1 - pts.last().unwrap().1
        };
        assert!(
            drop("LibraRisk") < drop("Libra"),
            "{}: LibraRisk must lose less than Libra as inaccuracy grows",
            panel.label
        );
        assert!(drop("LibraRisk") < drop("EDF") + 5.0);
    }
}

#[test]
fn ablation_covers_all_variants() {
    let fig = figures::ablation(&cfg());
    assert_eq!(fig.panels.len(), 2);
    let names: Vec<&str> = fig.panels[0].series.iter().map(|s| s.name()).collect();
    for expected in [
        "Libra",
        "LibraRisk",
        "LibraRisk-Strict",
        "LibraRisk-BestFit",
        "LibraRisk-NaiveProj",
        "Libra-SS",
        "LibraRisk-SS",
        "EDF-NoAC",
        "FCFS",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}

#[test]
fn trace_stats_table_renders() {
    let t = figures::trace_stats_table(&cfg());
    let md = t.to_markdown();
    assert!(md.contains("mean inter-arrival"));
    assert!(md.contains("3000"));
    let pk = PolicyKind::LibraRisk; // silence unused-import pattern drift
    assert_eq!(pk.name(), "LibraRisk");
}
