//! End-to-end integration: every policy over a realistic scenario, with
//! cross-crate invariants checked on the full reports.

use experiments::{EstimateRegime, Scenario};
use librisk::prelude::*;

const ALL_POLICIES: [PolicyKind; 13] = [
    PolicyKind::Edf,
    PolicyKind::EdfNoAdmission,
    PolicyKind::Fcfs,
    PolicyKind::Libra,
    PolicyKind::LibraRisk,
    PolicyKind::LibraRiskStrict,
    PolicyKind::LibraRiskBestFit,
    PolicyKind::LibraStrictShares,
    PolicyKind::LibraRiskStrictShares,
    PolicyKind::LibraRiskNaiveProjection,
    PolicyKind::EdfBackfill,
    PolicyKind::Qops,
    PolicyKind::QopsHard,
];

fn scenario() -> Scenario {
    Scenario {
        jobs: 250,
        ..Default::default()
    }
}

#[test]
fn every_policy_completes_with_consistent_accounting() {
    for policy in ALL_POLICIES {
        let report = scenario().run(policy);
        assert_eq!(report.submitted(), 250, "{policy}");
        assert_eq!(
            report.accepted() + report.rejected(),
            report.submitted(),
            "{policy}: outcomes partition the submissions"
        );
        assert!(
            report.fulfilled() <= report.accepted(),
            "{policy}: only completed jobs can be fulfilled"
        );
        assert!(
            (0.0..=100.0).contains(&report.fulfilled_pct()),
            "{policy}: percentage in range"
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&report.utilization),
            "{policy}: utilisation {} in [0,1]",
            report.utilization
        );
        if report.fulfilled() > 0 {
            assert!(
                report.avg_slowdown() >= 1.0 - 1e-9,
                "{policy}: slowdown {} cannot beat full-speed execution",
                report.avg_slowdown()
            );
        }
    }
}

#[test]
fn simulations_are_deterministic() {
    for policy in [PolicyKind::Edf, PolicyKind::Libra, PolicyKind::LibraRisk] {
        let a = scenario().run(policy);
        let b = scenario().run(policy);
        assert_eq!(a.fulfilled(), b.fulfilled(), "{policy}");
        assert_eq!(a.rejected(), b.rejected(), "{policy}");
        assert!(
            (a.avg_slowdown() - b.avg_slowdown()).abs() < 1e-12,
            "{policy}"
        );
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(
                ra.outcome, rb.outcome,
                "{policy}: per-job outcomes identical"
            );
        }
    }
}

#[test]
fn fulfilled_jobs_meet_their_deadline_exactly_by_definition() {
    for policy in ALL_POLICIES {
        let report = scenario().run(policy);
        for r in &report.records {
            if r.fulfilled() {
                let Outcome::Completed { finish, started } = r.outcome else {
                    panic!("fulfilled implies completed");
                };
                assert!(finish <= r.job.absolute_deadline(), "{policy}");
                assert!(started >= r.job.submit, "{policy}: causality");
                assert!(finish > r.job.submit, "{policy}: positive response time");
            }
        }
    }
}

#[test]
fn headline_result_librarisk_dominates_libra_under_trace_estimates() {
    let scenario = Scenario {
        jobs: 500,
        estimates: EstimateRegime::Trace,
        ..Default::default()
    };
    let libra = scenario.run(PolicyKind::Libra);
    let librarisk = scenario.run(PolicyKind::LibraRisk);
    assert!(
        librarisk.fulfilled_pct() > libra.fulfilled_pct() + 5.0,
        "LibraRisk ({:.1}%) must clearly beat Libra ({:.1}%) with trace estimates",
        librarisk.fulfilled_pct(),
        libra.fulfilled_pct()
    );
    assert!(
        librarisk.avg_slowdown() < libra.avg_slowdown(),
        "LibraRisk slowdown ({:.2}) must beat Libra ({:.2})",
        librarisk.avg_slowdown(),
        libra.avg_slowdown()
    );
}

#[test]
fn accurate_estimates_close_the_gap() {
    let scenario = Scenario {
        jobs: 500,
        estimates: EstimateRegime::Accurate,
        ..Default::default()
    };
    let libra = scenario.run(PolicyKind::Libra);
    let librarisk = scenario.run(PolicyKind::LibraRisk);
    assert!(
        (librarisk.fulfilled_pct() - libra.fulfilled_pct()).abs() < 3.0,
        "with accurate estimates LibraRisk ({:.1}%) ≈ Libra ({:.1}%)",
        librarisk.fulfilled_pct(),
        libra.fulfilled_pct()
    );
}

#[test]
fn strict_risk_ablation_collapses_to_libra_like_behaviour() {
    let scenario = Scenario {
        jobs: 400,
        estimates: EstimateRegime::Trace,
        ..Default::default()
    };
    let libra = scenario.run(PolicyKind::Libra);
    let strict = scenario.run(PolicyKind::LibraRiskStrict);
    let librarisk = scenario.run(PolicyKind::LibraRisk);
    // The strict (mu = 1) variant gives up the over-estimation tolerance:
    // it should land near Libra and clearly below LibraRisk.
    assert!(
        (strict.fulfilled_pct() - libra.fulfilled_pct()).abs() < 6.0,
        "strict {:.1}% vs libra {:.1}%",
        strict.fulfilled_pct(),
        libra.fulfilled_pct()
    );
    assert!(
        librarisk.fulfilled_pct() > strict.fulfilled_pct() + 5.0,
        "librarisk {:.1}% vs strict {:.1}%",
        librarisk.fulfilled_pct(),
        strict.fulfilled_pct()
    );
}

#[test]
fn no_admission_control_baselines_are_much_worse_under_load() {
    let scenario = Scenario {
        jobs: 400,
        arrival_delay_factor: 0.2, // heavy workload
        estimates: EstimateRegime::Trace,
        ..Default::default()
    };
    let edf = scenario.run(PolicyKind::Edf);
    let edf_noac = scenario.run(PolicyKind::EdfNoAdmission);
    let fcfs = scenario.run(PolicyKind::Fcfs);
    assert!(
        edf.fulfilled_pct() > edf_noac.fulfilled_pct() + 10.0,
        "EDF {:.1}% vs EDF-NoAC {:.1}%: admission control must matter under load",
        edf.fulfilled_pct(),
        edf_noac.fulfilled_pct()
    );
    assert!(
        edf.fulfilled_pct() > fcfs.fulfilled_pct() + 10.0,
        "EDF {:.1}% vs FCFS {:.1}%",
        edf.fulfilled_pct(),
        fcfs.fulfilled_pct()
    );
}

#[test]
fn churn_degrades_fulfilment_and_requeue_recovers_part_of_it() {
    let span = 250.0 * workload::params::MEAN_INTER_ARRIVAL_SECS;
    let churned = |recovery: RecoveryPolicy| Scenario {
        node_mtbf: span / 3.0,
        node_mttr: span / 30.0,
        recovery,
        ..scenario()
    };
    for policy in [PolicyKind::LibraRisk, PolicyKind::Edf, PolicyKind::Qops] {
        let calm = scenario().run(policy);
        let kill = churned(RecoveryPolicy::Kill).run(policy);
        let requeue = churned(RecoveryPolicy::Requeue).run(policy);
        assert!(calm.churn.is_empty(), "{policy}: fault-free run is clean");
        assert!(
            kill.churn.kills > 0,
            "{policy}: an ~83-failure plan must hit resident jobs"
        );
        assert!(
            kill.fulfilled_pct() < calm.fulfilled_pct(),
            "{policy}: churn must cost fulfilment ({:.1}% vs {:.1}%)",
            kill.fulfilled_pct(),
            calm.fulfilled_pct()
        );
        assert_eq!(requeue.churn.kills, 0, "{policy}: requeue never kills");
        assert!(
            requeue.churn.requeues > 0,
            "{policy}: displaced jobs are re-admitted"
        );
        // Accounting stays a partition of the submissions in every mode.
        for r in [&kill, &requeue] {
            assert_eq!(r.accepted() + r.rejected(), r.submitted(), "{policy}");
        }
    }
}

#[test]
fn rejected_jobs_never_execute_and_accepted_jobs_always_finish() {
    for policy in [PolicyKind::Libra, PolicyKind::LibraRisk, PolicyKind::Edf] {
        let report = scenario().run(policy);
        for r in &report.records {
            match r.outcome {
                Outcome::Rejected { at, .. } => {
                    assert!(at >= r.job.submit, "{policy}: rejection after submission");
                }
                Outcome::Completed { started, finish } => {
                    assert!(
                        finish > started || r.job.runtime.as_secs() < 1e-3,
                        "{policy}"
                    );
                }
                Outcome::Killed { .. } => {
                    unreachable!("{policy}: no fault plan, nothing can be killed")
                }
            }
        }
    }
}
