//! Integration tests for the extension systems built around the paper:
//! QoPS soft deadlines, EDF backfilling, the Libra budget economy,
//! Computation-at-Risk analytics, and the projection ablation.

use experiments::{EstimateRegime, Scenario};
use librisk::prelude::*;
use librisk::{
    computation_at_risk, run_qops, BudgetModel, CarMeasure, Libra, LibraBudget, LibraRisk,
    PricingModel, QopsConfig,
};
use sim::Rng64;

fn scenario(jobs: usize) -> Scenario {
    Scenario {
        jobs,
        ..Default::default()
    }
}

#[test]
fn qops_slack_buys_acceptance_at_scale() {
    let trace = scenario(400).build_trace();
    let cluster = Cluster::sdsc_sp2();
    let hard = run_qops(cluster.clone(), QopsConfig { slack_factor: 1.0 }, &trace);
    let soft = run_qops(cluster.clone(), QopsConfig { slack_factor: 1.5 }, &trace);
    assert!(
        soft.accepted() >= hard.accepted(),
        "slack 1.5 accepted {} < slack 1.0 accepted {}",
        soft.accepted(),
        hard.accepted()
    );
    // The soft controller books more work overall…
    assert!(soft.accepted() > 0 && hard.accepted() > 0);
    // …and both remain internally consistent.
    for r in [&hard, &soft] {
        assert_eq!(r.accepted() + r.rejected(), r.submitted());
        assert!(r.fulfilled() <= r.accepted());
    }
}

#[test]
fn backfilling_never_hurts_waiting_narrow_jobs_much() {
    let s = scenario(400);
    let plain = s.run(PolicyKind::Edf);
    let backfill = s.run(PolicyKind::EdfBackfill);
    // Aggressive backfilling reuses idle processors: average slowdown of
    // fulfilled jobs must not regress.
    assert!(
        backfill.avg_slowdown() <= plain.avg_slowdown() + 0.05,
        "backfill slowdown {:.2} vs plain {:.2}",
        backfill.avg_slowdown(),
        plain.avg_slowdown()
    );
    // And fulfilment stays in the same neighbourhood or better.
    assert!(backfill.fulfilled_pct() >= plain.fulfilled_pct() - 2.0);
}

#[test]
fn budget_gate_composes_with_both_share_policies() {
    let s = scenario(300);
    let trace = s.build_trace();
    let budgets = BudgetModel::default().assign(&mut Rng64::new(3), trace.jobs());
    let cluster = s.cluster();
    let cfg = cluster::proportional::ProportionalConfig::default();

    let mut libra = LibraBudget::new(Libra::new(), PricingModel::default(), budgets.clone());
    let libra_report = librisk::run_proportional(cluster.clone(), cfg, &mut libra, &trace);
    let mut risk = LibraBudget::new(LibraRisk::paper(), PricingModel::default(), budgets);
    let risk_report = librisk::run_proportional(cluster.clone(), cfg, &mut risk, &trace);

    // Identical budgets → identical budget-rejection counts (the gate
    // fires before the share policy sees the job).
    assert_eq!(libra.budget_rejections(), risk.budget_rejections());
    assert!(
        libra.budget_rejections() > 0,
        "some users must be priced out"
    );
    // The risk test monetises the budget-feasible remainder at least as
    // well as the share test.
    assert!(risk.revenue() >= libra.revenue());
    assert!(risk_report.accepted() >= libra_report.accepted());
    // Revenue only comes from accepted jobs.
    assert!(risk.revenue() > 0.0);
    assert_eq!(
        libra_report.submitted(),
        libra_report.accepted() + libra_report.rejected()
    );
}

#[test]
fn car_profile_is_consistent_with_the_report() {
    let report = scenario(300).run(PolicyKind::LibraRisk);
    let car =
        computation_at_risk(&report, CarMeasure::ExpansionFactor, 0.95).expect("jobs completed");
    assert_eq!(car.jobs, report.accepted());
    // The mean expansion factor over completed jobs must dominate the
    // fulfilled-only average slowdown report metric is computed over a
    // subset — but both are ≥ 1.
    assert!(car.mean >= 1.0);
    assert!(report.avg_slowdown() >= 1.0);
    // Tail ordering.
    assert!(car.value_at_risk >= car.mean * 0.5);
    assert!(car.expected_shortfall >= car.value_at_risk);

    // The realised deadline-delay measure floors at 1 (Eq. 4).
    let dd = computation_at_risk(&report, CarMeasure::DeadlineDelay, 0.5).unwrap();
    assert!(dd.mean >= 1.0);
    assert!(dd.value_at_risk >= 1.0);
}

#[test]
fn naive_projection_over_admits_and_collapses() {
    let s = Scenario {
        jobs: 400,
        estimates: EstimateRegime::Trace,
        ..Default::default()
    };
    let paper = s.run(PolicyKind::LibraRisk);
    let naive = s.run(PolicyKind::LibraRiskNaiveProjection);
    // The frozen-rate projection sees zero risk on any node without late
    // jobs, so early on it over-admits heavily; the resulting pile-up of
    // late jobs is what its σ-test reacts to *afterwards* (late jobs do
    // disperse even under the naive projection). Net effect: far more
    // completed-but-late jobs and a collapsed fulfilment rate.
    assert!(
        naive.delayed() > 2 * paper.delayed(),
        "naive delayed {} vs paper {}",
        naive.delayed(),
        paper.delayed()
    );
    assert!(
        naive.fulfilled_pct() + 20.0 < paper.fulfilled_pct(),
        "naive {:.1}% vs paper {:.1}%",
        naive.fulfilled_pct(),
        paper.fulfilled_pct()
    );
}

#[test]
fn qops_soft_deadline_holders_exceed_hard_deadline_holders() {
    // Count jobs that met the *soft* deadline (1.2×) vs the hard one:
    // the soft set must contain the hard set.
    let trace = scenario(300).build_trace();
    let report = run_qops(
        Cluster::sdsc_sp2(),
        QopsConfig { slack_factor: 1.2 },
        &trace,
    );
    let mut hard_ok = 0;
    let mut soft_ok = 0;
    for r in &report.records {
        if let Outcome::Completed { finish, .. } = r.outcome {
            let resp = (finish - r.job.submit).as_secs();
            if resp <= r.job.deadline.as_secs() {
                hard_ok += 1;
            }
            if resp <= 1.2 * r.job.deadline.as_secs() {
                soft_ok += 1;
            }
        }
    }
    assert_eq!(hard_ok, report.fulfilled());
    assert!(soft_ok >= hard_ok);
}
