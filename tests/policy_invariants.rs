//! Property-based invariants over randomly generated workloads.
//!
//! These run every policy over arbitrary mini-traces (arbitrary runtimes,
//! estimate errors in both directions, deadline factors, widths and
//! arrival gaps) and check the properties that must hold for *any* input,
//! not just the paper's workload.

use librisk::prelude::*;
use proptest::prelude::*;
use sim::{SimDuration, SimTime};

#[derive(Debug, Clone)]
struct RawJob {
    gap: f64,
    runtime: f64,
    est_factor: f64,
    procs: u32,
    deadline_factor: f64,
}

fn raw_job() -> impl Strategy<Value = RawJob> {
    (
        0.0..3000.0f64,    // inter-arrival gap
        10.0..20_000.0f64, // runtime
        0.3..8.0f64,       // estimate factor (under- and over-estimates)
        1u32..6,           // processors
        1.05..9.0f64,      // deadline factor (> 1, per the paper)
    )
        .prop_map(
            |(gap, runtime, est_factor, procs, deadline_factor)| RawJob {
                gap,
                runtime,
                est_factor,
                procs,
                deadline_factor,
            },
        )
}

fn build_trace(raw: &[RawJob]) -> Trace {
    let mut clock = 0.0;
    let jobs: Vec<Job> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            clock += r.gap;
            Job {
                id: JobId(i as u64),
                submit: SimTime::from_secs(clock),
                runtime: SimDuration::from_secs(r.runtime),
                estimate: SimDuration::from_secs(r.runtime * r.est_factor),
                procs: r.procs,
                deadline: SimDuration::from_secs(r.runtime * r.deadline_factor),
                urgency: if r.deadline_factor < 3.0 {
                    Urgency::High
                } else {
                    Urgency::Low
                },
            }
        })
        .collect();
    Trace::new(jobs)
}

const POLICIES: [PolicyKind; 7] = [
    PolicyKind::Edf,
    PolicyKind::EdfBackfill,
    PolicyKind::Fcfs,
    PolicyKind::Libra,
    PolicyKind::LibraRisk,
    PolicyKind::LibraStrictShares,
    PolicyKind::Qops,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_terminates_with_complete_accounting(
        raw in proptest::collection::vec(raw_job(), 1..40)
    ) {
        let trace = build_trace(&raw);
        let cluster = Cluster::homogeneous(8, 168.0);
        for policy in POLICIES {
            let report = policy.run(&cluster, &trace);
            prop_assert_eq!(report.submitted(), trace.len());
            prop_assert_eq!(report.accepted() + report.rejected(), report.submitted());
            prop_assert!(report.fulfilled() <= report.accepted());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&report.utilization));
        }
    }

    #[test]
    fn completions_respect_physics(
        raw in proptest::collection::vec(raw_job(), 1..30)
    ) {
        let trace = build_trace(&raw);
        let cluster = Cluster::homogeneous(8, 168.0);
        for policy in POLICIES {
            let report = policy.run(&cluster, &trace);
            for r in &report.records {
                if let Outcome::Completed { started, finish } = r.outcome {
                    // A job can never finish faster than its runtime at
                    // full speed on reference-rating nodes.
                    let elapsed = (finish - started).as_secs();
                    prop_assert!(
                        elapsed >= r.job.runtime.as_secs() - 1e-3,
                        "{}: {} ran {:.3}s but needs {:.3}s",
                        policy, r.job.id, elapsed, r.job.runtime.as_secs()
                    );
                    prop_assert!(started >= r.job.submit);
                }
            }
        }
    }

    #[test]
    fn accurate_estimates_and_single_feasible_job_always_fulfilled(
        runtime in 10.0..5000.0f64,
        deadline_factor in 1.1..9.0f64,
        procs in 1u32..6,
    ) {
        // One feasible job on an idle cluster must be fulfilled by every
        // admission-control policy when the estimate is exact.
        let job = Job {
            id: JobId(0),
            submit: SimTime::ZERO,
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime),
            procs,
            deadline: SimDuration::from_secs(runtime * deadline_factor),
            urgency: Urgency::High,
        };
        let trace = Trace::new(vec![job]);
        let cluster = Cluster::homogeneous(8, 168.0);
        for policy in POLICIES {
            let report = policy.run(&cluster, &trace);
            prop_assert_eq!(
                report.fulfilled(), 1,
                "{} must fulfil a lone feasible job", policy
            );
        }
    }

    #[test]
    fn librarisk_acceptance_is_a_superset_of_libra_on_lone_jobs(
        runtime in 10.0..5000.0f64,
        est_factor in 0.5..6.0f64,
        deadline_factor in 1.1..4.0f64,
    ) {
        // For a single submitted job, every job Libra accepts is also
        // accepted by LibraRisk (share ≤ 1 on an empty node implies no
        // projected delay, hence zero dispersion).
        let job = Job {
            id: JobId(0),
            submit: SimTime::ZERO,
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime * est_factor),
            procs: 1,
            deadline: SimDuration::from_secs(runtime * deadline_factor),
            urgency: Urgency::High,
        };
        let trace = Trace::new(vec![job]);
        let cluster = Cluster::homogeneous(4, 168.0);
        let libra = PolicyKind::Libra.run(&cluster, &trace);
        let librarisk = PolicyKind::LibraRisk.run(&cluster, &trace);
        if libra.accepted() == 1 {
            prop_assert_eq!(librarisk.accepted(), 1);
        }
    }

    #[test]
    fn edf_admission_only_rejects_infeasible_selections(
        raw in proptest::collection::vec(raw_job(), 1..25)
    ) {
        let trace = build_trace(&raw);
        let cluster = Cluster::homogeneous(8, 168.0);
        let report = PolicyKind::Edf.run(&cluster, &trace);
        for r in &report.records {
            if let Outcome::Rejected { at, .. } = r.outcome {
                if r.job.procs as usize <= 8 {
                    // At rejection time the job could not meet its deadline
                    // by its estimate.
                    prop_assert!(
                        at + r.job.estimate > r.job.absolute_deadline(),
                        "{} rejected although feasible at {:?}", r.job.id, at
                    );
                }
            }
        }
    }

    #[test]
    fn queueless_policies_reject_only_at_submission(
        raw in proptest::collection::vec(raw_job(), 1..25)
    ) {
        let trace = build_trace(&raw);
        let cluster = Cluster::homogeneous(8, 168.0);
        for policy in [PolicyKind::Libra, PolicyKind::LibraRisk] {
            let report = policy.run(&cluster, &trace);
            for r in &report.records {
                if let Outcome::Rejected { at, .. } = r.outcome {
                    prop_assert_eq!(
                        at, r.job.submit,
                        "{}: Libra-family rejections are instantaneous", policy
                    );
                }
            }
        }
    }
}
