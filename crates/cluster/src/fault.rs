//! Deterministic node-churn fault plans.
//!
//! A [`FaultPlan`] is a time-ordered script of [`FaultEvent`]s
//! (`NodeDown` / `NodeUp`) that an execution engine consumes as
//! simulated time advances. Plans are either hand-written
//! ([`FaultPlan::from_events`]) or sampled from per-node exponential
//! MTBF/MTTR processes ([`FaultPlan::exponential`]) with a fixed seed,
//! so a churn experiment is exactly reproducible.
//!
//! The plan itself is pure data: it knows nothing about resident jobs.
//! What happens to the jobs on a failed node is the consumer's
//! [`RecoveryPolicy`].

use crate::node::NodeId;
use sim::{Rng64, SimTime};

/// What happens to a node at a scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The node fails: resident jobs are displaced, the node stops
    /// being an admission or dispatch target.
    NodeDown,
    /// The node comes back empty and becomes an admission target again.
    NodeUp,
}

/// One scheduled churn event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated instant at which the event takes effect.
    pub at: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// Down or up.
    pub kind: FaultKind,
}

/// What an execution engine does with the jobs resident on a node that
/// just failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Displaced jobs die (`Outcome::Killed`): the SLA is lost outright.
    #[default]
    Kill,
    /// Displaced jobs are re-submitted at the fault instant against their
    /// *remaining* deadline — admission control may now reject a job it
    /// had previously accepted (a late reject).
    Requeue,
}

impl RecoveryPolicy {
    /// Short label for tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::Kill => "kill",
            RecoveryPolicy::Requeue => "requeue",
        }
    }
}

/// A time-ordered churn script with a consumption cursor.
///
/// Events at the same instant apply in push order (for the exponential
/// generator: ascending node id). Consumers pop events via
/// [`FaultPlan::next_at_or_before`] as they advance simulated time; an
/// event at instant `t` takes effect *before* any job arrival at `t`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan with no events — engines running an empty plan behave
    /// bitwise identically to engines without fault injection.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (stably sorted by time).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events, cursor: 0 }
    }

    /// Samples per-node alternating up/down intervals from exponential
    /// distributions: time-to-failure with mean `mtbf`, repair time with
    /// mean `mttr`, until `horizon`. Each node draws from its own named
    /// sub-stream of `seed`, so changing the horizon or node count never
    /// perturbs another node's fault times.
    ///
    /// # Panics
    /// Panics if `mtbf` or `mttr` is not positive.
    pub fn exponential(nodes: usize, mtbf: f64, mttr: f64, horizon: SimTime, seed: u64) -> Self {
        assert!(mtbf > 0.0, "mtbf must be positive");
        assert!(mttr > 0.0, "mttr must be positive");
        let root = Rng64::new(seed);
        let mut events = Vec::new();
        for n in 0..nodes {
            let mut rng = root.split(&format!("node-{n}-churn"));
            let node = NodeId(n as u32);
            let mut t = SimTime::ZERO;
            loop {
                t += sim::SimDuration::from_secs(rng.exponential(mtbf));
                if t > horizon {
                    break;
                }
                events.push(FaultEvent {
                    at: t,
                    node,
                    kind: FaultKind::NodeDown,
                });
                t += sim::SimDuration::from_secs(rng.exponential(mttr));
                if t > horizon {
                    break;
                }
                events.push(FaultEvent {
                    at: t,
                    node,
                    kind: FaultKind::NodeUp,
                });
            }
        }
        FaultPlan::from_events(events)
    }

    /// `true` when no events remain to consume.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// `true` when the plan never had any events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events (consumed or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The instant of the next unconsumed event, if any.
    pub fn next_instant(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Pops the next event if it is scheduled at or before `to`.
    pub fn next_at_or_before(&mut self, to: SimTime) -> Option<FaultEvent> {
        let e = self.events.get(self.cursor)?;
        if e.at <= to {
            self.cursor += 1;
            Some(*e)
        } else {
            None
        }
    }

    /// All events, consumed or not (for inspection and tests).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events already consumed (the cursor position).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Rebuilds a plan mid-consumption, e.g. when restoring a
    /// checkpoint: `events` must already be time-ordered (as returned by
    /// [`FaultPlan::events`]) and `cursor` counts consumed events.
    ///
    /// # Panics
    /// Panics if `cursor > events.len()` or the events are not
    /// time-ordered.
    pub fn from_parts(events: Vec<FaultEvent>, cursor: usize) -> Self {
        assert!(cursor <= events.len(), "cursor out of range");
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "events must be time-ordered"
        );
        FaultPlan { events, cursor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_by_time() {
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: SimTime::from_secs(20.0),
                node: NodeId(1),
                kind: FaultKind::NodeUp,
            },
            FaultEvent {
                at: SimTime::from_secs(10.0),
                node: NodeId(1),
                kind: FaultKind::NodeDown,
            },
        ]);
        let first = plan.next_at_or_before(SimTime::from_secs(100.0)).unwrap();
        assert_eq!(first.kind, FaultKind::NodeDown);
        assert_eq!(plan.next_instant(), Some(SimTime::from_secs(20.0)));
    }

    #[test]
    fn cursor_respects_bound() {
        let mut plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_secs(10.0),
            node: NodeId(0),
            kind: FaultKind::NodeDown,
        }]);
        assert_eq!(plan.next_at_or_before(SimTime::from_secs(9.0)), None);
        assert!(plan.next_at_or_before(SimTime::from_secs(10.0)).is_some());
        assert!(plan.is_exhausted());
    }

    #[test]
    fn exponential_plan_is_reproducible_and_alternates() {
        let horizon = SimTime::from_secs(1_000_000.0);
        let a = FaultPlan::exponential(8, 50_000.0, 5_000.0, horizon, 42);
        let b = FaultPlan::exponential(8, 50_000.0, 5_000.0, horizon, 42);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty(), "a 20x-MTBF horizon should produce faults");
        // Per node the kinds alternate starting with NodeDown.
        for n in 0..8u32 {
            let kinds: Vec<FaultKind> = a
                .events()
                .iter()
                .filter(|e| e.node == NodeId(n))
                .map(|e| e.kind)
                .collect();
            for (i, k) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    FaultKind::NodeDown
                } else {
                    FaultKind::NodeUp
                };
                assert_eq!(*k, expect, "node {n} event {i}");
            }
        }
        // Global ordering is by time.
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn node_streams_are_independent_of_node_count() {
        let horizon = SimTime::from_secs(500_000.0);
        let small = FaultPlan::exponential(2, 40_000.0, 4_000.0, horizon, 7);
        let big = FaultPlan::exponential(16, 40_000.0, 4_000.0, horizon, 7);
        let node0 = |p: &FaultPlan| -> Vec<FaultEvent> {
            p.events()
                .iter()
                .filter(|e| e.node == NodeId(0))
                .copied()
                .collect()
        };
        assert_eq!(node0(&small), node0(&big));
    }
}
