//! Node inventory.

use crate::node::{Node, NodeId};
use workload::params;

/// An inventory of computation nodes.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    reference_rating: f64,
}

impl Cluster {
    /// Creates a cluster from explicit nodes; `reference_rating` is the
    /// rating job runtimes are expressed against.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `reference_rating` is not positive.
    pub fn new(nodes: Vec<Node>, reference_rating: f64) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        assert!(reference_rating > 0.0, "reference rating must be > 0");
        Cluster {
            nodes,
            reference_rating,
        }
    }

    /// A homogeneous cluster of `n` nodes at the given rating (which also
    /// becomes the reference rating, so speed factors are exactly 1).
    pub fn homogeneous(n: usize, rating: f64) -> Self {
        let nodes = (0..n)
            .map(|i| Node::new(NodeId(i as u32), rating))
            .collect();
        Cluster::new(nodes, rating)
    }

    /// The paper's machine: 128 SDSC SP2 nodes at SPEC rating 168.
    pub fn sdsc_sp2() -> Self {
        Cluster::homogeneous(params::SDSC_SP2_NODES, params::SDSC_SP2_SPEC_RATING)
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (= processors; nodes are single-processor).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the cluster has no nodes (unreachable by construction,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The rating runtimes are expressed against.
    pub fn reference_rating(&self) -> f64 {
        self.reference_rating
    }

    /// Speed factor of a node relative to the reference rating.
    pub fn speed_factor(&self, id: NodeId) -> f64 {
        self.nodes[id.0 as usize].speed_factor(self.reference_rating)
    }

    /// `true` when all nodes share one rating.
    pub fn is_homogeneous(&self) -> bool {
        self.nodes.windows(2).all(|w| w[0].rating == w[1].rating)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdsc_sp2_matches_paper() {
        let c = Cluster::sdsc_sp2();
        assert_eq!(c.len(), 128);
        assert!(c.is_homogeneous());
        assert_eq!(c.speed_factor(NodeId(0)), 1.0);
        assert_eq!(c.reference_rating(), 168.0);
    }

    #[test]
    fn heterogeneous_speed_factors() {
        let nodes = vec![Node::new(NodeId(0), 168.0), Node::new(NodeId(1), 336.0)];
        let c = Cluster::new(nodes, 168.0);
        assert!(!c.is_homogeneous());
        assert_eq!(c.speed_factor(NodeId(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        Cluster::new(vec![], 168.0);
    }
}
