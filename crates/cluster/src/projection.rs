//! What-if delay projection (the analytical core of §3.2/§3.3).
//!
//! Given the jobs resident on one node — described only by what the
//! scheduler *believes* (remaining estimated work) and their absolute
//! deadlines — this module simulates the deadline-proportional-share
//! engine forward to predict each job's finish time, derives the paper's
//! quantities:
//!
//! * `delay_i` (Eq. 3) — projected lateness beyond the deadline;
//! * `deadline_delay_i` (Eq. 4) — `(delay_i + rd_i) / rd_i`, ≥ 1;
//! * `μ_j` (Eq. 5) and the **risk** `σ_j` (Eq. 6) — mean and population
//!   standard deviation of the deadline-delay values on the node.
//!
//! A subtle and load-bearing property of Eq. 6: `σ_j` measures the
//! *dispersion* of projected deadline-delays, not their level. A node
//! whose jobs would all be *equally* delayed (in particular a node holding
//! a single job) has `σ_j = 0` even though delay is projected. LibraRisk
//! therefore accepts jobs whose inflated runtime estimates make them look
//! infeasible to Libra's share test — and when those estimates are
//! over-estimates (the common case in real traces) the jobs actually meet
//! their deadlines. That asymmetry is the mechanism behind the paper's
//! headline result.

/// Floor applied to a remaining deadline before dividing by it, seconds.
/// Prevents an already-late job from producing an infinite share or an
/// infinite deadline-delay.
pub const EPS_DEADLINE: f64 = 1.0;

/// Work (reference-seconds) below which a job counts as finished.
pub const EPS_WORK: f64 = 1e-6;

/// `σ_j` below this threshold counts as zero risk.
pub const SIGMA_ZERO: f64 = 1e-9;

/// Scheduler-visible view of one resident job used for projection.
#[derive(Clone, Copy, Debug)]
pub struct ProjectedJob {
    /// Remaining *estimated* work, reference-seconds (> 0).
    pub remaining_est: f64,
    /// Absolute deadline, seconds on the simulation clock.
    pub abs_deadline: f64,
}

/// How node capacity is shared among resident jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShareDiscipline {
    /// Each job runs at exactly its required share when the node is not
    /// overloaded (`rate = s_i / max(S, 1)`); leftover capacity idles.
    /// This is Libra's published allocation.
    Strict,
    /// Leftover capacity is redistributed proportionally
    /// (`rate = s_i / S`), so under-loaded nodes finish jobs early.
    WorkConserving,
}

/// A node's projected deadline-delay summary — the **risk contribution**
/// admission layers cache per node and aggregate cluster-wide.
///
/// Stores the raw moments of the node's deadline-delay values (`Σdd`,
/// `Σdd²`, count) alongside the derived `(μ_j, σ_j)` pair. The derived
/// values are computed with exactly the same operations, in the same
/// order, as [`risk`] — so a cached summary reproduces the from-scratch
/// `(μ, σ)` bitwise, and two summaries can be compared for exact
/// equality in differential tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RiskSummary {
    /// Number of projected jobs the summary covers.
    pub count: usize,
    /// Sum of the deadline-delay values (Eq. 4), in projection order.
    pub dd_sum: f64,
    /// Sum of squared deadline-delay values, in projection order.
    pub dd_sq_sum: f64,
    /// Eq. 5: mean deadline-delay `μ_j` (1.0 for an empty node).
    pub mu: f64,
    /// Eq. 6: the risk `σ_j` (population standard deviation; 0.0 when
    /// empty).
    pub sigma: f64,
}

impl RiskSummary {
    /// The empty-node summary: no jobs, no risk — matches
    /// `risk(&[]) == (1.0, 0.0)`.
    pub const EMPTY: RiskSummary = RiskSummary {
        count: 0,
        dd_sum: 0.0,
        dd_sq_sum: 0.0,
        mu: 1.0,
        sigma: 0.0,
    };

    /// Builds the summary from deadline-delay values with the identical
    /// float operations [`risk`] performs (left-to-right sums, then
    /// `sqrt(max(0, Σdd²/n − μ²))`).
    pub fn from_dds(dds: &[f64]) -> RiskSummary {
        if dds.is_empty() {
            return RiskSummary::EMPTY;
        }
        let n = dds.len() as f64;
        let dd_sum = dds.iter().sum::<f64>();
        let dd_sq_sum = dds.iter().map(|d| d * d).sum::<f64>();
        let mu = dd_sum / n;
        let var = dd_sq_sum / n - mu * mu;
        RiskSummary {
            count: dds.len(),
            dd_sum,
            dd_sq_sum,
            mu,
            sigma: var.max(0.0).sqrt(),
        }
    }

    /// `true` when `(μ, σ)` of `self` and `other` match bitwise.
    pub fn bits_eq(&self, other: &RiskSummary) -> bool {
        self.count == other.count
            && self.dd_sum.to_bits() == other.dd_sum.to_bits()
            && self.dd_sq_sum.to_bits() == other.dd_sq_sum.to_bits()
            && self.mu.to_bits() == other.mu.to_bits()
            && self.sigma.to_bits() == other.sigma.to_bits()
    }
}

/// Caller-owned scratch buffers for the projection kernel.
///
/// [`project_finishes`] and [`node_risk`] allocate several vectors per
/// call — per *segment*, even, in the original formulation — which
/// dominates the admission hot path where the same projection runs for
/// every candidate node of every arriving job. A `ProjectionWorkspace`
/// owns all of that scratch: after the first call at a given node size
/// every subsequent call is allocation-free (buffers are `clear()`ed and
/// refilled, capacity is retained).
///
/// All workspace entry points are *bitwise identical* to their
/// allocating counterparts: same floating-point operations in the same
/// order. The differential property tests in `tests/proptest_engine.rs`
/// pin that equivalence.
#[derive(Clone, Debug, Default)]
pub struct ProjectionWorkspace {
    /// Staging buffer for callers assembling a job list (see [`Self::stage`]).
    jobs: Vec<ProjectedJob>,
    rem: Vec<f64>,
    alive: Vec<bool>,
    shares: Vec<f64>,
    rates: Vec<f64>,
    finish: Vec<f64>,
    dds: Vec<f64>,
}

/// Fused Eq. 3 + Eq. 4 + Eq. 5/6: derives the node's [`RiskSummary`]
/// from projected finishes. Same per-element operations, in the same
/// order, as `delays_from_finishes` → `deadline_delay` → [`risk`].
fn summarize_into(
    jobs: &[ProjectedJob],
    finish: &[f64],
    now: f64,
    dds: &mut Vec<f64>,
) -> RiskSummary {
    dds.clear();
    for (j, &f) in jobs.iter().zip(finish.iter()) {
        let delay = (f - j.abs_deadline).max(0.0);
        let rd = (j.abs_deadline - now).max(EPS_DEADLINE);
        dds.push((delay + rd) / rd);
    }
    RiskSummary::from_dds(dds)
}

impl ProjectionWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and returns the staging buffer, for callers that need to
    /// assemble a job list without allocating one. Fill it, then call
    /// [`Self::node_risk_staged`] (or [`Self::staged_finishes_into`]).
    pub fn stage(&mut self) -> &mut Vec<ProjectedJob> {
        self.jobs.clear();
        &mut self.jobs
    }

    /// The currently staged jobs (what [`Self::stage`] was filled with).
    pub fn staged(&self) -> &[ProjectedJob] {
        &self.jobs
    }

    /// [`project_finishes`] into a caller-owned output buffer, reusing
    /// this workspace's scratch. `finish` is cleared and refilled; no
    /// heap allocation happens once buffers have warmed up to the node
    /// size.
    pub fn project_finishes_into(
        &mut self,
        jobs: &[ProjectedJob],
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
        finish: &mut Vec<f64>,
    ) {
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            &mut self.rem,
            &mut self.alive,
            &mut self.shares,
            &mut self.rates,
            finish,
        );
    }

    /// [`node_risk`] without allocation: projects finishes and derives
    /// `(μ_j, σ_j)` entirely inside this workspace's buffers.
    pub fn node_risk_with(
        &mut self,
        jobs: &[ProjectedJob],
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> (f64, f64) {
        let s = self.node_risk_summary_with(jobs, now, speed_factor, discipline);
        (s.mu, s.sigma)
    }

    /// [`Self::node_risk_with`] returning the full [`RiskSummary`]
    /// (raw deadline-delay moments plus the derived `(μ, σ)`).
    pub fn node_risk_summary_with(
        &mut self,
        jobs: &[ProjectedJob],
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        let Self {
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
            ..
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        summarize_into(jobs, finish, now, dds)
    }

    /// [`Self::node_risk_with`] over the staged job list.
    pub fn node_risk_staged(
        &mut self,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> (f64, f64) {
        let s = self.node_risk_summary_staged(now, speed_factor, discipline);
        (s.mu, s.sigma)
    }

    /// [`Self::node_risk_staged`] returning the full [`RiskSummary`].
    pub fn node_risk_summary_staged(
        &mut self,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        let Self {
            jobs,
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        summarize_into(jobs, finish, now, dds)
    }

    /// Delta-projection entry point for the admission hot path: evaluates
    /// "node `base` + one hypothetical job" in a single call, warm-starting
    /// from a node's cached base projection input instead of making the
    /// caller re-assemble a job list.
    ///
    /// `base` is the node's resident projection input (what decision
    /// layers cache per node against the engine's epoch counter); `extra`
    /// is the tentative candidate, appended last — the same order
    /// `ProportionalCluster::node_projection(node, Some(job))` produces,
    /// so the result is bitwise identical to the from-scratch path.
    pub fn node_risk_delta(
        &mut self,
        base: &[ProjectedJob],
        extra: ProjectedJob,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        let stage = self.stage();
        stage.extend_from_slice(base);
        stage.push(extra);
        self.node_risk_summary_staged(now, speed_factor, discipline)
    }

    /// [`Self::project_finishes_into`] over the staged job list.
    pub fn staged_finishes_into(
        &mut self,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
        finish: &mut Vec<f64>,
    ) {
        let Self {
            jobs,
            rem,
            alive,
            shares,
            rates,
            ..
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            rem,
            alive,
            shares,
            rates,
            finish,
        );
    }
}

/// The piecewise-constant-rate projection over caller-owned buffers.
///
/// Scratch buffers (`rem`, `alive`, `shares`) and the output (`finish`)
/// are cleared and refilled; their capacity is reused across calls.
#[allow(clippy::too_many_arguments)]
fn projection_kernel(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
    rem: &mut Vec<f64>,
    alive: &mut Vec<bool>,
    shares: &mut Vec<f64>,
    rates: &mut Vec<f64>,
    finish: &mut Vec<f64>,
) {
    assert!(speed_factor > 0.0);
    let n = jobs.len();
    finish.clear();
    finish.resize(n, 0.0);
    if n == 0 {
        return;
    }
    rem.clear();
    rem.extend(jobs.iter().map(|j| j.remaining_est.max(EPS_WORK)));
    alive.clear();
    alive.resize(n, true);
    // Sized once: dead entries keep stale values, which no loop below
    // reads (every access is `alive`-guarded), so hoisting the clears
    // out of the segment loop is bitwise-neutral.
    shares.clear();
    shares.resize(n, 0.0);
    rates.clear();
    rates.resize(n, 0.0);
    let (jobs, rem) = (&jobs[..n], &mut rem[..n]);
    let (alive, shares, rates) = (&mut alive[..n], &mut shares[..n], &mut rates[..n]);
    let strict = matches!(discipline, ShareDiscipline::Strict);
    let mut alive_count = n;
    let mut t = now;
    // Shares for the first segment; later segments refresh theirs inside
    // the advance pass below (the advance already walks the same indices
    // in the same order, so folding the share refresh in saves a whole
    // pass per segment without reordering any float op).
    let mut total_share = 0.0;
    for i in 0..n {
        let rd = (jobs[i].abs_deadline - t).max(EPS_DEADLINE);
        shares[i] = rem[i] / rd;
        total_share += shares[i];
    }
    // Each job contributes at most one completion and one deadline
    // crossing; the +8 absorbs float-fuzz re-loops.
    let max_steps = 2 * n + 8;
    for _ in 0..max_steps {
        if alive_count == 0 {
            break;
        }
        let denom = if strict {
            total_share.max(1.0)
        } else {
            total_share
        };
        // Rates are fixed per segment; the segment length is the first
        // completion or first deadline crossing. One fused pass: each
        // rate is computed once and fed into the running `dt` minimum in
        // the same ascending-index order the split loops used, so every
        // comparison sees identical values.
        let mut dt = f64::INFINITY;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let r = shares[i] / denom * speed_factor;
            rates[i] = r;
            // A share can underflow to zero (tiny remaining work against
            // an astronomically inflated co-resident share); such a job
            // contributes no completion candidate — `min(x, ∞)` is `x`,
            // so skipping is bitwise-neutral when rates are positive.
            if r > 0.0 {
                dt = dt.min(rem[i] / r);
            }
            let to_deadline = jobs[i].abs_deadline - t;
            if to_deadline > EPS_WORK {
                dt = dt.min(to_deadline);
            }
        }
        if !(dt.is_finite() && dt > 0.0) {
            // Every surviving job is rate-starved with no deadline
            // crossing ahead: nothing will ever complete. Stop and let
            // the fallback below pin survivors at the current time.
            break;
        }
        // Advance the segment, refreshing each survivor's share for the
        // next segment in the same ascending-index walk: the share values
        // and the `total_share` summation order are exactly those the
        // standalone share pass produced.
        let t_next = t + dt;
        total_share = 0.0;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            rem[i] -= rates[i] * dt;
            if rem[i] <= EPS_WORK {
                alive[i] = false;
                alive_count -= 1;
                finish[i] = t_next;
            } else {
                let rd = (jobs[i].abs_deadline - t_next).max(EPS_DEADLINE);
                shares[i] = rem[i] / rd;
                total_share += shares[i];
            }
        }
        t = t_next;
    }
    // Pathological fuzz fallback: finish whatever survived "now".
    for i in 0..n {
        if alive[i] {
            finish[i] = t;
        }
    }
}

/// Projects the absolute finish time of every job on one node of the
/// given speed factor, starting from `now`.
///
/// The projection replays the engine's piecewise-constant-rate dynamics:
/// shares are recomputed at every projected completion and at every
/// deadline crossing, matching `proportional::ProportionalCluster`.
///
/// Returns one absolute finish time per input job (same order).
///
/// This is the allocating convenience wrapper; hot paths should hold a
/// [`ProjectionWorkspace`] and call [`ProjectionWorkspace::project_finishes_into`].
pub fn project_finishes(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> Vec<f64> {
    let mut finish = Vec::new();
    let mut ws = ProjectionWorkspace::new();
    ws.project_finishes_into(jobs, now, speed_factor, discipline, &mut finish);
    finish
}

/// Naive single-segment projection (ablation): freeze the initial rates
/// forever instead of recomputing at projected completions and deadline
/// crossings.
///
/// Under this simplification an overloaded node (total share `S > 1`)
/// projects *every* job to finish at `S × remaining_deadline` — all
/// deadline-delays equal `S`, so `σ_j = 0` **always** and the risk test
/// degenerates to "accept whenever enough processors exist". The
/// piecewise projection ([`project_finishes`]) is what lets Eq. 6
/// distinguish certain delay from dispersed delay; this function exists
/// to measure exactly how much that matters (see the
/// `LibraRisk-NaiveProj` ablation).
pub fn project_finishes_single_segment(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> Vec<f64> {
    assert!(speed_factor > 0.0);
    if jobs.is_empty() {
        return Vec::new();
    }
    let mut total_share = 0.0;
    let shares: Vec<f64> = jobs
        .iter()
        .map(|j| {
            let rd = (j.abs_deadline - now).max(EPS_DEADLINE);
            let s = j.remaining_est.max(EPS_WORK) / rd;
            total_share += s;
            s
        })
        .collect();
    let denom = match discipline {
        ShareDiscipline::Strict => total_share.max(1.0),
        ShareDiscipline::WorkConserving => total_share,
    };
    jobs.iter()
        .zip(&shares)
        .map(|(j, &s)| {
            let rate = s / denom * speed_factor;
            now + j.remaining_est.max(EPS_WORK) / rate
        })
        .collect()
}

/// [`node_risk`] computed with the naive single-segment projection.
pub fn node_risk_single_segment(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> (f64, f64) {
    let finishes = project_finishes_single_segment(jobs, now, speed_factor, discipline);
    let delays = delays_from_finishes(jobs, &finishes);
    let dds: Vec<f64> = jobs
        .iter()
        .zip(&delays)
        .map(|(j, &d)| deadline_delay(d, j.abs_deadline, now))
        .collect();
    risk(&dds)
}

/// Eq. 3: projected delay of each job, `max(0, finish − abs_deadline)`.
pub fn delays_from_finishes(jobs: &[ProjectedJob], finishes: &[f64]) -> Vec<f64> {
    jobs.iter()
        .zip(finishes)
        .map(|(j, &f)| (f - j.abs_deadline).max(0.0))
        .collect()
}

/// Eq. 4: the deadline-delay metric
/// `(delay_i + remaining_deadline_i) / remaining_deadline_i`, evaluated at
/// `now`; the remaining deadline is floored at [`EPS_DEADLINE`].
pub fn deadline_delay(delay: f64, abs_deadline: f64, now: f64) -> f64 {
    let rd = (abs_deadline - now).max(EPS_DEADLINE);
    (delay + rd) / rd
}

/// Eq. 5 and Eq. 6: mean `μ_j` and risk `σ_j` (population standard
/// deviation) of a node's deadline-delay values. Returns `(μ, σ)`;
/// an empty node has `(1, 0)` — no jobs, no risk.
pub fn risk(dds: &[f64]) -> (f64, f64) {
    if dds.is_empty() {
        return (1.0, 0.0);
    }
    let n = dds.len() as f64;
    let mu = dds.iter().sum::<f64>() / n;
    let var = dds.iter().map(|d| d * d).sum::<f64>() / n - mu * mu;
    (mu, var.max(0.0).sqrt())
}

/// Full per-node risk evaluation: projects finishes, derives delays and
/// deadline-delays, returns `(μ_j, σ_j)`.
///
/// ```
/// use cluster::projection::{node_risk, ProjectedJob, ShareDiscipline};
///
/// // Two feasible jobs: everything meets its deadline, so no risk.
/// let calm = [
///     ProjectedJob { remaining_est: 50.0, abs_deadline: 100.0 },
///     ProjectedJob { remaining_est: 50.0, abs_deadline: 200.0 },
/// ];
/// let (mu, sigma) = node_risk(&calm, 0.0, 1.0, ShareDiscipline::WorkConserving);
/// assert!((mu - 1.0).abs() < 1e-9 && sigma < 1e-9);
///
/// // Overload with heterogeneous deadlines: delays disperse → risk.
/// let overloaded = [
///     ProjectedJob { remaining_est: 100.0, abs_deadline: 100.0 },
///     ProjectedJob { remaining_est: 100.0, abs_deadline: 200.0 },
/// ];
/// let (_, sigma) = node_risk(&overloaded, 0.0, 1.0, ShareDiscipline::WorkConserving);
/// assert!(sigma > 1e-9);
/// ```
pub fn node_risk(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> (f64, f64) {
    ProjectionWorkspace::new().node_risk_with(jobs, now, speed_factor, discipline)
}

/// `true` when `sigma` counts as zero risk.
#[inline]
pub fn is_zero_risk(sigma: f64) -> bool {
    sigma < SIGMA_ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(remaining_est: f64, abs_deadline: f64) -> ProjectedJob {
        ProjectedJob {
            remaining_est,
            abs_deadline,
        }
    }

    #[test]
    fn empty_node_has_no_risk() {
        let (mu, sigma) = node_risk(&[], 0.0, 1.0, ShareDiscipline::Strict);
        assert_eq!((mu, sigma), (1.0, 0.0));
        assert!(project_finishes(&[], 0.0, 1.0, ShareDiscipline::Strict).is_empty());
    }

    #[test]
    fn feasible_jobs_finish_exactly_at_deadline_under_strict_shares() {
        // Two jobs, total share 0.75 ≤ 1: each runs at its required share
        // and meets its deadline exactly.
        let jobs = [pj(50.0, 100.0), pj(50.0, 200.0)];
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!((f[0] - 100.0).abs() < 1e-6, "finish {}", f[0]);
        assert!((f[1] - 200.0).abs() < 1e-6, "finish {}", f[1]);
        let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!((mu - 1.0).abs() < 1e-9);
        assert!(is_zero_risk(sigma));
    }

    #[test]
    fn work_conserving_finishes_early() {
        let jobs = [pj(50.0, 100.0), pj(50.0, 200.0)];
        // S = 0.75; rates scale to s/S: job 0 rate = (0.5/0.75) = 2/3.
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        assert!(f[0] < 100.0 - 1e-6);
        assert!(f[1] < 200.0 - 1e-6);
        let (_, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        assert!(is_zero_risk(sigma));
    }

    #[test]
    fn overload_with_heterogeneous_deadlines_has_risk() {
        // Total share 1.5: the earlier-deadline job is projected late while
        // the later one recovers after the first completes → dispersion.
        let jobs = [pj(100.0, 100.0), pj(100.0, 200.0)];
        let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(mu > 1.0);
        assert!(!is_zero_risk(sigma), "sigma {sigma}");
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(f[0] > 100.0 + 1.0, "early-deadline job is late: {}", f[0]);
    }

    #[test]
    fn single_infeasible_job_is_certain_hence_zero_risk() {
        // One job whose estimate (300) exceeds its deadline (100): it is
        // projected late, but there is nothing to disperse against, so
        // σ = 0 — the Eq. 6 property LibraRisk exploits.
        let jobs = [pj(300.0, 100.0)];
        let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(mu > 1.0, "projected late, mu {mu}");
        assert!(is_zero_risk(sigma), "sigma {sigma}");
    }

    #[test]
    fn projected_finish_respects_speed_factor() {
        let jobs = [pj(100.0, 1000.0)];
        let slow = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        let fast = project_finishes(&jobs, 0.0, 2.0, ShareDiscipline::WorkConserving);
        assert!((slow[0] - 100.0).abs() < 1e-6);
        assert!((fast[0] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn already_late_job_contributes_capped_deadline_delay() {
        // Job whose deadline passed 50 s ago: remaining deadline floors at
        // EPS_DEADLINE, share is huge, and dd is large but finite.
        let jobs = [pj(10.0, -50.0), pj(10.0, 1000.0)];
        let (_, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(!is_zero_risk(sigma), "a sick node must read as risky");
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn single_segment_projection_makes_overload_look_certain() {
        // The same overloaded pair that the piecewise projection flags as
        // risky reads as zero-risk under the naive projection: with rates
        // frozen, both jobs finish at S × their remaining deadline and the
        // deadline-delays coincide at S.
        let jobs = [pj(100.0, 100.0), pj(100.0, 200.0)];
        let (mu_naive, sigma_naive) =
            node_risk_single_segment(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(
            (mu_naive - 1.5).abs() < 1e-9,
            "mu {mu_naive} should equal S"
        );
        assert!(is_zero_risk(sigma_naive), "sigma {sigma_naive}");
        let (_, sigma_piecewise) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(
            !is_zero_risk(sigma_piecewise),
            "piecewise sees the dispersion"
        );
    }

    #[test]
    fn single_segment_agrees_with_piecewise_when_feasible() {
        // No overload, no deadline crossings before completion: the two
        // projections coincide.
        let jobs = [pj(50.0, 100.0), pj(50.0, 200.0)];
        let a = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        let b = project_finishes_single_segment(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        assert!(project_finishes_single_segment(&[], 0.0, 1.0, ShareDiscipline::Strict).is_empty());
    }

    #[test]
    fn delays_match_eq3() {
        let jobs = [pj(10.0, 100.0), pj(10.0, 5.0)];
        let d = delays_from_finishes(&jobs, &[90.0, 25.0]);
        assert_eq!(d, vec![0.0, 20.0]);
    }

    #[test]
    fn deadline_delay_matches_paper_example() {
        // The paper's §3.2 example: delay 20, remaining deadline 5 → dd 5;
        // same delay with remaining deadline 10 → dd 3.
        assert!((deadline_delay(20.0, 5.0, 0.0) - 5.0).abs() < 1e-12);
        assert!((deadline_delay(20.0, 10.0, 0.0) - 3.0).abs() < 1e-12);
        // Zero delay → the metric's minimum/best value 1.
        assert_eq!(deadline_delay(0.0, 100.0, 0.0), 1.0);
    }

    #[test]
    fn risk_of_identical_dds_is_zero() {
        let (mu, sigma) = risk(&[2.5, 2.5, 2.5]);
        assert_eq!(mu, 2.5);
        assert!(is_zero_risk(sigma));
    }

    #[test]
    fn risk_matches_population_stddev() {
        let (mu, sigma) = risk(&[1.0, 3.0]);
        assert_eq!(mu, 2.0);
        assert!((sigma - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_conserves_capacity() {
        // However many jobs, total work cannot complete faster than
        // capacity 1 allows: sum of estimates = 300 → last finish ≥ 300.
        let jobs = [pj(100.0, 50.0), pj(100.0, 60.0), pj(100.0, 70.0)];
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        let last = f.iter().cloned().fold(0.0, f64::max);
        assert!(last >= 300.0 - 1e-6, "last finish {last}");
    }

    #[test]
    fn projection_starts_from_now() {
        let jobs = [pj(10.0, 1e9)];
        let f = project_finishes(&jobs, 500.0, 1.0, ShareDiscipline::WorkConserving);
        assert!((f[0] - 510.0).abs() < 1e-6);
    }

    #[test]
    fn workspace_matches_allocating_path_bitwise() {
        let cases: Vec<Vec<ProjectedJob>> = vec![
            vec![],
            vec![pj(300.0, 100.0)],
            vec![pj(50.0, 100.0), pj(50.0, 200.0)],
            vec![pj(100.0, 100.0), pj(100.0, 200.0)],
            vec![pj(10.0, -50.0), pj(10.0, 1000.0)],
            vec![pj(100.0, 50.0), pj(100.0, 60.0), pj(100.0, 70.0)],
        ];
        let mut ws = ProjectionWorkspace::new();
        let mut out = Vec::new();
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            for now in [0.0, 17.25, 1e6] {
                for jobs in &cases {
                    let want = project_finishes(jobs, now, 1.5, disc);
                    ws.project_finishes_into(jobs, now, 1.5, disc, &mut out);
                    assert_eq!(
                        want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "finishes must be bitwise identical"
                    );
                    let (mu_a, sig_a) = node_risk(jobs, now, 1.5, disc);
                    let (mu_b, sig_b) = ws.node_risk_with(jobs, now, 1.5, disc);
                    assert_eq!(mu_a.to_bits(), mu_b.to_bits());
                    assert_eq!(sig_a.to_bits(), sig_b.to_bits());
                }
            }
        }
    }

    #[test]
    fn workspace_reuses_capacity_after_warmup() {
        let jobs = [pj(100.0, 100.0), pj(100.0, 200.0), pj(50.0, 300.0)];
        let mut ws = ProjectionWorkspace::new();
        let mut out = Vec::new();
        ws.project_finishes_into(&jobs, 0.0, 1.0, ShareDiscipline::Strict, &mut out);
        let caps = (ws.rem.capacity(), ws.shares.capacity(), out.capacity());
        for _ in 0..64 {
            ws.project_finishes_into(&jobs, 0.0, 1.0, ShareDiscipline::Strict, &mut out);
        }
        assert_eq!(
            caps,
            (ws.rem.capacity(), ws.shares.capacity(), out.capacity()),
            "warm buffers must not reallocate"
        );
    }

    #[test]
    fn staged_path_matches_slice_path() {
        let jobs = [pj(80.0, 90.0), pj(20.0, 400.0)];
        let mut ws = ProjectionWorkspace::new();
        ws.stage().extend_from_slice(&jobs);
        let staged = ws.node_risk_staged(3.0, 2.0, ShareDiscipline::WorkConserving);
        let direct = node_risk(&jobs, 3.0, 2.0, ShareDiscipline::WorkConserving);
        assert_eq!(staged.0.to_bits(), direct.0.to_bits());
        assert_eq!(staged.1.to_bits(), direct.1.to_bits());

        ws.stage().extend_from_slice(&jobs);
        let mut a = Vec::new();
        ws.staged_finishes_into(3.0, 2.0, ShareDiscipline::WorkConserving, &mut a);
        let b = project_finishes(&jobs, 3.0, 2.0, ShareDiscipline::WorkConserving);
        assert_eq!(a, b);
    }

    #[test]
    fn risk_summary_matches_risk_bitwise() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![1.0],
            vec![2.5, 2.5, 2.5],
            vec![1.0, 3.0],
            vec![1.0, 1.7, 42.0, 1e6],
        ];
        for dds in &cases {
            let (mu, sigma) = risk(dds);
            let s = RiskSummary::from_dds(dds);
            assert_eq!(s.count, dds.len());
            assert_eq!(s.mu.to_bits(), mu.to_bits());
            assert_eq!(s.sigma.to_bits(), sigma.to_bits());
            assert!(s.bits_eq(&RiskSummary::from_dds(dds)));
        }
        assert!(RiskSummary::EMPTY.bits_eq(&RiskSummary::from_dds(&[])));
    }

    #[test]
    fn delta_projection_matches_staging_by_hand() {
        let base = [pj(80.0, 90.0), pj(20.0, 400.0), pj(100.0, 120.0)];
        let extra = pj(55.0, 250.0);
        let mut ws = ProjectionWorkspace::new();
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            for now in [0.0, 17.25] {
                let delta = ws.node_risk_delta(&base, extra, now, 1.5, disc);
                let mut all = base.to_vec();
                all.push(extra);
                let direct = node_risk(&all, now, 1.5, disc);
                assert_eq!(delta.mu.to_bits(), direct.0.to_bits());
                assert_eq!(delta.sigma.to_bits(), direct.1.to_bits());
            }
        }
        // Empty base: delta over [] + extra equals the single-job node.
        let delta = ws.node_risk_delta(&[], extra, 0.0, 1.0, ShareDiscipline::Strict);
        let direct = node_risk(&[extra], 0.0, 1.0, ShareDiscipline::Strict);
        assert_eq!(delta.mu.to_bits(), direct.0.to_bits());
        assert_eq!(delta.sigma.to_bits(), direct.1.to_bits());
    }

    #[test]
    fn rate_starved_job_does_not_panic_or_hang() {
        // Job 1's share underflows to zero against job 0's astronomically
        // inflated share (1e300 work due in 1 s): its completion candidate
        // would be ∞. The kernel must stay finite and terminate.
        let jobs = [pj(1e300, 1.0), pj(1e-6, 1e300)];
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            let f = project_finishes(&jobs, 0.0, 1.0, disc);
            assert!(f.iter().all(|x| x.is_finite()), "{f:?}");
            let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, disc);
            assert!(mu.is_finite() && sigma.is_finite());
        }
    }
}
