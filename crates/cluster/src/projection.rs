//! What-if delay projection (the analytical core of §3.2/§3.3).
//!
//! Given the jobs resident on one node — described only by what the
//! scheduler *believes* (remaining estimated work) and their absolute
//! deadlines — this module simulates the deadline-proportional-share
//! engine forward to predict each job's finish time, derives the paper's
//! quantities:
//!
//! * `delay_i` (Eq. 3) — projected lateness beyond the deadline;
//! * `deadline_delay_i` (Eq. 4) — `(delay_i + rd_i) / rd_i`, ≥ 1;
//! * `μ_j` (Eq. 5) and the **risk** `σ_j` (Eq. 6) — mean and population
//!   standard deviation of the deadline-delay values on the node.
//!
//! A subtle and load-bearing property of Eq. 6: `σ_j` measures the
//! *dispersion* of projected deadline-delays, not their level. A node
//! whose jobs would all be *equally* delayed (in particular a node holding
//! a single job) has `σ_j = 0` even though delay is projected. LibraRisk
//! therefore accepts jobs whose inflated runtime estimates make them look
//! infeasible to Libra's share test — and when those estimates are
//! over-estimates (the common case in real traces) the jobs actually meet
//! their deadlines. That asymmetry is the mechanism behind the paper's
//! headline result.

/// Floor applied to a remaining deadline before dividing by it, seconds.
/// Prevents an already-late job from producing an infinite share or an
/// infinite deadline-delay.
pub const EPS_DEADLINE: f64 = 1.0;

/// Work (reference-seconds) below which a job counts as finished.
pub const EPS_WORK: f64 = 1e-6;

/// `σ_j` below this threshold counts as zero risk.
pub const SIGMA_ZERO: f64 = 1e-9;

/// Minimum relative headroom `1 − S` the pre-kernel screen demands in
/// addition to its absolute [`EPS_DEADLINE`] margin (see
/// [`screens_zero_risk`]). Accumulated kernel float error is bounded by a
/// few hundred ulps of the time scale; a relative margin of 1e-9 leaves
/// four orders of magnitude of slack above that.
pub const SCREEN_HEADROOM: f64 = 1e-9;

/// Scheduler-visible view of one resident job used for projection.
#[derive(Clone, Copy, Debug)]
pub struct ProjectedJob {
    /// Remaining *estimated* work, reference-seconds (> 0).
    pub remaining_est: f64,
    /// Absolute deadline, seconds on the simulation clock.
    pub abs_deadline: f64,
}

/// How node capacity is shared among resident jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShareDiscipline {
    /// Each job runs at exactly its required share when the node is not
    /// overloaded (`rate = s_i / max(S, 1)`); leftover capacity idles.
    /// This is Libra's published allocation.
    Strict,
    /// Leftover capacity is redistributed proportionally
    /// (`rate = s_i / S`), so under-loaded nodes finish jobs early.
    WorkConserving,
}

/// A node's projected deadline-delay summary — the **risk contribution**
/// admission layers cache per node and aggregate cluster-wide.
///
/// Stores the raw moments of the node's deadline-delay values (`Σdd`,
/// `Σdd²`, count) alongside the derived `(μ_j, σ_j)` pair. The derived
/// values are computed with exactly the same operations, in the same
/// order, as [`risk`] — so a cached summary reproduces the from-scratch
/// `(μ, σ)` bitwise, and two summaries can be compared for exact
/// equality in differential tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RiskSummary {
    /// Number of projected jobs the summary covers.
    pub count: usize,
    /// Sum of the deadline-delay values (Eq. 4), in projection order.
    pub dd_sum: f64,
    /// Sum of squared deadline-delay values, in projection order.
    pub dd_sq_sum: f64,
    /// Eq. 5: mean deadline-delay `μ_j` (1.0 for an empty node).
    pub mu: f64,
    /// Eq. 6: the risk `σ_j` (population standard deviation; 0.0 when
    /// empty).
    pub sigma: f64,
}

impl RiskSummary {
    /// The empty-node summary: no jobs, no risk — matches
    /// `risk(&[]) == (1.0, 0.0)`.
    pub const EMPTY: RiskSummary = RiskSummary {
        count: 0,
        dd_sum: 0.0,
        dd_sq_sum: 0.0,
        mu: 1.0,
        sigma: 0.0,
    };

    /// Sentinel for a node whose projection was cut short because its
    /// risk was *certified* nonzero mid-run (see
    /// [`ProjectionWorkspace::node_risk_verdict_prefixed`]): `σ = +∞`
    /// fails every zero-risk test and `μ = +∞` fails every unit-mean
    /// test, so the sentinel decides exactly like the exact summary
    /// would — the raw moments are deliberately infinite too, so any
    /// accidental aggregate consumer surfaces immediately instead of
    /// silently absorbing partial sums.
    pub const PROVABLY_RISKY: RiskSummary = RiskSummary {
        count: 0,
        dd_sum: f64::INFINITY,
        dd_sq_sum: f64::INFINITY,
        mu: f64::INFINITY,
        sigma: f64::INFINITY,
    };

    /// Builds the summary from deadline-delay values with the identical
    /// float operations [`risk`] performs (left-to-right sums, then
    /// `sqrt(max(0, Σdd²/n − μ²))`).
    pub fn from_dds(dds: &[f64]) -> RiskSummary {
        if dds.is_empty() {
            return RiskSummary::EMPTY;
        }
        let n = dds.len() as f64;
        let dd_sum = dds.iter().sum::<f64>();
        let dd_sq_sum = dds.iter().map(|d| d * d).sum::<f64>();
        let mu = dd_sum / n;
        let var = dd_sq_sum / n - mu * mu;
        RiskSummary {
            count: dds.len(),
            dd_sum,
            dd_sq_sum,
            mu,
            sigma: var.max(0.0).sqrt(),
        }
    }

    /// `true` when `(μ, σ)` of `self` and `other` match bitwise.
    pub fn bits_eq(&self, other: &RiskSummary) -> bool {
        self.count == other.count
            && self.dd_sum.to_bits() == other.dd_sum.to_bits()
            && self.dd_sq_sum.to_bits() == other.dd_sq_sum.to_bits()
            && self.mu.to_bits() == other.mu.to_bits()
            && self.sigma.to_bits() == other.sigma.to_bits()
    }
}

/// Fills `keys` with the node's **canonical load fingerprint**: the
/// `(abs_deadline, remaining_est)` bit patterns of every resident job,
/// sorted ascending. Returns a length-seeded fx-style hash of the
/// canonical sequence.
///
/// Two nodes with equal canonical keys hold the same multiset of
/// projected jobs, so — at a fixed `(now, speed, discipline, candidate)`
/// — the projection kernel computes the same `(μ_j, σ_j)` for them *up
/// to float summation order*: two permutations of the same multiset can
/// differ in the last ulp, which matters precisely where `σ_j` sits at
/// cancellation-noise scale near the zero-risk threshold. Admission
/// layers therefore first rewrite every projection input into canonical
/// order ([`canonicalize_projection`]) — making the computed bits a
/// function of the multiset, not of arbitrary resident slot order — and
/// then use the hash as an equivalence-class prescreen with the key
/// sequence as exact confirmation, so one kernel run per class serves
/// every member node bit-exactly (see DESIGN.md "Node equivalence &
/// dominance").
///
/// Deadlines and remaining work are positive finite, so the bit patterns
/// order exactly like the values and the sort needs no float comparator.
pub fn canonical_class_keys(jobs: &[ProjectedJob], keys: &mut Vec<(u64, u64)>) -> u64 {
    keys.clear();
    keys.extend(
        jobs.iter()
            .map(|j| (j.abs_deadline.to_bits(), j.remaining_est.to_bits())),
    );
    keys.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (keys.len() as u64);
    for &(dl, rem) in keys.iter() {
        h = (h.rotate_left(23) ^ dl).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h.rotate_left(23) ^ rem).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    h
}

/// Computes the kernel's *first-segment* shares for a resident job list —
/// `remaining_est.max(EPS_WORK) / (abs_deadline − now).max(EPS_DEADLINE)`
/// per job, in job order — into `shares`, and returns their left-to-right
/// sum: exactly the float operations, in exactly the order, the
/// projection kernel's opening share pass performs.
///
/// Admission layers cache the result per node (valid while the node's
/// epoch — which pins both residents and `now` for occupied nodes —
/// is unchanged) and hand it back via
/// [`ProjectionWorkspace::node_risk_delta_prefixed`], so the shared
/// prefix of every "residents + candidate" evaluation is computed once
/// per node state instead of once per candidate.
pub fn first_segment_shares(jobs: &[ProjectedJob], now: f64, shares: &mut Vec<f64>) -> f64 {
    shares.clear();
    let mut sum = 0.0;
    for j in jobs {
        let rd = (j.abs_deadline - now).max(EPS_DEADLINE);
        let s = j.remaining_est.max(EPS_WORK) / rd;
        shares.push(s);
        sum += s;
    }
    sum
}

/// Rewrites a projection input into **canonical order**: ascending
/// `(abs_deadline, remaining_est)` bit patterns — the same order
/// [`canonical_class_keys`] fingerprints.
///
/// `(μ_j, σ_j)` are symmetric functions of the job multiset, but their
/// floating-point evaluation is not: summation order leaks the node's
/// arbitrary resident slot order (admission history) into the last ulp,
/// which can flip a verdict when `σ_j` sits at cancellation-noise scale
/// near the zero-risk threshold. Canonicalizing before every projection
/// makes the computed bits order-free, so (a) equal-class nodes replay
/// each other's results bit-exactly, and (b) a node's risk verdict no
/// longer depends on the order jobs happened to be admitted in.
///
/// The sort is in-place, unstable and comparator-free (positive finite
/// floats: bit order = value order) — no allocation, so it is safe in
/// the zero-allocation decision path.
pub fn canonicalize_projection(jobs: &mut [ProjectedJob]) {
    jobs.sort_unstable_by_key(|j| (j.abs_deadline.to_bits(), j.remaining_est.to_bits()));
}

/// Earliest absolute deadline among `jobs` (+∞ for an empty node).
pub fn min_abs_deadline(jobs: &[ProjectedJob]) -> f64 {
    jobs.iter()
        .fold(f64::INFINITY, |m, j| m.min(j.abs_deadline))
}

/// The pre-kernel **dominance screen**: `true` when "this node + the
/// candidate" is *provably* zero-risk — the projection kernel would
/// compute `σ_j = 0.0` and `μ_j = 1.0` bitwise-exactly — so the
/// candidate scan may mark the node suitable without projecting at all.
///
/// The proof obligation, and why each condition is required:
///
/// * **Work-conserving discipline.** Under [`ShareDiscipline::Strict`]
///   each job runs at exactly its share and finishes exactly at its
///   deadline — zero margin, so float fuzz (or the floor distortion
///   below) can push a finish past the deadline. Under work-conserving
///   sharing with total share `S < 1`, every rate is `s_i/S > s_i`,
///   shares are non-increasing across segment refreshes, and every job
///   finishes at least `rd_i·(1 − S)` before its deadline.
/// * **`speed ≥ 1`.** Rates scale by the speed factor; a slower node
///   would invalidate the `rate ≥ share` step of that argument.
/// * **`min_rd·(1 − S_with) ≥ EPS_DEADLINE`** where `min_rd` is the
///   smallest remaining deadline (residents and candidate) and `S_with`
///   the total first-segment share with the candidate added. This keeps
///   every job's finish at least one second clear of its deadline, which
///   in particular means no job is ever *alive* inside the final
///   [`EPS_DEADLINE`] window before its own deadline — the one place the
///   kernel's deadline floor would rewrite `rem/rd` as `rem/1.0`,
///   destroying the share's deadline urgency and (against a large-share
///   co-resident) potentially making the job genuinely late. `S ≤ 1`
///   alone is *not* sufficient; the margin is what rules the floor out.
/// * **`1 − S_with ≥ SCREEN_HEADROOM`.** The absolute margin is asserted
///   about real-number dynamics; a relative headroom far above the
///   kernel's accumulated float error makes the float finishes land on
///   the same side of the deadline.
///
/// When every projected finish beats its deadline, each
/// `delay = max(f − dl, 0)` is exactly `0.0`, each deadline-delay is
/// `rd/rd = 1.0` exactly, and Eq. 5/6 give `μ = 1.0`, `σ = 0.0` in exact
/// float arithmetic — so the screen agrees with the kernel *bitwise*,
/// for the paper policy and for the `require_unit_mu` and
/// `naive_projection` ablations alike (the single-segment projection
/// obeys the same `finish ≤ dl − rd(1−S)` bound).
pub fn screens_zero_risk(
    discipline: ShareDiscipline,
    speed_factor: f64,
    resident_share_sum: f64,
    min_resident_deadline: f64,
    candidate: ProjectedJob,
    now: f64,
) -> bool {
    if !matches!(discipline, ShareDiscipline::WorkConserving) || speed_factor < 1.0 {
        return false;
    }
    let cand_rd = (candidate.abs_deadline - now).max(EPS_DEADLINE);
    let s_with = resident_share_sum + candidate.remaining_est.max(EPS_WORK) / cand_rd;
    let headroom = 1.0 - s_with;
    let min_rd = min_resident_deadline.min(candidate.abs_deadline) - now;
    // NaN anywhere fails every comparison → conservative `false`.
    headroom >= SCREEN_HEADROOM && min_rd.is_finite() && min_rd * headroom >= EPS_DEADLINE
}

/// Caller-owned scratch buffers for the projection kernel.
///
/// [`project_finishes`] and [`node_risk`] allocate several vectors per
/// call — per *segment*, even, in the original formulation — which
/// dominates the admission hot path where the same projection runs for
/// every candidate node of every arriving job. A `ProjectionWorkspace`
/// owns all of that scratch: after the first call at a given node size
/// every subsequent call is allocation-free (buffers are `clear()`ed and
/// refilled, capacity is retained).
///
/// All workspace entry points are *bitwise identical* to their
/// allocating counterparts: same floating-point operations in the same
/// order. The differential property tests in `tests/proptest_engine.rs`
/// pin that equivalence.
#[derive(Clone, Debug, Default)]
pub struct ProjectionWorkspace {
    /// Staging buffer for callers assembling a job list (see [`Self::stage`]).
    jobs: Vec<ProjectedJob>,
    rem: Vec<f64>,
    alive: Vec<bool>,
    shares: Vec<f64>,
    rates: Vec<f64>,
    finish: Vec<f64>,
    dds: Vec<f64>,
}

/// Fused Eq. 3 + Eq. 4 + Eq. 5/6: derives the node's [`RiskSummary`]
/// from projected finishes. Same per-element operations, in the same
/// order, as `delays_from_finishes` → `deadline_delay` → [`risk`].
fn summarize_into(
    jobs: &[ProjectedJob],
    finish: &[f64],
    now: f64,
    dds: &mut Vec<f64>,
) -> RiskSummary {
    dds.clear();
    for (j, &f) in jobs.iter().zip(finish.iter()) {
        let delay = (f - j.abs_deadline).max(0.0);
        let rd = (j.abs_deadline - now).max(EPS_DEADLINE);
        dds.push((delay + rd) / rd);
    }
    RiskSummary::from_dds(dds)
}

impl ProjectionWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and returns the staging buffer, for callers that need to
    /// assemble a job list without allocating one. Fill it, then call
    /// [`Self::node_risk_staged`] (or [`Self::staged_finishes_into`]).
    pub fn stage(&mut self) -> &mut Vec<ProjectedJob> {
        self.jobs.clear();
        &mut self.jobs
    }

    /// The currently staged jobs (what [`Self::stage`] was filled with).
    pub fn staged(&self) -> &[ProjectedJob] {
        &self.jobs
    }

    /// [`project_finishes`] into a caller-owned output buffer, reusing
    /// this workspace's scratch. `finish` is cleared and refilled; no
    /// heap allocation happens once buffers have warmed up to the node
    /// size.
    pub fn project_finishes_into(
        &mut self,
        jobs: &[ProjectedJob],
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
        finish: &mut Vec<f64>,
    ) {
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            None,
            &mut self.rem,
            &mut self.alive,
            &mut self.shares,
            &mut self.rates,
            finish,
        );
    }

    /// [`node_risk`] without allocation: projects finishes and derives
    /// `(μ_j, σ_j)` entirely inside this workspace's buffers.
    pub fn node_risk_with(
        &mut self,
        jobs: &[ProjectedJob],
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> (f64, f64) {
        let s = self.node_risk_summary_with(jobs, now, speed_factor, discipline);
        (s.mu, s.sigma)
    }

    /// [`Self::node_risk_with`] returning the full [`RiskSummary`]
    /// (raw deadline-delay moments plus the derived `(μ, σ)`).
    pub fn node_risk_summary_with(
        &mut self,
        jobs: &[ProjectedJob],
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        let Self {
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
            ..
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            None,
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        summarize_into(jobs, finish, now, dds)
    }

    /// [`Self::node_risk_with`] over the staged job list.
    pub fn node_risk_staged(
        &mut self,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> (f64, f64) {
        let s = self.node_risk_summary_staged(now, speed_factor, discipline);
        (s.mu, s.sigma)
    }

    /// [`Self::node_risk_staged`] returning the full [`RiskSummary`].
    pub fn node_risk_summary_staged(
        &mut self,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        let Self {
            jobs,
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            None,
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        summarize_into(jobs, finish, now, dds)
    }

    /// Delta-projection entry point for the admission hot path: evaluates
    /// "node `base` + one hypothetical job" in a single call, warm-starting
    /// from a node's cached base projection input instead of making the
    /// caller re-assemble a job list.
    ///
    /// `base` is the node's resident projection input (what decision
    /// layers cache per node against the engine's epoch counter); `extra`
    /// is the tentative candidate, appended last — the same order
    /// `ProportionalCluster::node_projection(node, Some(job))` produces,
    /// so the result is bitwise identical to the from-scratch path.
    pub fn node_risk_delta(
        &mut self,
        base: &[ProjectedJob],
        extra: ProjectedJob,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        let stage = self.stage();
        stage.extend_from_slice(base);
        stage.push(extra);
        self.node_risk_summary_staged(now, speed_factor, discipline)
    }

    /// [`Self::node_risk_delta`] with a **shared-prefix warm start**: the
    /// caller supplies the base jobs' first-segment shares and their
    /// left-to-right sum (from [`first_segment_shares`], computed once
    /// per node state), and the kernel's opening share pass runs only
    /// for the appended candidate. Bitwise identical to the cold path —
    /// the cached prefix replays the same float values and the same
    /// summation order.
    #[allow(clippy::too_many_arguments)]
    pub fn node_risk_delta_prefixed(
        &mut self,
        base: &[ProjectedJob],
        base_shares: &[f64],
        base_share_sum: f64,
        extra: ProjectedJob,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        debug_assert_eq!(base.len(), base_shares.len());
        let stage = self.stage();
        stage.extend_from_slice(base);
        stage.push(extra);
        let Self {
            jobs,
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            Some((base_shares, base_share_sum)),
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        summarize_into(jobs, finish, now, dds)
    }

    /// [`Self::node_risk_delta_prefixed`] for the admission *verdict*
    /// path: returns `None` as soon as the partial projection certifies
    /// the node risky (σ provably far above [`SIGMA_ZERO`] — see
    /// [`VERDICT_BAIL_GAP`] for the bound), and the exact summary
    /// otherwise. `None` and the exact summary produce the same
    /// admission verdict under every decision variant, so callers that
    /// only consume the verdict (not the raw moments) may use this
    /// interchangeably with the exact entry point; overloaded nodes —
    /// precisely the expensive projections — usually certify within the
    /// first few segments instead of simulating their whole timeline.
    #[allow(clippy::too_many_arguments)]
    pub fn node_risk_verdict_prefixed(
        &mut self,
        base: &[ProjectedJob],
        base_shares: &[f64],
        base_share_sum: f64,
        extra: ProjectedJob,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> Option<RiskSummary> {
        debug_assert_eq!(base.len(), base_shares.len());
        let stage = self.stage();
        stage.extend_from_slice(base);
        stage.push(extra);
        let Self {
            jobs,
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
        } = self;
        let bailed = projection_verdict_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            Some((base_shares, base_share_sum)),
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        if bailed {
            None
        } else {
            Some(summarize_into(jobs, finish, now, dds))
        }
    }

    /// [`Self::node_risk_summary_with`] with every first-segment share
    /// precomputed (the resident-only evaluation admission layers cache
    /// per node): the kernel skips its whole opening share pass.
    pub fn node_risk_summary_prefixed(
        &mut self,
        jobs: &[ProjectedJob],
        first_shares: &[f64],
        share_sum: f64,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
    ) -> RiskSummary {
        debug_assert_eq!(jobs.len(), first_shares.len());
        let Self {
            rem,
            alive,
            shares,
            rates,
            finish,
            dds,
            ..
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            Some((first_shares, share_sum)),
            rem,
            alive,
            shares,
            rates,
            finish,
        );
        summarize_into(jobs, finish, now, dds)
    }

    /// [`Self::project_finishes_into`] over the staged job list.
    pub fn staged_finishes_into(
        &mut self,
        now: f64,
        speed_factor: f64,
        discipline: ShareDiscipline,
        finish: &mut Vec<f64>,
    ) {
        let Self {
            jobs,
            rem,
            alive,
            shares,
            rates,
            ..
        } = self;
        projection_kernel(
            jobs,
            now,
            speed_factor,
            discipline,
            None,
            rem,
            alive,
            shares,
            rates,
            finish,
        );
    }
}

/// The piecewise-constant-rate projection over caller-owned buffers.
///
/// Scratch buffers (`rem`, `alive`, `shares`) and the output (`finish`)
/// are cleared and refilled; their capacity is reused across calls.
///
/// `warm` optionally carries precomputed first-segment shares for a
/// *prefix* of `jobs` together with their left-to-right sum (what
/// [`first_segment_shares`] produced for the same prefix at the same
/// `now`): the opening share pass then starts from the cached sum and
/// computes shares only for the suffix — the same float operations in
/// the same order, so the warm start is bitwise-neutral.
#[allow(clippy::too_many_arguments)]
fn projection_kernel(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
    warm: Option<(&[f64], f64)>,
    rem: &mut Vec<f64>,
    alive: &mut Vec<bool>,
    shares: &mut Vec<f64>,
    rates: &mut Vec<f64>,
    finish: &mut Vec<f64>,
) {
    assert!(speed_factor > 0.0);
    let n = jobs.len();
    finish.clear();
    finish.resize(n, 0.0);
    if n == 0 {
        return;
    }
    rem.clear();
    rem.extend(jobs.iter().map(|j| j.remaining_est.max(EPS_WORK)));
    alive.clear();
    alive.resize(n, true);
    // Sized once: dead entries keep stale values, which no loop below
    // reads (every access is `alive`-guarded), so hoisting the clears
    // out of the segment loop is bitwise-neutral.
    shares.clear();
    shares.resize(n, 0.0);
    rates.clear();
    rates.resize(n, 0.0);
    let (jobs, rem) = (&jobs[..n], &mut rem[..n]);
    let (alive, shares, rates) = (&mut alive[..n], &mut shares[..n], &mut rates[..n]);
    let strict = matches!(discipline, ShareDiscipline::Strict);
    let mut alive_count = n;
    let mut t = now;
    // Shares for the first segment; later segments refresh theirs inside
    // the advance pass below (the advance already walks the same indices
    // in the same order, so folding the share refresh in saves a whole
    // pass per segment without reordering any float op). A warm prefix
    // replays its cached shares and running sum instead of recomputing.
    let mut total_share = 0.0;
    let mut first = 0;
    if let Some((pre, pre_sum)) = warm {
        debug_assert!(pre.len() <= n, "warm prefix longer than the job list");
        first = pre.len().min(n);
        shares[..first].copy_from_slice(&pre[..first]);
        total_share = pre_sum;
    }
    for i in first..n {
        let rd = (jobs[i].abs_deadline - t).max(EPS_DEADLINE);
        shares[i] = rem[i] / rd;
        total_share += shares[i];
    }
    // Each job contributes at most one completion and one deadline
    // crossing; the +8 absorbs float-fuzz re-loops.
    let max_steps = 2 * n + 8;
    for _ in 0..max_steps {
        if alive_count == 0 {
            break;
        }
        let denom = if strict {
            total_share.max(1.0)
        } else {
            total_share
        };
        // Rates are fixed per segment; the segment length is the first
        // completion or first deadline crossing. One fused pass: each
        // rate is computed once and fed into the running `dt` minimum in
        // the same ascending-index order the split loops used, so every
        // comparison sees identical values.
        let mut dt = f64::INFINITY;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let r = shares[i] / denom * speed_factor;
            rates[i] = r;
            // A share can underflow to zero (tiny remaining work against
            // an astronomically inflated co-resident share); such a job
            // contributes no completion candidate — `min(x, ∞)` is `x`,
            // so skipping is bitwise-neutral when rates are positive.
            if r > 0.0 {
                dt = dt.min(rem[i] / r);
            }
            let to_deadline = jobs[i].abs_deadline - t;
            if to_deadline > EPS_WORK {
                dt = dt.min(to_deadline);
            }
        }
        if !(dt.is_finite() && dt > 0.0) {
            // Every surviving job is rate-starved with no deadline
            // crossing ahead: nothing will ever complete. Stop and let
            // the fallback below pin survivors at the current time.
            break;
        }
        // Advance the segment, refreshing each survivor's share for the
        // next segment in the same ascending-index walk: the share values
        // and the `total_share` summation order are exactly those the
        // standalone share pass produced.
        let t_next = t + dt;
        total_share = 0.0;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            rem[i] -= rates[i] * dt;
            if rem[i] <= EPS_WORK {
                alive[i] = false;
                alive_count -= 1;
                finish[i] = t_next;
            } else {
                let rd = (jobs[i].abs_deadline - t_next).max(EPS_DEADLINE);
                shares[i] = rem[i] / rd;
                total_share += shares[i];
            }
        }
        t = t_next;
    }
    // Pathological fuzz fallback: finish whatever survived "now".
    for i in 0..n {
        if alive[i] {
            finish[i] = t;
        }
    }
}

/// Minimum separation between two projected deadline-delay values that
/// certifies `σ_j` nonzero without finishing the projection.
///
/// Soundness: a population of `n` values containing two entries that
/// differ by `g` has variance at least `g²/(2n)` (both entries deviate
/// from any mean by a combined squared distance of `g²/2`), so
/// `σ ≥ g/√(2n)`. With `g = 1e-5` and `n ≤` [`VERDICT_BAIL_MAX_JOBS`],
/// that floor is `≥ 1.1e-7` — two orders of magnitude above
/// [`SIGMA_ZERO`] — and it holds for the *reference* kernel's σ as well:
/// the deadline-delays the bail-out compares are bitwise the values the
/// full run would feed into [`RiskSummary::from_dds`] (the early exit
/// changes which operations are skipped, never the ones performed), and
/// the reference's computed σ can undercut the mathematical floor only
/// by summation-cancellation noise of a few ulp of 1.0 (~1e-15 in the
/// variance), far below `g²/(2n) ≥ 1.2e-14`. A certified-risky node is
/// therefore unsuitable under every decision variant, exactly as the
/// finished projection would have concluded.
pub const VERDICT_BAIL_GAP: f64 = 1e-5;

/// Job-count ceiling for the early bail-out: past this, the
/// `g²/(2n)` variance floor approaches summation-noise scale, so the
/// kernel just runs to completion (exactness over speed).
pub const VERDICT_BAIL_MAX_JOBS: usize = 4096;

/// [`projection_kernel`] specialised for admission *verdicts*: identical
/// float work in identical order, but it stops — returning `true` — as
/// soon as the partial projection certifies `σ_j ≥` a sound floor far
/// above [`SIGMA_ZERO`] (see [`VERDICT_BAIL_GAP`]). Two separation
/// witnesses are tracked on the way:
///
/// - a *finished* job's deadline-delay is exact (its remaining segments
///   cannot move a finish time already emitted), and
/// - a job still alive past its deadline has `dd ≥ (t − dl + rd)/rd`
///   (its finish can only be later than the current segment start).
///
/// A positive gap between the smallest exact delay and the largest
/// lower bound always involves two distinct jobs (any one job's bound
/// never exceeds its own exact value), which is what the variance floor
/// needs. Returns `false` when the projection ran to completion, in
/// which case `finish` holds exactly what [`projection_kernel`] would
/// have produced.
#[allow(clippy::too_many_arguments)]
fn projection_verdict_kernel(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
    warm: Option<(&[f64], f64)>,
    rem: &mut Vec<f64>,
    alive: &mut Vec<bool>,
    shares: &mut Vec<f64>,
    rates: &mut Vec<f64>,
    finish: &mut Vec<f64>,
) -> bool {
    assert!(speed_factor > 0.0);
    let n = jobs.len();
    finish.clear();
    finish.resize(n, 0.0);
    if n == 0 {
        return false;
    }
    rem.clear();
    rem.extend(jobs.iter().map(|j| j.remaining_est.max(EPS_WORK)));
    alive.clear();
    alive.resize(n, true);
    shares.clear();
    shares.resize(n, 0.0);
    rates.clear();
    rates.resize(n, 0.0);
    let (jobs, rem) = (&jobs[..n], &mut rem[..n]);
    let (alive, shares, rates) = (&mut alive[..n], &mut shares[..n], &mut rates[..n]);
    let strict = matches!(discipline, ShareDiscipline::Strict);
    let bail = n <= VERDICT_BAIL_MAX_JOBS;
    // Smallest exact deadline-delay among finished jobs / largest lower
    // bound over any job's eventual delay.
    let mut min_fin = f64::INFINITY;
    let mut max_low = f64::NEG_INFINITY;
    let mut alive_count = n;
    let mut t = now;
    let mut total_share = 0.0;
    let mut first = 0;
    if let Some((pre, pre_sum)) = warm {
        debug_assert!(pre.len() <= n, "warm prefix longer than the job list");
        first = pre.len().min(n);
        shares[..first].copy_from_slice(&pre[..first]);
        total_share = pre_sum;
    }
    for i in first..n {
        let rd = (jobs[i].abs_deadline - t).max(EPS_DEADLINE);
        shares[i] = rem[i] / rd;
        total_share += shares[i];
    }
    let max_steps = 2 * n + 8;
    for _ in 0..max_steps {
        if alive_count == 0 {
            break;
        }
        let denom = if strict {
            total_share.max(1.0)
        } else {
            total_share
        };
        let mut dt = f64::INFINITY;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let r = shares[i] / denom * speed_factor;
            rates[i] = r;
            if r > 0.0 {
                dt = dt.min(rem[i] / r);
            }
            let to_deadline = jobs[i].abs_deadline - t;
            if to_deadline > EPS_WORK {
                dt = dt.min(to_deadline);
            } else if bail && min_fin.is_finite() {
                // Alive past its deadline: finish ≥ t, so its eventual
                // dd is at least this (rd measured from `now`, exactly
                // as `summarize_into` will measure it).
                let rd = (jobs[i].abs_deadline - now).max(EPS_DEADLINE);
                let lb = ((t - jobs[i].abs_deadline).max(0.0) + rd) / rd;
                if lb > max_low {
                    max_low = lb;
                    if max_low - min_fin >= VERDICT_BAIL_GAP {
                        return true;
                    }
                }
            }
        }
        if !(dt.is_finite() && dt > 0.0) {
            break;
        }
        let t_next = t + dt;
        total_share = 0.0;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            rem[i] -= rates[i] * dt;
            if rem[i] <= EPS_WORK {
                alive[i] = false;
                alive_count -= 1;
                finish[i] = t_next;
                if bail {
                    let rd = (jobs[i].abs_deadline - now).max(EPS_DEADLINE);
                    let delay = (t_next - jobs[i].abs_deadline).max(0.0);
                    let dd = (delay + rd) / rd;
                    if dd < min_fin {
                        min_fin = dd;
                    }
                    if dd > max_low {
                        max_low = dd;
                    }
                    if max_low - min_fin >= VERDICT_BAIL_GAP {
                        return true;
                    }
                }
            } else {
                let rd = (jobs[i].abs_deadline - t_next).max(EPS_DEADLINE);
                shares[i] = rem[i] / rd;
                total_share += shares[i];
            }
        }
        t = t_next;
    }
    for i in 0..n {
        if alive[i] {
            finish[i] = t;
        }
    }
    false
}

/// Projects the absolute finish time of every job on one node of the
/// given speed factor, starting from `now`.
///
/// The projection replays the engine's piecewise-constant-rate dynamics:
/// shares are recomputed at every projected completion and at every
/// deadline crossing, matching `proportional::ProportionalCluster`.
///
/// Returns one absolute finish time per input job (same order).
///
/// This is the allocating convenience wrapper; hot paths should hold a
/// [`ProjectionWorkspace`] and call [`ProjectionWorkspace::project_finishes_into`].
pub fn project_finishes(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> Vec<f64> {
    let mut finish = Vec::new();
    let mut ws = ProjectionWorkspace::new();
    ws.project_finishes_into(jobs, now, speed_factor, discipline, &mut finish);
    finish
}

/// Naive single-segment projection (ablation): freeze the initial rates
/// forever instead of recomputing at projected completions and deadline
/// crossings.
///
/// Under this simplification an overloaded node (total share `S > 1`)
/// projects *every* job to finish at `S × remaining_deadline` — all
/// deadline-delays equal `S`, so `σ_j = 0` **always** and the risk test
/// degenerates to "accept whenever enough processors exist". The
/// piecewise projection ([`project_finishes`]) is what lets Eq. 6
/// distinguish certain delay from dispersed delay; this function exists
/// to measure exactly how much that matters (see the
/// `LibraRisk-NaiveProj` ablation).
pub fn project_finishes_single_segment(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> Vec<f64> {
    assert!(speed_factor > 0.0);
    if jobs.is_empty() {
        return Vec::new();
    }
    let mut total_share = 0.0;
    let shares: Vec<f64> = jobs
        .iter()
        .map(|j| {
            let rd = (j.abs_deadline - now).max(EPS_DEADLINE);
            let s = j.remaining_est.max(EPS_WORK) / rd;
            total_share += s;
            s
        })
        .collect();
    let denom = match discipline {
        ShareDiscipline::Strict => total_share.max(1.0),
        ShareDiscipline::WorkConserving => total_share,
    };
    jobs.iter()
        .zip(&shares)
        .map(|(j, &s)| {
            let rate = s / denom * speed_factor;
            now + j.remaining_est.max(EPS_WORK) / rate
        })
        .collect()
}

/// [`node_risk`] computed with the naive single-segment projection.
pub fn node_risk_single_segment(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> (f64, f64) {
    let finishes = project_finishes_single_segment(jobs, now, speed_factor, discipline);
    let delays = delays_from_finishes(jobs, &finishes);
    let dds: Vec<f64> = jobs
        .iter()
        .zip(&delays)
        .map(|(j, &d)| deadline_delay(d, j.abs_deadline, now))
        .collect();
    risk(&dds)
}

/// Eq. 3: projected delay of each job, `max(0, finish − abs_deadline)`.
pub fn delays_from_finishes(jobs: &[ProjectedJob], finishes: &[f64]) -> Vec<f64> {
    jobs.iter()
        .zip(finishes)
        .map(|(j, &f)| (f - j.abs_deadline).max(0.0))
        .collect()
}

/// Eq. 4: the deadline-delay metric
/// `(delay_i + remaining_deadline_i) / remaining_deadline_i`, evaluated at
/// `now`; the remaining deadline is floored at [`EPS_DEADLINE`].
pub fn deadline_delay(delay: f64, abs_deadline: f64, now: f64) -> f64 {
    let rd = (abs_deadline - now).max(EPS_DEADLINE);
    (delay + rd) / rd
}

/// Eq. 5 and Eq. 6: mean `μ_j` and risk `σ_j` (population standard
/// deviation) of a node's deadline-delay values. Returns `(μ, σ)`;
/// an empty node has `(1, 0)` — no jobs, no risk.
pub fn risk(dds: &[f64]) -> (f64, f64) {
    if dds.is_empty() {
        return (1.0, 0.0);
    }
    let n = dds.len() as f64;
    let mu = dds.iter().sum::<f64>() / n;
    let var = dds.iter().map(|d| d * d).sum::<f64>() / n - mu * mu;
    (mu, var.max(0.0).sqrt())
}

/// Full per-node risk evaluation: projects finishes, derives delays and
/// deadline-delays, returns `(μ_j, σ_j)`.
///
/// ```
/// use cluster::projection::{node_risk, ProjectedJob, ShareDiscipline};
///
/// // Two feasible jobs: everything meets its deadline, so no risk.
/// let calm = [
///     ProjectedJob { remaining_est: 50.0, abs_deadline: 100.0 },
///     ProjectedJob { remaining_est: 50.0, abs_deadline: 200.0 },
/// ];
/// let (mu, sigma) = node_risk(&calm, 0.0, 1.0, ShareDiscipline::WorkConserving);
/// assert!((mu - 1.0).abs() < 1e-9 && sigma < 1e-9);
///
/// // Overload with heterogeneous deadlines: delays disperse → risk.
/// let overloaded = [
///     ProjectedJob { remaining_est: 100.0, abs_deadline: 100.0 },
///     ProjectedJob { remaining_est: 100.0, abs_deadline: 200.0 },
/// ];
/// let (_, sigma) = node_risk(&overloaded, 0.0, 1.0, ShareDiscipline::WorkConserving);
/// assert!(sigma > 1e-9);
/// ```
pub fn node_risk(
    jobs: &[ProjectedJob],
    now: f64,
    speed_factor: f64,
    discipline: ShareDiscipline,
) -> (f64, f64) {
    ProjectionWorkspace::new().node_risk_with(jobs, now, speed_factor, discipline)
}

/// `true` when `sigma` counts as zero risk.
#[inline]
pub fn is_zero_risk(sigma: f64) -> bool {
    sigma < SIGMA_ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(remaining_est: f64, abs_deadline: f64) -> ProjectedJob {
        ProjectedJob {
            remaining_est,
            abs_deadline,
        }
    }

    #[test]
    fn empty_node_has_no_risk() {
        let (mu, sigma) = node_risk(&[], 0.0, 1.0, ShareDiscipline::Strict);
        assert_eq!((mu, sigma), (1.0, 0.0));
        assert!(project_finishes(&[], 0.0, 1.0, ShareDiscipline::Strict).is_empty());
    }

    #[test]
    fn feasible_jobs_finish_exactly_at_deadline_under_strict_shares() {
        // Two jobs, total share 0.75 ≤ 1: each runs at its required share
        // and meets its deadline exactly.
        let jobs = [pj(50.0, 100.0), pj(50.0, 200.0)];
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!((f[0] - 100.0).abs() < 1e-6, "finish {}", f[0]);
        assert!((f[1] - 200.0).abs() < 1e-6, "finish {}", f[1]);
        let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!((mu - 1.0).abs() < 1e-9);
        assert!(is_zero_risk(sigma));
    }

    #[test]
    fn work_conserving_finishes_early() {
        let jobs = [pj(50.0, 100.0), pj(50.0, 200.0)];
        // S = 0.75; rates scale to s/S: job 0 rate = (0.5/0.75) = 2/3.
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        assert!(f[0] < 100.0 - 1e-6);
        assert!(f[1] < 200.0 - 1e-6);
        let (_, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        assert!(is_zero_risk(sigma));
    }

    #[test]
    fn overload_with_heterogeneous_deadlines_has_risk() {
        // Total share 1.5: the earlier-deadline job is projected late while
        // the later one recovers after the first completes → dispersion.
        let jobs = [pj(100.0, 100.0), pj(100.0, 200.0)];
        let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(mu > 1.0);
        assert!(!is_zero_risk(sigma), "sigma {sigma}");
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(f[0] > 100.0 + 1.0, "early-deadline job is late: {}", f[0]);
    }

    #[test]
    fn single_infeasible_job_is_certain_hence_zero_risk() {
        // One job whose estimate (300) exceeds its deadline (100): it is
        // projected late, but there is nothing to disperse against, so
        // σ = 0 — the Eq. 6 property LibraRisk exploits.
        let jobs = [pj(300.0, 100.0)];
        let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(mu > 1.0, "projected late, mu {mu}");
        assert!(is_zero_risk(sigma), "sigma {sigma}");
    }

    #[test]
    fn projected_finish_respects_speed_factor() {
        let jobs = [pj(100.0, 1000.0)];
        let slow = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        let fast = project_finishes(&jobs, 0.0, 2.0, ShareDiscipline::WorkConserving);
        assert!((slow[0] - 100.0).abs() < 1e-6);
        assert!((fast[0] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn already_late_job_contributes_capped_deadline_delay() {
        // Job whose deadline passed 50 s ago: remaining deadline floors at
        // EPS_DEADLINE, share is huge, and dd is large but finite.
        let jobs = [pj(10.0, -50.0), pj(10.0, 1000.0)];
        let (_, sigma) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(!is_zero_risk(sigma), "a sick node must read as risky");
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn single_segment_projection_makes_overload_look_certain() {
        // The same overloaded pair that the piecewise projection flags as
        // risky reads as zero-risk under the naive projection: with rates
        // frozen, both jobs finish at S × their remaining deadline and the
        // deadline-delays coincide at S.
        let jobs = [pj(100.0, 100.0), pj(100.0, 200.0)];
        let (mu_naive, sigma_naive) =
            node_risk_single_segment(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(
            (mu_naive - 1.5).abs() < 1e-9,
            "mu {mu_naive} should equal S"
        );
        assert!(is_zero_risk(sigma_naive), "sigma {sigma_naive}");
        let (_, sigma_piecewise) = node_risk(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        assert!(
            !is_zero_risk(sigma_piecewise),
            "piecewise sees the dispersion"
        );
    }

    #[test]
    fn single_segment_agrees_with_piecewise_when_feasible() {
        // No overload, no deadline crossings before completion: the two
        // projections coincide.
        let jobs = [pj(50.0, 100.0), pj(50.0, 200.0)];
        let a = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        let b = project_finishes_single_segment(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        assert!(project_finishes_single_segment(&[], 0.0, 1.0, ShareDiscipline::Strict).is_empty());
    }

    #[test]
    fn delays_match_eq3() {
        let jobs = [pj(10.0, 100.0), pj(10.0, 5.0)];
        let d = delays_from_finishes(&jobs, &[90.0, 25.0]);
        assert_eq!(d, vec![0.0, 20.0]);
    }

    #[test]
    fn deadline_delay_matches_paper_example() {
        // The paper's §3.2 example: delay 20, remaining deadline 5 → dd 5;
        // same delay with remaining deadline 10 → dd 3.
        assert!((deadline_delay(20.0, 5.0, 0.0) - 5.0).abs() < 1e-12);
        assert!((deadline_delay(20.0, 10.0, 0.0) - 3.0).abs() < 1e-12);
        // Zero delay → the metric's minimum/best value 1.
        assert_eq!(deadline_delay(0.0, 100.0, 0.0), 1.0);
    }

    #[test]
    fn risk_of_identical_dds_is_zero() {
        let (mu, sigma) = risk(&[2.5, 2.5, 2.5]);
        assert_eq!(mu, 2.5);
        assert!(is_zero_risk(sigma));
    }

    #[test]
    fn risk_matches_population_stddev() {
        let (mu, sigma) = risk(&[1.0, 3.0]);
        assert_eq!(mu, 2.0);
        assert!((sigma - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_conserves_capacity() {
        // However many jobs, total work cannot complete faster than
        // capacity 1 allows: sum of estimates = 300 → last finish ≥ 300.
        let jobs = [pj(100.0, 50.0), pj(100.0, 60.0), pj(100.0, 70.0)];
        let f = project_finishes(&jobs, 0.0, 1.0, ShareDiscipline::Strict);
        let last = f.iter().cloned().fold(0.0, f64::max);
        assert!(last >= 300.0 - 1e-6, "last finish {last}");
    }

    #[test]
    fn projection_starts_from_now() {
        let jobs = [pj(10.0, 1e9)];
        let f = project_finishes(&jobs, 500.0, 1.0, ShareDiscipline::WorkConserving);
        assert!((f[0] - 510.0).abs() < 1e-6);
    }

    #[test]
    fn workspace_matches_allocating_path_bitwise() {
        let cases: Vec<Vec<ProjectedJob>> = vec![
            vec![],
            vec![pj(300.0, 100.0)],
            vec![pj(50.0, 100.0), pj(50.0, 200.0)],
            vec![pj(100.0, 100.0), pj(100.0, 200.0)],
            vec![pj(10.0, -50.0), pj(10.0, 1000.0)],
            vec![pj(100.0, 50.0), pj(100.0, 60.0), pj(100.0, 70.0)],
        ];
        let mut ws = ProjectionWorkspace::new();
        let mut out = Vec::new();
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            for now in [0.0, 17.25, 1e6] {
                for jobs in &cases {
                    let want = project_finishes(jobs, now, 1.5, disc);
                    ws.project_finishes_into(jobs, now, 1.5, disc, &mut out);
                    assert_eq!(
                        want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "finishes must be bitwise identical"
                    );
                    let (mu_a, sig_a) = node_risk(jobs, now, 1.5, disc);
                    let (mu_b, sig_b) = ws.node_risk_with(jobs, now, 1.5, disc);
                    assert_eq!(mu_a.to_bits(), mu_b.to_bits());
                    assert_eq!(sig_a.to_bits(), sig_b.to_bits());
                }
            }
        }
    }

    #[test]
    fn workspace_reuses_capacity_after_warmup() {
        let jobs = [pj(100.0, 100.0), pj(100.0, 200.0), pj(50.0, 300.0)];
        let mut ws = ProjectionWorkspace::new();
        let mut out = Vec::new();
        ws.project_finishes_into(&jobs, 0.0, 1.0, ShareDiscipline::Strict, &mut out);
        let caps = (ws.rem.capacity(), ws.shares.capacity(), out.capacity());
        for _ in 0..64 {
            ws.project_finishes_into(&jobs, 0.0, 1.0, ShareDiscipline::Strict, &mut out);
        }
        assert_eq!(
            caps,
            (ws.rem.capacity(), ws.shares.capacity(), out.capacity()),
            "warm buffers must not reallocate"
        );
    }

    #[test]
    fn staged_path_matches_slice_path() {
        let jobs = [pj(80.0, 90.0), pj(20.0, 400.0)];
        let mut ws = ProjectionWorkspace::new();
        ws.stage().extend_from_slice(&jobs);
        let staged = ws.node_risk_staged(3.0, 2.0, ShareDiscipline::WorkConserving);
        let direct = node_risk(&jobs, 3.0, 2.0, ShareDiscipline::WorkConserving);
        assert_eq!(staged.0.to_bits(), direct.0.to_bits());
        assert_eq!(staged.1.to_bits(), direct.1.to_bits());

        ws.stage().extend_from_slice(&jobs);
        let mut a = Vec::new();
        ws.staged_finishes_into(3.0, 2.0, ShareDiscipline::WorkConserving, &mut a);
        let b = project_finishes(&jobs, 3.0, 2.0, ShareDiscipline::WorkConserving);
        assert_eq!(a, b);
    }

    #[test]
    fn risk_summary_matches_risk_bitwise() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![1.0],
            vec![2.5, 2.5, 2.5],
            vec![1.0, 3.0],
            vec![1.0, 1.7, 42.0, 1e6],
        ];
        for dds in &cases {
            let (mu, sigma) = risk(dds);
            let s = RiskSummary::from_dds(dds);
            assert_eq!(s.count, dds.len());
            assert_eq!(s.mu.to_bits(), mu.to_bits());
            assert_eq!(s.sigma.to_bits(), sigma.to_bits());
            assert!(s.bits_eq(&RiskSummary::from_dds(dds)));
        }
        assert!(RiskSummary::EMPTY.bits_eq(&RiskSummary::from_dds(&[])));
    }

    #[test]
    fn delta_projection_matches_staging_by_hand() {
        let base = [pj(80.0, 90.0), pj(20.0, 400.0), pj(100.0, 120.0)];
        let extra = pj(55.0, 250.0);
        let mut ws = ProjectionWorkspace::new();
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            for now in [0.0, 17.25] {
                let delta = ws.node_risk_delta(&base, extra, now, 1.5, disc);
                let mut all = base.to_vec();
                all.push(extra);
                let direct = node_risk(&all, now, 1.5, disc);
                assert_eq!(delta.mu.to_bits(), direct.0.to_bits());
                assert_eq!(delta.sigma.to_bits(), direct.1.to_bits());
            }
        }
        // Empty base: delta over [] + extra equals the single-job node.
        let delta = ws.node_risk_delta(&[], extra, 0.0, 1.0, ShareDiscipline::Strict);
        let direct = node_risk(&[extra], 0.0, 1.0, ShareDiscipline::Strict);
        assert_eq!(delta.mu.to_bits(), direct.0.to_bits());
        assert_eq!(delta.sigma.to_bits(), direct.1.to_bits());
    }

    #[test]
    fn canonical_class_keys_are_order_invariant_and_length_seeded() {
        let a = [pj(80.0, 90.0), pj(20.0, 400.0), pj(100.0, 120.0)];
        let b = [pj(100.0, 120.0), pj(80.0, 90.0), pj(20.0, 400.0)];
        let mut ka = Vec::new();
        let mut kb = Vec::new();
        let ha = canonical_class_keys(&a, &mut ka);
        let hb = canonical_class_keys(&b, &mut kb);
        assert_eq!(ha, hb, "permutations share a class");
        assert_eq!(ka, kb);
        // A strict prefix is a different class even though every element
        // matches (length seeding).
        let hp = canonical_class_keys(&a[..2], &mut kb);
        assert_ne!(ha, hp);
        // Different loads are different classes.
        let c = [pj(80.0, 90.0), pj(20.0, 400.0), pj(100.0, 121.0)];
        let hc = canonical_class_keys(&c, &mut kb);
        assert_ne!(ha, hc);
        assert_eq!(canonical_class_keys(&[], &mut ka), {
            let mut k = Vec::new();
            canonical_class_keys(&[], &mut k)
        });
    }

    #[test]
    fn first_segment_shares_match_kernel_opening_pass_bitwise() {
        let jobs = [pj(80.0, 90.0), pj(20.0, 400.0), pj(1e-9, 0.5)];
        let now = 3.0;
        let mut shares = Vec::new();
        let sum = first_segment_shares(&jobs, now, &mut shares);
        let mut want_sum = 0.0;
        for (i, j) in jobs.iter().enumerate() {
            let rd = (j.abs_deadline - now).max(EPS_DEADLINE);
            let s = j.remaining_est.max(EPS_WORK) / rd;
            assert_eq!(shares[i].to_bits(), s.to_bits());
            want_sum += s;
        }
        assert_eq!(sum.to_bits(), want_sum.to_bits());
        assert_eq!(first_segment_shares(&[], 0.0, &mut shares), 0.0);
        assert!(shares.is_empty());
    }

    #[test]
    fn prefixed_paths_match_cold_paths_bitwise() {
        let base = [pj(80.0, 90.0), pj(20.0, 400.0), pj(100.0, 120.0)];
        let extra = pj(55.0, 250.0);
        let mut ws = ProjectionWorkspace::new();
        let mut shares = Vec::new();
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            for now in [0.0, 17.25] {
                let sum = first_segment_shares(&base, now, &mut shares);
                let warm = ws.node_risk_delta_prefixed(&base, &shares, sum, extra, now, 1.5, disc);
                let cold = ws.node_risk_delta(&base, extra, now, 1.5, disc);
                assert!(warm.bits_eq(&cold), "{disc:?} now {now}");
                let warm_base = ws.node_risk_summary_prefixed(&base, &shares, sum, now, 1.5, disc);
                let cold_base = ws.node_risk_summary_with(&base, now, 1.5, disc);
                assert!(warm_base.bits_eq(&cold_base), "{disc:?} now {now}");
            }
        }
        // Empty base: the warm prefix is empty and the candidate's share
        // is computed in-kernel.
        let sum = first_segment_shares(&[], 0.0, &mut shares);
        let warm = ws.node_risk_delta_prefixed(
            &[],
            &shares,
            sum,
            extra,
            0.0,
            1.0,
            ShareDiscipline::WorkConserving,
        );
        let cold = ws.node_risk_delta(&[], extra, 0.0, 1.0, ShareDiscipline::WorkConserving);
        assert!(warm.bits_eq(&cold));
    }

    #[test]
    fn screen_never_disagrees_with_the_kernel() {
        // Wherever the screen fires, the kernel must report exactly
        // σ = 0.0 and μ = 1.0 (bitwise) — for the piecewise and the
        // single-segment projections alike. A dense deterministic sweep
        // over share levels, deadline spreads and margins, including
        // values straddling the screen's margin condition.
        let mut ws = ProjectionWorkspace::new();
        let mut shares = Vec::new();
        let mut keys = Vec::new();
        let mut fired = 0usize;
        for i in 0..2000u64 {
            let r = |k: u64| {
                // Small deterministic hash → [0, 1).
                let x = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ k)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D);
                (x >> 11) as f64 / (1u64 << 53) as f64
            };
            let now = r(1) * 100.0;
            let n = (r(2) * 4.0) as usize;
            let jobs: Vec<ProjectedJob> = (0..n)
                .map(|k| {
                    let rd = 0.5 + r(10 + k as u64) * 50.0;
                    let share = 0.05 + r(20 + k as u64) * 0.45;
                    pj(share * rd, now + rd)
                })
                .collect();
            let cand_rd = 0.5 + r(3) * 200.0;
            let cand = pj((0.01 + r(4) * 0.6) * cand_rd, now + cand_rd);
            let sum = first_segment_shares(&jobs, now, &mut shares);
            let min_dl = min_abs_deadline(&jobs);
            if screens_zero_risk(ShareDiscipline::WorkConserving, 1.0, sum, min_dl, cand, now) {
                fired += 1;
                let s = ws.node_risk_delta(&jobs, cand, now, 1.0, ShareDiscipline::WorkConserving);
                assert_eq!(s.sigma.to_bits(), 0.0f64.to_bits(), "case {i}: {jobs:?}");
                assert_eq!(s.mu.to_bits(), 1.0f64.to_bits(), "case {i}");
                let (mu1, sig1) = node_risk_single_segment(
                    &{
                        let mut all = jobs.clone();
                        all.push(cand);
                        all
                    },
                    now,
                    1.0,
                    ShareDiscipline::WorkConserving,
                );
                assert_eq!(sig1.to_bits(), 0.0f64.to_bits(), "case {i} (naive)");
                assert_eq!(mu1.to_bits(), 1.0f64.to_bits(), "case {i} (naive)");
            }
            // The class fingerprint must be insensitive to job order.
            let h = canonical_class_keys(&jobs, &mut keys);
            let mut rev = jobs.clone();
            rev.reverse();
            assert_eq!(h, canonical_class_keys(&rev, &mut keys));
        }
        assert!(
            fired > 100,
            "screen never fired ({fired}); sweep too strict"
        );
    }

    #[test]
    fn screen_declines_strict_shares_slow_nodes_and_thin_margins() {
        let cand = pj(10.0, 100.0);
        // Comfortable case fires under work-conserving, unit speed.
        assert!(screens_zero_risk(
            ShareDiscipline::WorkConserving,
            1.0,
            0.3,
            f64::INFINITY,
            cand,
            0.0
        ));
        // Strict shares: finishes land exactly on deadlines — no margin.
        assert!(!screens_zero_risk(
            ShareDiscipline::Strict,
            1.0,
            0.3,
            f64::INFINITY,
            cand,
            0.0
        ));
        // A slow node invalidates the rate ≥ share argument.
        assert!(!screens_zero_risk(
            ShareDiscipline::WorkConserving,
            0.9,
            0.3,
            f64::INFINITY,
            cand,
            0.0
        ));
        // Margin below EPS_DEADLINE: min_rd(1−S) = 100 × 0.005 = 0.5 < 1.
        assert!(!screens_zero_risk(
            ShareDiscipline::WorkConserving,
            1.0,
            0.895,
            f64::INFINITY,
            cand,
            0.0
        ));
        // A resident whose deadline is about to pass caps min_rd.
        assert!(!screens_zero_risk(
            ShareDiscipline::WorkConserving,
            1.0,
            0.3,
            0.5,
            cand,
            0.0
        ));
        // S ≥ 1 (headroom gone) never fires, whatever the deadlines.
        assert!(!screens_zero_risk(
            ShareDiscipline::WorkConserving,
            1.0,
            1.2,
            f64::INFINITY,
            cand,
            0.0
        ));
        // A candidate already inside its deadline's EPS window fails the
        // margin test via min_rd < 1.
        assert!(!screens_zero_risk(
            ShareDiscipline::WorkConserving,
            1.0,
            0.0,
            f64::INFINITY,
            pj(0.1, 0.5),
            0.0
        ));
    }

    #[test]
    fn screen_margin_exists_for_a_reason_floor_distortion() {
        // Why `S < 1` alone is not a sound screen: a segment boundary
        // landing inside a job's final EPS_DEADLINE window rewrites its
        // share from rem/rd to rem/1.0, collapsing its urgency against a
        // long-deadline co-resident. The screen must decline any node
        // whose margin allows a job to still be alive in that window —
        // here margin = min_rd·(1−S) ≈ 1.4 × 0.011 ≪ 1.
        let jobs = [pj(1.3, 1.4)];
        let cand = pj(60.0, 1000.0);
        let now = 0.0;
        let mut shares = Vec::new();
        let sum = first_segment_shares(&jobs, now, &mut shares);
        assert!(
            sum + 60.0 / 1000.0 < 1.0,
            "the naive share test would have passed"
        );
        assert!(!screens_zero_risk(
            ShareDiscipline::WorkConserving,
            1.0,
            sum,
            min_abs_deadline(&jobs),
            cand,
            now,
        ));
    }

    #[test]
    fn min_abs_deadline_handles_empty() {
        assert_eq!(min_abs_deadline(&[]), f64::INFINITY);
        assert_eq!(min_abs_deadline(&[pj(1.0, 5.0), pj(1.0, 3.0)]), 3.0);
    }

    #[test]
    fn rate_starved_job_does_not_panic_or_hang() {
        // Job 1's share underflows to zero against job 0's astronomically
        // inflated share (1e300 work due in 1 s): its completion candidate
        // would be ∞. The kernel must stay finite and terminate.
        let jobs = [pj(1e300, 1.0), pj(1e-6, 1e300)];
        for disc in [ShareDiscipline::Strict, ShareDiscipline::WorkConserving] {
            let f = project_finishes(&jobs, 0.0, 1.0, disc);
            assert!(f.iter().all(|x| x.is_finite()), "{f:?}");
            let (mu, sigma) = node_risk(&jobs, 0.0, 1.0, disc);
            assert!(mu.is_finite() && sigma.is_finite());
        }
    }
}
