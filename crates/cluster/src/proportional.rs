//! The live deadline-based proportional-share execution engine (§3.1).
//!
//! Every resident job on a node requires processor share
//! `s_ij = remaining_runtime_ij / remaining_deadline_i` (Eq. 1). The
//! engine turns shares into execution *rates* (renormalising when a node
//! is overloaded), advances all jobs piecewise-linearly between events,
//! and recomputes rates at every event.
//!
//! Two parallel notions of "remaining work" are tracked:
//!
//! * **actual** remaining work — decides when the job really completes;
//! * **estimated** remaining work — what the scheduler believes, seeded
//!   from the user estimate.
//!
//! When the estimate is an over-estimate the job completes while the
//! scheduler still believes work remains (capacity was held
//! conservatively); when it is an under-estimate the estimated work
//! exhausts first and the engine re-arms a *residual* estimate — the job
//! overruns, its share stays occupied longer than promised, and
//! co-resident jobs get squeezed. Those are precisely the two failure
//! modes of inaccurate estimates the paper studies.
//!
//! Multi-processor jobs are gang-scheduled over `numproc` nodes: the job's
//! progress rate is the minimum rate its nodes grant (a slower member
//! stalls the gang; surplus allocation on faster members idles).
//!
//! # Storage layout
//!
//! Residents live in a slot arena: scalar hot fields (`rate`,
//! `remaining_work`, `remaining_est`, cached deadline) are struct-of-arrays
//! vectors indexed by a stable slot, and the cold per-job state (the `Job`
//! itself, node list, bookkeeping) sits in a parallel `meta` arena touched
//! only on structural events. Iteration order is fixed by `order`, the
//! live slots sorted by ascending `JobId` — exactly the order the previous
//! `BTreeMap` storage iterated in, so every floating-point reduction
//! (share totals, busy integrals, event-gap minima) accumulates in the
//! same sequence and stays bitwise identical to the retained
//! [`ProportionalCluster::advance_reference`] oracle.
//!
//! The advance hot path is allocation-free: share totals, the per-slot
//! share scratch, and the completion/victim worklists are engine-owned
//! buffers reused across calls, and rate recomputation is skipped
//! entirely for zero-width advances (the state it would recompute from is
//! unchanged, so the skip is bitwise inert — this batches same-instant
//! event storms into one recompute).

use crate::cluster::Cluster;
use crate::node::NodeId;
use crate::projection::{ProjectedJob, ShareDiscipline, EPS_DEADLINE, EPS_WORK};
use sim::{SimDuration, SimTime};
use std::cell::RefCell;
use workload::{Job, JobId};

/// The projection-input view of a not-yet-admitted job: its *full*
/// estimate over its absolute deadline (exactly what
/// [`ProportionalCluster::node_projection`] appends as the tentative
/// `extra` job).
pub fn projected_job(job: &Job) -> ProjectedJob {
    ProjectedJob {
        remaining_est: job.estimate.as_secs().max(EPS_WORK),
        abs_deadline: job.absolute_deadline().as_secs(),
    }
}

/// Wake-up gap used when no resident job offers a finite event candidate
/// (every job rate-starved with no deadline ahead) and no
/// [`ProportionalConfig::max_quantum`] is configured.
const FALLBACK_QUANTUM: f64 = 3600.0;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProportionalConfig {
    /// How spare node capacity is treated (Libra's published allocation is
    /// [`ShareDiscipline::Strict`]).
    pub discipline: ShareDiscipline,
    /// When a job overruns its estimate, the scheduler re-arms its belief
    /// to `residual_fraction × original_estimate` (floored at
    /// [`ProportionalConfig::residual_floor`]).
    pub residual_fraction: f64,
    /// Minimum re-armed residual estimate, reference-seconds.
    pub residual_floor: f64,
    /// Upper bound on the gap between rate recomputations, seconds; keeps
    /// shares tracking their continuously-drifting ideal between sparse
    /// events.
    pub max_quantum: Option<f64>,
}

impl Default for ProportionalConfig {
    fn default() -> Self {
        ProportionalConfig {
            // Work-conserving matches GridSim's time-shared machines (the
            // paper's substrate): the Eq. 1 share is the *guaranteed
            // minimum*, and spare capacity is redistributed proportionally.
            // `Strict` (jobs run at exactly their share, spare capacity
            // idles) is kept as an ablation.
            discipline: ShareDiscipline::WorkConserving,
            residual_fraction: 0.05,
            residual_floor: 30.0,
            max_quantum: Some(3600.0),
        }
    }
}

/// A job that finished execution.
#[derive(Clone, Debug)]
pub struct CompletedJob {
    /// The job.
    pub job: Job,
    /// When it started executing (its admission instant — proportional
    /// share starts jobs immediately).
    pub started: SimTime,
    /// When its actual work completed.
    pub finish: SimTime,
    /// How many times it overran its (re-armed) estimate.
    pub overruns: u32,
}

/// A resident job evicted by a node failure, with the progress state the
/// caller's recovery policy needs (a gang job dies with *any* of its
/// member nodes; its survivors' capacity is freed).
#[derive(Clone, Debug)]
pub struct DisplacedJob {
    /// The job as admitted.
    pub job: Job,
    /// When it started executing.
    pub started: SimTime,
    /// Actual work left, reference-seconds.
    pub remaining_work: f64,
    /// Scheduler-believed work left, reference-seconds.
    pub remaining_est: f64,
    /// How many times it had overrun its estimate.
    pub overruns: u32,
}

/// Canonical state of one resident job, as carried by
/// [`EngineSnapshot`]. Everything else in the arena (rates, cached
/// deadlines, widths, epochs, scratch) is derived.
#[derive(Clone, Debug, PartialEq)]
pub struct ResidentSnapshot {
    /// The job as admitted.
    pub job: Job,
    /// Allocated nodes, in allocation order.
    pub nodes: Vec<NodeId>,
    /// `node_positions[i]` is this job's index within node
    /// `nodes[i]`'s resident list. The per-node list order is
    /// scheduler-visible (share folds and projections iterate it), so a
    /// restore must reproduce it exactly — it is *not* derivable from
    /// admission order once `swap_remove`s have happened.
    pub node_positions: Vec<u32>,
    /// When it started executing.
    pub started: SimTime,
    /// How many times it has overrun its estimate.
    pub overruns: u32,
    /// Actual work left, reference-seconds.
    pub remaining_work: f64,
    /// Scheduler-believed work left, reference-seconds.
    pub remaining_est: f64,
}

/// Canonical state of a [`ProportionalCluster`], sufficient to rebuild
/// the engine bit-for-bit at a quiescent instant (rates clean, no
/// event pending before `last_update`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct EngineSnapshot {
    /// Residents in ascending-id order (the canonical iteration order).
    pub residents: Vec<ResidentSnapshot>,
    /// Instant the engine state is valid for.
    pub last_update: SimTime,
    /// Delivered reference-seconds over `[0, last_update]`.
    pub busy_integral: f64,
    /// Node-seconds spent down over `[0, last_update]`.
    pub down_integral: f64,
    /// Per-node delivered reference-seconds.
    pub node_busy: Vec<f64>,
    /// Per-node down flags.
    pub down: Vec<bool>,
}

/// Cold per-resident state, touched only on structural events (admission,
/// completion, eviction, overrun re-arm).
#[derive(Clone, Debug)]
struct ResidentMeta {
    job: Job,
    nodes: Vec<NodeId>,
    /// `slots[i]` is this job's index within `node_jobs[nodes[i]]`,
    /// maintained across `swap_remove` so removal never scans the list.
    slots: Vec<u32>,
    started: SimTime,
    overruns: u32,
}

/// One entry of the share-ordered candidate index (see
/// [`ProportionalCluster::with_share_index`]): a node together with its
/// Eq. 2 base share (resident jobs only, evaluated at the engine's
/// current instant).
#[derive(Clone, Copy, Debug)]
pub struct ShareEntry {
    /// `node_total_share(node, None)` — bitwise identical to the direct
    /// call, so `base_share + job_share(job)` reproduces
    /// `node_total_share(node, Some(job))` exactly.
    pub base_share: f64,
    /// The node this entry describes.
    pub node: NodeId,
}

/// Lazily maintained share-ordered node index. Entries are sorted by
/// `(base_share ascending, node id ascending)`; staleness is detected in
/// O(1) via the engine's global epoch, and only nodes whose per-node
/// epoch moved get their share recomputed.
#[derive(Clone, Debug, Default)]
struct ShareIndex {
    entries: Vec<ShareEntry>,
    /// `pos[node]` = index of that node's entry in `entries`.
    pos: Vec<u32>,
    /// Per-node epoch pairs the shares were computed at (see
    /// [`ProportionalCluster::node_epoch`]).
    node_epochs: Vec<(u64, u64)>,
    /// Engine global epoch the whole index was validated at.
    global_epoch: u64,
    /// `false` until the first build.
    built: bool,
}

/// The proportional-share cluster engine.
#[derive(Clone, Debug)]
pub struct ProportionalCluster {
    cluster: Cluster,
    cfg: ProportionalConfig,
    /// Cached `cluster.speed_factor(n)` per node — the cluster is
    /// immutable after construction, so the cached value is the bitwise
    /// same factor every recompute would otherwise re-derive.
    speeds: Vec<f64>,
    // ---- slot arena (parallel vectors indexed by slot) ----
    /// Owning job id per slot (stale for free slots).
    ids: Vec<JobId>,
    rate: Vec<f64>,
    remaining_work: Vec<f64>,
    remaining_est: Vec<f64>,
    /// Cached `job.absolute_deadline().as_secs()`.
    abs_deadline: Vec<f64>,
    /// Cached `job.estimate.as_secs()` (overrun re-arm input).
    estimate_secs: Vec<f64>,
    /// Gang width; `1` selects the single-node fast path.
    width: Vec<u32>,
    /// Gang width as f64 (busy-integral multiplier, cached to keep the
    /// progress loop free of int→float conversions).
    width_f: Vec<f64>,
    /// First (and for `width == 1`, only) node of the gang.
    node0: Vec<u32>,
    /// Start of the gang's member-node run in [`Self::gang_nodes`].
    gang_start: Vec<u32>,
    /// Flat arena of gang member-node indices: slot `s` occupies
    /// `gang_nodes[gang_start[s]..gang_start[s] + width[s]]`, in
    /// allocation order — the same order `meta[s].nodes` holds, so hot
    /// loops walking the arena visit nodes in the reference order without
    /// the `meta` box + `Vec` double indirection. Released slots leak
    /// their run; the arena resets whenever the engine drains empty.
    gang_nodes: Vec<u32>,
    /// Per-slot Eq. 1 share computed by recompute pass 1 and consumed by
    /// pass 2 (engine-owned scratch; garbage between recomputes).
    share_scratch: Vec<f64>,
    /// Per-slot event-gap candidate computed by pass 2's dense sweep and
    /// consumed by its ordered min-fold (engine-owned scratch; free-list
    /// lanes hold garbage — possibly NaN — that the fold never reads).
    dt_scratch: Vec<f64>,
    /// Cold state; `None` marks a free slot.
    meta: Vec<Option<ResidentMeta>>,
    /// Live slots sorted by ascending `JobId` — the canonical iteration
    /// order of every per-resident reduction (see module docs).
    order: Vec<u32>,
    free_slots: Vec<u32>,
    /// Arena slots resident per node, in admission order (removals
    /// `swap_remove`, mirroring the historical `Vec<JobId>` lists).
    node_jobs: Vec<Vec<u32>>,
    last_update: SimTime,
    busy_integral: f64,
    /// Node-seconds spent down over `[0, last_update]` — subtracted from
    /// the utilisation denominator so a half-dead cluster running flat
    /// out reads as fully utilised, not half. Stays exactly `0.0` on
    /// fault-free runs, keeping their utilisation bitwise unchanged.
    down_integral: f64,
    node_busy: Vec<f64>,
    /// Discrete component of the per-node epoch pair: bumped on the
    /// node's *discrete* scheduler-visible changes (admission, removal,
    /// estimate re-arm, fail/restore). Plain time advances do not touch
    /// it — [`ProportionalCluster::node_epoch`] pairs it with
    /// `global_epoch` for occupied nodes so advances still invalidate
    /// without a per-node write.
    node_epochs: Vec<u64>,
    /// Bumped only when a node's resident *membership* changes — a job
    /// admitted to or removed from the node, a resident's estimate
    /// re-armed after an overrun, or the node failing/restoring. Plain
    /// time advances leave it alone, so decision layers can cache per-node structure
    /// that survives advances: the set of arena slots resident on the
    /// node and any ordering over them stay valid exactly while this
    /// counter stands still.
    membership_epoch: Vec<u64>,
    /// Earliest absolute deadline among each node's residents
    /// (`+inf` when empty), maintained at membership changes so the
    /// admission screen reads one packed array instead of walking
    /// `node_jobs` per candidate. Deadlines are fixed per job, so plain
    /// advances and estimate re-arms cannot move it.
    node_min_dl: Vec<f64>,
    /// Occupancy bitmask over nodes (bit = node hosts ≥1 resident),
    /// maintained by admit/unlink; serves O(1) occupancy tests for
    /// [`ProportionalCluster::node_epoch`]'s time component and the
    /// occupancy-guarded share-total reads.
    occ_mask: Vec<u64>,
    /// Bumped whenever *any* node epoch is bumped — an O(1) "did anything
    /// change since I last looked" check for cluster-wide caches like the
    /// share index.
    global_epoch: u64,
    /// Minimum event-gap candidate over all residents, computed as a
    /// running min during the rate recompute (which already visits every
    /// resident), making [`ProportionalCluster::next_event_time`] a pure
    /// O(1) read. Valid whenever `rates_clean`.
    next_dt: f64,
    /// `true` while `rate`/`next_dt` match the current resident state and
    /// `last_update`. Zero-width advances leave every recompute input
    /// untouched, so they skip the recompute entirely — the flag is what
    /// makes same-instant event batches cost one recompute, not one each.
    rates_clean: bool,
    /// `true` while `share_scratch`/`totals_scratch` hold the values the
    /// last *fast-path* recompute produced (valid per the lazy-zeroing
    /// contract). [`ProportionalCluster::recompute_rates_reference`]
    /// computes its totals into a local buffer — it produces bitwise the
    /// same rates but leaves the engine scratch stale, so incremental
    /// paths that extend the scratch (`admit`'s pass-1 shortcut, the
    /// occupancy-guarded share-total read) must check this flag, not just
    /// `rates_clean`, and fall back to a full recompute when it is down.
    scratch_valid: bool,
    /// Reusable worklist for completions discovered by the progress pass.
    completed_scratch: Vec<u32>,
    /// Reusable worklist for `fail_node` victims.
    victims_scratch: Vec<u32>,
    /// Reusable per-node share totals for the recompute passes.
    totals_scratch: Vec<f64>,
    /// Interior-mutable because it is a pure cache over engine state:
    /// refreshing it through a `&self` query does not change anything
    /// scheduler-visible.
    share_index: RefCell<ShareIndex>,
    /// Per-node down flags. A down node hosts no jobs and must never be
    /// an admission target; the share index pins its base share to
    /// `+inf` so share-ordered walks exclude it for free.
    down: Vec<bool>,
    down_count: usize,
}

/// One job's event-gap candidate: earliest of actual completion,
/// estimated-work exhaustion, and deadline crossing. A rate-starved job
/// (share underflowed to zero against an astronomically loaded node)
/// offers no completion candidates — only its deadline, if any.
#[inline]
fn event_dt(
    rate: f64,
    remaining_work: f64,
    remaining_est: f64,
    abs_deadline: f64,
    now: f64,
) -> f64 {
    let mut dt = f64::INFINITY;
    if rate > 0.0 {
        // min(w, e) / r is bitwise min(w / r, e / r): division by a
        // positive rate is monotone and rounds each operand identically,
        // so taking the min first saves a division without moving a bit.
        dt = dt.min(remaining_work.min(remaining_est) / rate);
    }
    let to_deadline = abs_deadline - now;
    if to_deadline > EPS_WORK {
        dt = dt.min(to_deadline);
    }
    dt
}

impl ProportionalCluster {
    /// Creates an engine over the given cluster.
    pub fn new(cluster: Cluster, cfg: ProportionalConfig) -> Self {
        let n = cluster.len();
        let speeds = (0..n)
            .map(|i| cluster.speed_factor(NodeId(i as u32)))
            .collect();
        ProportionalCluster {
            cluster,
            cfg,
            speeds,
            ids: Vec::new(),
            rate: Vec::new(),
            remaining_work: Vec::new(),
            remaining_est: Vec::new(),
            abs_deadline: Vec::new(),
            estimate_secs: Vec::new(),
            width: Vec::new(),
            width_f: Vec::new(),
            node0: Vec::new(),
            gang_start: Vec::new(),
            gang_nodes: Vec::new(),
            share_scratch: Vec::new(),
            dt_scratch: Vec::new(),
            meta: Vec::new(),
            order: Vec::new(),
            free_slots: Vec::new(),
            node_jobs: vec![Vec::new(); n],
            last_update: SimTime::ZERO,
            busy_integral: 0.0,
            down_integral: 0.0,
            node_busy: vec![0.0; n],
            node_epochs: vec![0; n],
            membership_epoch: vec![0; n],
            node_min_dl: vec![f64::INFINITY; n],
            occ_mask: vec![0; n.div_ceil(64)],
            global_epoch: 0,
            next_dt: f64::INFINITY,
            rates_clean: true,
            scratch_valid: true,
            completed_scratch: Vec::new(),
            victims_scratch: Vec::new(),
            totals_scratch: vec![0.0; n],
            share_index: RefCell::new(ShareIndex::default()),
            down: vec![false; n],
            down_count: 0,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The engine configuration.
    pub fn config(&self) -> &ProportionalConfig {
        &self.cfg
    }

    /// Instant the engine state is valid for.
    pub fn now(&self) -> SimTime {
        self.last_update
    }

    /// Number of resident (running) jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no job is resident.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Ids of jobs resident on a node, in resident-list order.
    pub fn jobs_on_node(&self, node: NodeId) -> impl Iterator<Item = JobId> + '_ {
        self.node_jobs[node.0 as usize]
            .iter()
            .map(move |&s| self.ids[s as usize])
    }

    /// Number of jobs resident on a node.
    pub fn resident_count(&self, node: NodeId) -> usize {
        self.node_jobs[node.0 as usize].len()
    }

    /// The node's resident arena slots, in resident-list order. Slots are
    /// opaque but stable between engine mutations: two nodes exposing the
    /// same slot sequence hold the *same* resident jobs in the same
    /// iteration order, so any pure function of a node's projection input
    /// (risk kernels in particular) must return bitwise-identical results
    /// for both. Decision layers use this to evaluate one representative
    /// per distinct profile instead of every node.
    pub fn node_slots(&self, node: NodeId) -> &[u32] {
        &self.node_jobs[node.0 as usize]
    }

    /// Cached speed factor of a node — bitwise the same value
    /// `cluster().speed_factor(node)` re-derives on every call (the
    /// cluster is immutable after construction), without the division.
    #[inline]
    pub fn node_speed(&self, node: NodeId) -> f64 {
        self.speeds[node.0 as usize]
    }

    /// Arena slot of a resident job, by binary search over the id-sorted
    /// iteration order.
    #[inline]
    fn slot_of(&self, id: JobId) -> Option<usize> {
        self.order
            .binary_search_by(|&s| self.ids[s as usize].cmp(&id))
            .ok()
            .map(|pos| self.order[pos] as usize)
    }

    /// Allocates an arena slot (recycling freed slots before growing).
    fn alloc_slot(&mut self) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            return s;
        }
        let s = self.ids.len() as u32;
        self.ids.push(JobId(u64::MAX));
        self.rate.push(0.0);
        self.remaining_work.push(0.0);
        self.remaining_est.push(0.0);
        self.abs_deadline.push(0.0);
        self.estimate_secs.push(0.0);
        self.width.push(0);
        self.width_f.push(0.0);
        self.node0.push(0);
        self.gang_start.push(0);
        self.share_scratch.push(0.0);
        self.dt_scratch.push(0.0);
        self.meta.push(None);
        s
    }

    /// Unlinks a slot from the iteration order and frees it, returning the
    /// cold state (node lists intact for the caller's unlink loop).
    fn release_slot(&mut self, s: u32) -> ResidentMeta {
        let id = self.ids[s as usize];
        let pos = self
            .order
            .binary_search_by(|&x| self.ids[x as usize].cmp(&id))
            .expect("released job in iteration order");
        self.order.remove(pos);
        self.free_slots.push(s);
        self.meta[s as usize].take().expect("released job resident")
    }

    /// Places a job on the given nodes and starts it immediately.
    ///
    /// # Panics
    /// Panics if the engine state is stale (`now != self.now()`), the node
    /// count does not match `job.procs`, or a node id repeats.
    pub fn admit(&mut self, job: Job, nodes: Vec<NodeId>, now: SimTime) {
        assert_eq!(now, self.last_update, "advance() the engine before admit()");
        assert_eq!(
            nodes.len(),
            job.procs as usize,
            "{} needs {} nodes, got {}",
            job.id,
            job.procs,
            nodes.len()
        );
        {
            let mut seen = nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), nodes.len(), "duplicate node in allocation");
        }
        let was_clean = self.rates_clean;
        let est = job.estimate.as_secs().max(EPS_WORK);
        let work = job.runtime.as_secs().max(EPS_WORK);
        if self.order.is_empty() {
            // Released slots leak their gang-node runs; an empty engine is
            // the natural point to reclaim the arena wholesale.
            self.gang_nodes.clear();
        }
        let s = self.alloc_slot();
        self.gang_start[s as usize] = self.gang_nodes.len() as u32;
        let dl = job.absolute_deadline().as_secs();
        let mut slots = Vec::with_capacity(nodes.len());
        for n in &nodes {
            assert!(self.node_is_up(*n), "cannot admit {} onto down {n}", job.id);
            let ni = n.0 as usize;
            let list = &mut self.node_jobs[ni];
            if list.is_empty() {
                // Unoccupied lanes hold stale totals (the recompute only
                // zeroes occupied nodes); the incremental pass-1 below
                // accumulates into this lane, so restore its zero on the
                // empty→occupied transition.
                self.totals_scratch[ni] = 0.0;
            }
            slots.push(list.len() as u32);
            list.push(s);
            self.gang_nodes.push(n.0);
            self.occ_mask[ni / 64] |= 1u64 << (ni % 64);
            self.node_epochs[ni] += 1;
            self.membership_epoch[ni] += 1;
            self.node_min_dl[ni] = self.node_min_dl[ni].min(dl);
        }
        self.global_epoch += 1;
        let id = job.id;
        let si = s as usize;
        self.ids[si] = id;
        self.rate[si] = 0.0;
        self.remaining_work[si] = work;
        self.remaining_est[si] = est;
        self.abs_deadline[si] = dl;
        self.estimate_secs[si] = job.estimate.as_secs();
        self.width[si] = nodes.len() as u32;
        self.width_f[si] = nodes.len() as f64;
        self.node0[si] = nodes[0].0;
        self.meta[si] = Some(ResidentMeta {
            job,
            nodes,
            slots,
            started: now,
            overruns: 0,
        });
        let pos = match self
            .order
            .binary_search_by(|&x| self.ids[x as usize].cmp(&id))
        {
            Ok(_) => panic!("{id} is already resident"),
            Err(pos) => {
                self.order.insert(pos, s);
                pos
            }
        };
        // Incremental pass 1: when the totals are clean at this instant
        // and the new job's id sorts last (ids are issued monotonically,
        // so this is the common case), the reference's from-zero job-id
        // order sum over each of its nodes is exactly the old clean
        // total plus the new share — same left-fold, same bits. Any
        // other case falls back to the full recompute.
        if was_clean && self.scratch_valid && pos + 1 == self.order.len() {
            let now_s = now.as_secs();
            let rd = (self.abs_deadline[si] - now_s).max(EPS_DEADLINE);
            let share = self.remaining_est[si].max(EPS_WORK) / rd;
            self.share_scratch[si] = share;
            let start = self.gang_start[si] as usize;
            for gi in start..start + self.width[si] as usize {
                self.totals_scratch[self.gang_nodes[gi] as usize] += share;
            }
            self.recompute_pass2();
        } else {
            self.rates_clean = false;
            self.recompute_rates();
        }
    }

    /// Advances the engine to `to`, returning jobs whose actual work
    /// completed (their `finish` is `to`; the caller must not advance past
    /// [`ProportionalCluster::next_event_time`]).
    pub fn advance(&mut self, to: SimTime) -> Vec<CompletedJob> {
        let mut out = Vec::new();
        self.advance_into(to, &mut out);
        out
    }

    /// [`ProportionalCluster::advance`] into a caller-owned buffer
    /// (cleared first) — the allocation-free variant for driver hot loops.
    /// In steady state (warm buffers) this performs zero heap allocations.
    pub fn advance_into(&mut self, to: SimTime, out: &mut Vec<CompletedJob>) {
        out.clear();
        assert!(to >= self.last_update, "cannot advance backwards");
        // Phase-profiler lap boundary: marks below attribute wall time
        // *within* this call only; the resync discards whatever the
        // caller spent since its last mark.
        obs::phase::lap_resync();
        let dt = (to - self.last_update).as_secs();
        let now = to;
        // `0 * dt` adds exactly 0.0 for positive dt, but skipping the
        // accumulation entirely when no node is down keeps fault-free
        // runs bitwise identical to the pre-churn accounting.
        if dt > 0.0 && self.down_count > 0 {
            self.down_integral += self.down_count as f64 * dt;
        }
        if dt > 0.0 && !self.order.is_empty() {
            self.global_epoch += 1;
            self.rates_clean = false;
            let now_s = now.as_secs();
            let mut completed = std::mem::take(&mut self.completed_scratch);
            completed.clear();
            // Progress pass, ascending job-id order: `busy_integral` and
            // `node_busy` accumulate in the reference's summation order.
            //
            // Fusion: most advances complete and re-arm nothing — for
            // those, recompute pass 1 (the Eq. 1 share of each survivor
            // at `to`, summed into per-node totals) is computed here,
            // inside the same sweep, in the same ascending job-id order
            // and from the same post-progress beliefs the standalone
            // pass would read — bitwise identical by construction. The
            // first completion or re-arm poisons the fused totals
            // (earlier accumulations assumed a survivor set that just
            // changed), so `fused` drops and the tail of the sweep skips
            // share work; the full recompute below then rebuilds totals
            // from zero exactly as before.
            // Dense pre-pass (arena densely populated only): apply
            // progress to every arena slot and compute each survivor's
            // candidate post-progress share. Free-list lanes advance
            // stale beliefs into garbage nothing reads (the bookkeeping
            // fold below walks `order`; a reused slot is fully
            // re-initialised by `admit`); live lanes see bitwise the
            // subtraction and quotient the ordered loop computes inline
            // in the sparse case — same operands, same expressions —
            // while the branch-free sweeps pipeline the divisions. A
            // slot this advance completes or re-arms gets a garbage
            // share too, but those poison `fused` and force the full
            // recompute anyway.
            let n_slots = self.ids.len();
            let dense = self.dense_sweeps_pay();
            if dense {
                {
                    let rates = &self.rate[..n_slots];
                    let rw = &mut self.remaining_work[..n_slots];
                    let re = &mut self.remaining_est[..n_slots];
                    for i in 0..n_slots {
                        let p = rates[i] * dt;
                        rw[i] -= p;
                        re[i] -= p;
                    }
                }
                let dls = &self.abs_deadline[..n_slots];
                let re = &self.remaining_est[..n_slots];
                let shares = &mut self.share_scratch[..n_slots];
                for i in 0..n_slots {
                    let rd = (dls[i] - now_s).max(EPS_DEADLINE);
                    shares[i] = re[i].max(EPS_WORK) / rd;
                }
            }
            self.zero_touched_totals();
            let mut fused = true;
            for &s in &self.order {
                let si = s as usize;
                let progress = self.rate[si] * dt;
                self.busy_integral += progress * self.width_f[si];
                if self.width[si] == 1 {
                    self.node_busy[self.node0[si] as usize] += progress;
                } else {
                    let start = self.gang_start[si] as usize;
                    for &ni in &self.gang_nodes[start..start + self.width[si] as usize] {
                        self.node_busy[ni as usize] += progress;
                    }
                }
                if !dense {
                    self.remaining_work[si] -= progress;
                    self.remaining_est[si] -= progress;
                }
                if self.remaining_work[si] <= EPS_WORK {
                    completed.push(s);
                    fused = false;
                } else if self.remaining_est[si] <= EPS_WORK {
                    // Overrun: the scheduler's belief was exhausted but the
                    // job is still running — re-arm a residual estimate.
                    self.remaining_est[si] = (self.cfg.residual_fraction * self.estimate_secs[si])
                        .max(self.cfg.residual_floor);
                    self.meta[si].as_mut().expect("resident has meta").overruns += 1;
                    // A re-arm is a discontinuous belief change, not a
                    // proportional drift — membership-keyed caches must
                    // drop the node.
                    if self.width[si] == 1 {
                        self.membership_epoch[self.node0[si] as usize] += 1;
                    } else {
                        let start = self.gang_start[si] as usize;
                        for &ni in &self.gang_nodes[start..start + self.width[si] as usize] {
                            self.membership_epoch[ni as usize] += 1;
                        }
                    }
                    fused = false;
                } else if fused {
                    let share = if dense {
                        // Already computed by the dense pre-pass.
                        self.share_scratch[si]
                    } else {
                        let rd = (self.abs_deadline[si] - now_s).max(EPS_DEADLINE);
                        let share = self.remaining_est[si].max(EPS_WORK) / rd;
                        self.share_scratch[si] = share;
                        share
                    };
                    if self.width[si] == 1 {
                        self.totals_scratch[self.node0[si] as usize] += share;
                    } else {
                        let start = self.gang_start[si] as usize;
                        for &ni in &self.gang_nodes[start..start + self.width[si] as usize] {
                            self.totals_scratch[ni as usize] += share;
                        }
                    }
                }
            }
            obs::phase::lap_mark(obs::phase::Phase::ProgressPass);
            // Remaining estimates and `now` both moved: every projection
            // involving an occupied node is invalidated. No per-node write
            // is needed for that — `node_epoch()` pairs the discrete
            // per-node counter with `global_epoch` (already bumped above)
            // for occupied nodes, so every occupied node's epoch pair
            // advanced the moment `global_epoch` did. Empty nodes pin the
            // time component to zero and correctly stay valid.
            for &s in &completed {
                let r = self.release_slot(s);
                for (n, &slot) in r.nodes.iter().zip(&r.slots) {
                    self.remove_from_node(*n, slot as usize, s);
                }
                out.push(CompletedJob {
                    job: r.job,
                    started: r.started,
                    finish: now,
                    overruns: r.overruns,
                });
            }
            self.completed_scratch = completed;
            obs::phase::lap_mark(obs::phase::Phase::CompletionEmit);
            self.last_update = now;
            if fused {
                // Totals and shares are already current (rebuilt from the
                // post-progress beliefs above, reading no prior scratch) —
                // run pass 2 only (it flips `rates_clean` back on).
                self.scratch_valid = true;
                self.recompute_pass2();
            }
        }
        self.last_update = now;
        if !self.rates_clean {
            self.recompute_rates();
        }
        // Covers `recompute_pass2` (fused) or the full recompute; on a
        // zero-width advance it absorbs only the entry/guard sliver.
        obs::phase::lap_mark(obs::phase::Phase::RecomputeSweep);
    }

    /// Reference implementation of [`ProportionalCluster::advance`]: the
    /// pre-arena algorithm shape — fresh worklist allocations, per-(job,
    /// node) epoch bumps, and an unconditional full rate recompute even
    /// for zero-width steps. Kept as the differential-test oracle; an
    /// engine driven exclusively through this path produces bitwise
    /// identical rates, completions, integrals, and event times (epoch
    /// *values* differ in stride, which no consumer observes — they are
    /// only compared for equality).
    pub fn advance_reference(&mut self, to: SimTime) -> Vec<CompletedJob> {
        assert!(to >= self.last_update, "cannot advance backwards");
        let dt = (to - self.last_update).as_secs();
        let now = to;
        if dt > 0.0 && self.down_count > 0 {
            self.down_integral += self.down_count as f64 * dt;
        }
        let mut completed_slots: Vec<u32> = Vec::new();
        if dt > 0.0 && !self.order.is_empty() {
            self.global_epoch += 1;
            for idx in 0..self.order.len() {
                let s = self.order[idx];
                let si = s as usize;
                let progress = self.rate[si] * dt;
                let m = self.meta[si].as_ref().expect("resident has meta");
                self.busy_integral += progress * m.nodes.len() as f64;
                for n in &m.nodes {
                    self.node_busy[n.0 as usize] += progress;
                    self.node_epochs[n.0 as usize] += 1;
                }
                self.remaining_work[si] -= progress;
                self.remaining_est[si] -= progress;
                if self.remaining_work[si] <= EPS_WORK {
                    completed_slots.push(s);
                } else if self.remaining_est[si] <= EPS_WORK {
                    self.remaining_est[si] = (self.cfg.residual_fraction * self.estimate_secs[si])
                        .max(self.cfg.residual_floor);
                    let m = self.meta[si].as_mut().expect("resident has meta");
                    m.overruns += 1;
                    let nodes = m.nodes.clone();
                    for n in nodes {
                        self.membership_epoch[n.0 as usize] += 1;
                    }
                }
            }
        }
        let mut completed = Vec::with_capacity(completed_slots.len());
        for s in completed_slots {
            let r = self.release_slot(s);
            for (n, &slot) in r.nodes.iter().zip(&r.slots) {
                self.remove_from_node(*n, slot as usize, s);
            }
            completed.push(CompletedJob {
                job: r.job,
                started: r.started,
                finish: now,
                overruns: r.overruns,
            });
        }
        self.last_update = now;
        self.recompute_rates_reference();
        completed
    }

    /// `true` when the node has not been failed (or has been restored).
    #[inline]
    pub fn node_is_up(&self, node: NodeId) -> bool {
        !self.down[node.0 as usize]
    }

    /// Number of nodes currently up.
    pub fn up_nodes(&self) -> usize {
        self.cluster.len() - self.down_count
    }

    /// Fails a node at the engine's current instant, evicting every
    /// resident job whose gang touches it (the survivors' slots are
    /// freed). The node stops being an admission target until
    /// [`ProportionalCluster::restore_node`]; evicted jobs are returned
    /// with their progress state for the caller's recovery policy.
    ///
    /// Cache contract: every node that lost a job gets its epoch bumped
    /// (its share total and projections changed), the failed node's
    /// epoch is bumped (its admission feasibility changed), and the
    /// global epoch moves — so the share index, Libra's share walk and
    /// LibraRisk's per-node risk caches all revalidate.
    ///
    /// # Panics
    /// Panics if the engine state is stale (`now != self.now()`) or the
    /// node is already down.
    pub fn fail_node(&mut self, node: NodeId, now: SimTime) -> Vec<DisplacedJob> {
        assert_eq!(
            now, self.last_update,
            "advance() the engine before fail_node()"
        );
        assert!(self.node_is_up(node), "{node} is already down");
        self.down[node.0 as usize] = true;
        self.down_count += 1;
        let mut victims = std::mem::take(&mut self.victims_scratch);
        victims.clear();
        victims.extend_from_slice(&self.node_jobs[node.0 as usize]);
        let mut displaced = Vec::with_capacity(victims.len());
        for &s in &victims {
            let si = s as usize;
            let remaining_work = self.remaining_work[si];
            let remaining_est = self.remaining_est[si];
            let r = self.release_slot(s);
            for (n, &slot) in r.nodes.iter().zip(&r.slots) {
                self.remove_from_node(*n, slot as usize, s);
                self.node_epochs[n.0 as usize] += 1;
            }
            displaced.push(DisplacedJob {
                job: r.job,
                started: r.started,
                remaining_work,
                remaining_est,
                overruns: r.overruns,
            });
        }
        self.victims_scratch = victims;
        self.node_epochs[node.0 as usize] += 1;
        self.membership_epoch[node.0 as usize] += 1;
        self.global_epoch += 1;
        self.rates_clean = false;
        self.recompute_rates();
        displaced
    }

    /// Restores a failed node at the engine's current instant: it comes
    /// back empty and becomes an admission target again (epoch-bumped so
    /// every cache re-evaluates it).
    ///
    /// # Panics
    /// Panics if the engine state is stale or the node is not down.
    pub fn restore_node(&mut self, node: NodeId, now: SimTime) {
        assert_eq!(
            now, self.last_update,
            "advance() the engine before restore_node()"
        );
        assert!(!self.node_is_up(node), "{node} is not down");
        self.down[node.0 as usize] = false;
        self.down_count -= 1;
        self.node_epochs[node.0 as usize] += 1;
        self.membership_epoch[node.0 as usize] += 1;
        self.global_epoch += 1;
    }

    /// O(1) removal of slot `s` from a node's resident list: `swap_remove`
    /// at its tracked position, then patch the slot bookkeeping of
    /// whichever job was moved into the vacated position.
    fn remove_from_node(&mut self, node: NodeId, pos: usize, s: u32) {
        let ni = node.0 as usize;
        self.membership_epoch[ni] += 1;
        let list = &mut self.node_jobs[ni];
        debug_assert_eq!(list[pos], s, "slot bookkeeping out of sync");
        list.swap_remove(pos);
        if list.is_empty() {
            self.occ_mask[ni / 64] &= !(1u64 << (ni % 64));
        }
        let moved = list.get(pos).copied();
        if let Some(moved) = moved {
            let m = self.meta[moved as usize]
                .as_mut()
                .expect("moved job resident");
            let p = m
                .nodes
                .iter()
                .position(|x| *x == node)
                .expect("moved job listed on node");
            m.slots[p] = pos as u32;
        }
        // Min-fold over f64 is order-independent (deadlines are finite
        // and positive), so a rebuild over the post-swap list yields the
        // same bits any other order would.
        let mut min_dl = f64::INFINITY;
        for i in 0..self.node_jobs[ni].len() {
            let r = self.node_jobs[ni][i] as usize;
            min_dl = min_dl.min(self.abs_deadline[r]);
        }
        self.node_min_dl[ni] = min_dl;
    }

    /// The next instant the engine needs to be advanced to: the earliest
    /// of any job's actual completion, estimated-work exhaustion, deadline
    /// crossing, or the configured quantum. `None` when idle.
    ///
    /// O(1): reads the event-gap minimum the last rate recompute tracked
    /// while it was visiting every resident anyway. The retired full scan
    /// survives as [`ProportionalCluster::next_event_time_scan`]; the two
    /// are bitwise identical (property-tested in
    /// `tests/proptest_engine.rs`).
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.order.is_empty() {
            return None;
        }
        debug_assert!(self.rates_clean, "next_event_time on dirty rates");
        Some(self.last_update + SimDuration::from_secs(self.bound_event_gap(self.next_dt)))
    }

    /// Reference implementation of [`ProportionalCluster::next_event_time`]:
    /// a full scan over resident jobs. Kept for differential tests and as
    /// the pre-change baseline in benchmarks.
    pub fn next_event_time_scan(&self) -> Option<SimTime> {
        if self.order.is_empty() {
            return None;
        }
        let now = self.last_update.as_secs();
        let mut dt = f64::INFINITY;
        for &s in &self.order {
            let si = s as usize;
            dt = dt.min(event_dt(
                self.rate[si],
                self.remaining_work[si],
                self.remaining_est[si],
                self.abs_deadline[si],
                now,
            ));
        }
        Some(self.last_update + SimDuration::from_secs(self.bound_event_gap(dt)))
    }

    /// Applies the quantum cap, the rate-starvation fallback, and the
    /// zero-step floor to a raw event gap.
    fn bound_event_gap(&self, mut dt: f64) -> f64 {
        if let Some(q) = self.cfg.max_quantum {
            dt = dt.min(q);
        }
        if !dt.is_finite() {
            // Every resident job is rate-starved with no deadline ahead
            // and no quantum is configured: wake conservatively rather
            // than never (or at a NaN).
            dt = FALLBACK_QUANTUM;
        }
        // Never return a zero step: float fuzz could stall the caller loop.
        dt.max(1e-3)
    }

    /// Change counter of a node's scheduler-visible state. Any projection
    /// or share total computed for a node is valid exactly as long as this
    /// value (it covers admissions, completions, estimate drift, and the
    /// advancement of `now` itself), so decision layers can memoise on
    /// `(node_epoch, ...)` keys.
    ///
    /// Composed on the fly as `(discrete epoch, time epoch)`: discrete
    /// per-node changes bump `node_epochs`; the advancement of `now` —
    /// which shifts every *occupied* node's projection at once — is
    /// covered by the cluster-wide `global_epoch` instead of a per-node
    /// bump, so the advance hot loop never walks the node table. An
    /// empty node's projection is independent of `now`, so its time
    /// component pins to zero and survives advances. Pairs strictly
    /// increase lexicographically (every discrete change bumps the first
    /// component; `global_epoch` never decreases), so a value can never
    /// recur and equality remains a sound cache-validity test.
    pub fn node_epoch(&self, node: NodeId) -> (u64, u64) {
        let ni = node.0 as usize;
        let time_epoch = if self.occ_mask[ni / 64] >> (ni % 64) & 1 == 1 {
            self.global_epoch
        } else {
            0
        };
        (self.node_epochs[ni], time_epoch)
    }

    /// Cluster-wide change counter: bumped whenever *any* node epoch is
    /// bumped. Equal values mean no node's scheduler-visible state changed
    /// in between, so any cluster-wide cache keyed on it is still valid.
    pub fn global_epoch(&self) -> u64 {
        self.global_epoch
    }

    /// Change counter of a node's resident *membership*: admissions onto
    /// and removals from the node, estimate re-arms of its residents, and
    /// fail/restore — but *not* plain time advances. The set of arena
    /// slots resident on the node (and any caller-cached ordering over
    /// them) is valid exactly as long as this value, even across
    /// advances; per-slot *values* still drift with time and must be
    /// re-read through the slot accessors.
    pub fn node_membership_epoch(&self, node: NodeId) -> u64 {
        self.membership_epoch[node.0 as usize]
    }

    /// Earliest absolute deadline among the node's residents (`+∞` when
    /// idle) — one of the two inputs the pre-kernel zero-risk screen
    /// needs (deadlines are per-job constants, so the minimum is exact
    /// and order-free). Served from a packed per-node array maintained
    /// at membership changes, so a candidate sweep touching every node
    /// stays out of the per-node resident lists.
    #[inline]
    pub fn node_min_deadline(&self, node: NodeId) -> f64 {
        let cached = self.node_min_dl[node.0 as usize];
        debug_assert_eq!(
            cached.to_bits(),
            self.node_jobs[node.0 as usize]
                .iter()
                .fold(f64::INFINITY, |m, &s| m.min(self.abs_deadline[s as usize]))
                .to_bits(),
            "stale node_min_dl for {node}"
        );
        cached
    }

    /// The node's Eq. 2 resident share total at the current instant,
    /// served from the last rate recompute's per-node totals when they
    /// are clean (the recompute already summed exactly these floored
    /// shares while deriving rates). The accumulation order differs from
    /// [`ProportionalCluster::node_total_share`] (global job-id order vs
    /// resident-list order), so the result may differ in the last ulp —
    /// fine for margin-bearing consumers like the zero-risk screen, not
    /// for bitwise-pinned ones.
    pub fn node_share_total_now(&self, node: NodeId) -> f64 {
        let ni = node.0 as usize;
        if self.rates_clean && self.scratch_valid {
            // The recompute zeroes and refills only occupied nodes'
            // lanes (see [`ProportionalCluster::zero_touched_totals`]);
            // an unoccupied node's lane may hold a stale total, but its
            // true share total is identically zero.
            if self.occ_mask[ni / 64] >> (ni % 64) & 1 == 1 {
                self.totals_scratch[ni]
            } else {
                0.0
            }
        } else {
            self.node_total_share(node, None)
        }
    }

    /// `(abs_deadline, remaining_est.max(EPS_WORK))` bit patterns of one
    /// arena slot — the projection-visible state of a resident, exactly
    /// as [`ProportionalCluster::node_projection_into`] would emit it.
    /// Slot indices are only meaningful while the owning node's
    /// [`ProportionalCluster::node_membership_epoch`] stands still.
    #[inline]
    pub fn slot_projection_bits(&self, s: u32) -> (u64, u64) {
        let si = s as usize;
        (
            self.abs_deadline[si].to_bits(),
            self.remaining_est[si].max(EPS_WORK).to_bits(),
        )
    }

    /// Runs `f` over the share-ordered candidate index: one entry per
    /// node, sorted by `(base_share ascending, node id ascending)`, where
    /// `base_share` is bitwise identical to
    /// `node_total_share(node, None)`.
    ///
    /// The index is a lazily maintained cache: validated in O(1) against
    /// the global epoch, with only epoch-stale nodes recomputed (and a
    /// re-sort only when some share actually changed). Best-fit admission
    /// scans walk it in share order and stop at the first infeasible
    /// entry — f64 addition is monotone non-decreasing, so every later
    /// (larger-base) node is infeasible too.
    pub fn with_share_index<T>(&self, f: impl FnOnce(&[ShareEntry]) -> T) -> T {
        let mut idx = self.share_index.borrow_mut();
        self.refresh_share_index(&mut idx);
        f(&idx.entries)
    }

    fn refresh_share_index(&self, idx: &mut ShareIndex) {
        let n = self.cluster.len();
        if idx.built && idx.global_epoch == self.global_epoch {
            return;
        }
        let sort_and_reindex = |idx: &mut ShareIndex| {
            idx.entries.sort_unstable_by(|a, b| {
                a.base_share
                    .total_cmp(&b.base_share)
                    .then_with(|| a.node.cmp(&b.node))
            });
            idx.pos.clear();
            idx.pos.resize(n, 0);
            for (i, e) in idx.entries.iter().enumerate() {
                idx.pos[e.node.0 as usize] = i as u32;
            }
        };
        if !idx.built {
            idx.entries.clear();
            idx.node_epochs.clear();
            for node in 0..n {
                let id = NodeId(node as u32);
                idx.node_epochs.push(self.node_epoch(id));
                idx.entries.push(ShareEntry {
                    base_share: self.index_base_share(id),
                    node: id,
                });
            }
            sort_and_reindex(idx);
            idx.global_epoch = self.global_epoch;
            idx.built = true;
            return;
        }
        // Incremental revalidation: only nodes whose epoch moved get their
        // share recomputed; re-sort only if some share actually changed.
        let mut dirty = false;
        for node in 0..n {
            let epoch = self.node_epoch(NodeId(node as u32));
            if idx.node_epochs[node] == epoch {
                continue;
            }
            idx.node_epochs[node] = epoch;
            let share = self.index_base_share(NodeId(node as u32));
            let p = idx.pos[node] as usize;
            if idx.entries[p].base_share.to_bits() != share.to_bits() {
                idx.entries[p].base_share = share;
                dirty = true;
            }
        }
        if dirty {
            sort_and_reindex(idx);
        }
        idx.global_epoch = self.global_epoch;
    }

    /// Base share the index stores for a node: `+inf` for a down node
    /// (sorts last, and `inf + job_share` stays infeasible, so
    /// share-ordered admission walks exclude it without a branch), the
    /// bitwise [`ProportionalCluster::node_total_share`] otherwise.
    fn index_base_share(&self, node: NodeId) -> f64 {
        if self.node_is_up(node) {
            self.node_total_share(node, None)
        } else {
            f64::INFINITY
        }
    }

    /// Scheduler-visible projection input for one node: the resident jobs'
    /// remaining *estimated* work and absolute deadlines, plus optionally
    /// a tentative new job (whose estimate is taken in full).
    pub fn node_projection(&self, node: NodeId, extra: Option<&Job>) -> Vec<ProjectedJob> {
        let mut out = Vec::new();
        self.node_projection_into(node, extra, &mut out);
        out
    }

    /// [`ProportionalCluster::node_projection`] into a caller-owned buffer
    /// (cleared first) — the allocation-free variant for admission hot
    /// paths holding a `ProjectionWorkspace`. Returns the earliest
    /// resident absolute deadline (`+∞` when nothing is resident), picked
    /// up in the same pass so pre-kernel screens (see
    /// `projection::screens_zero_risk`) need no second walk. The
    /// tentative `extra` job is appended to `out` but excluded from the
    /// returned minimum — it is per-candidate, not node state.
    pub fn node_projection_into(
        &self,
        node: NodeId,
        extra: Option<&Job>,
        out: &mut Vec<ProjectedJob>,
    ) -> f64 {
        out.clear();
        let mut min_dl = f64::INFINITY;
        for &s in &self.node_jobs[node.0 as usize] {
            let si = s as usize;
            let abs_deadline = self.abs_deadline[si];
            min_dl = min_dl.min(abs_deadline);
            out.push(ProjectedJob {
                remaining_est: self.remaining_est[si].max(EPS_WORK),
                abs_deadline,
            });
        }
        if let Some(j) = extra {
            out.push(projected_job(j));
        }
        min_dl
    }

    /// The Eq. 1 share a not-yet-admitted job would require, evaluated at
    /// the engine's current instant (full estimate over remaining
    /// deadline).
    pub fn job_share(&self, job: &Job) -> f64 {
        let now = self.last_update.as_secs();
        job.estimate.as_secs().max(EPS_WORK)
            / (job.absolute_deadline().as_secs() - now).max(EPS_DEADLINE)
    }

    /// Sum of required shares on a node, evaluated with current beliefs
    /// (Eq. 2), plus optionally a tentative new job.
    ///
    /// Summation is left-to-right in resident order with the tentative
    /// job last, so `node_total_share(n, None) + job_share(job)` is
    /// bitwise identical to `node_total_share(n, Some(job))` — the
    /// identity Libra's per-node share cache relies on.
    pub fn node_total_share(&self, node: NodeId, extra: Option<&Job>) -> f64 {
        let now = self.last_update.as_secs();
        let mut sum = 0.0;
        for &s in &self.node_jobs[node.0 as usize] {
            let si = s as usize;
            sum += self.remaining_est[si].max(EPS_WORK)
                / (self.abs_deadline[si] - now).max(EPS_DEADLINE);
        }
        if let Some(j) = extra {
            sum += self.job_share(j);
        }
        sum
    }

    /// Mean processor utilisation over `[0, now]`, relative to the
    /// capacity that was actually *up*: node-seconds spent down are
    /// excluded from the denominator, so churn does not read as idleness.
    pub fn utilization(&self) -> f64 {
        let elapsed = self.last_update.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let capacity = elapsed * self.cluster.len() as f64 - self.down_integral;
        if capacity <= 0.0 {
            return 0.0;
        }
        self.busy_integral / capacity
    }

    /// Mean utilisation of one node over `[0, now]` (delivered work over
    /// elapsed time; allocated-but-idle gang surplus does not count).
    pub fn node_utilization(&self, node: NodeId) -> f64 {
        let elapsed = self.last_update.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.node_busy[node.0 as usize] / elapsed
    }

    /// Spread between the busiest and idlest node's utilisation — a
    /// load-imbalance indicator (0 = perfectly balanced).
    pub fn utilization_imbalance(&self) -> f64 {
        let elapsed = self.last_update.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let max = self
            .node_busy
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.node_busy.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) / elapsed
    }

    /// Current execution rate of a resident job (reference-seconds per
    /// second), if resident.
    pub fn rate_of(&self, id: JobId) -> Option<f64> {
        self.slot_of(id).map(|si| self.rate[si])
    }

    /// Remaining *estimated* work of a resident job, if resident.
    pub fn remaining_est_of(&self, id: JobId) -> Option<f64> {
        self.slot_of(id).map(|si| self.remaining_est[si])
    }

    /// Recomputes every resident's rate from current beliefs and tracks
    /// the event-gap minimum on the way. Allocation-free: the per-node
    /// totals and per-slot shares live in engine-owned scratch.
    ///
    /// Both passes iterate `order` (ascending job id), so every f64
    /// accumulation happens in the reference implementation's order and
    /// the results are bitwise identical to
    /// [`ProportionalCluster::recompute_rates_reference`].
    /// Whether the arena is populated densely enough that branch-free
    /// full-arena sweeps (which also burn garbage work on free-list
    /// lanes) beat gather loops over `order`. Either path computes
    /// bitwise-identical values for every live lane, so the cutover is
    /// pure scheduling — it cannot move a decision.
    #[inline]
    fn dense_sweeps_pay(&self) -> bool {
        self.order.len() * 3 >= self.ids.len()
    }

    /// Zeroes exactly the per-node total lanes the recompute's ordered
    /// accumulation will touch. A full `fill(0.0)` dirties 8·nodes bytes
    /// of cache on every advance however few nodes are occupied; lanes
    /// of unoccupied nodes can instead stay stale because every reader
    /// is occupancy-guarded (`node_share_total_now`) or walks `order`.
    /// Falls back to the contiguous fill when most nodes are in play.
    #[inline]
    fn zero_touched_totals(&mut self) {
        if self.order.len() * 2 >= self.cluster.len() {
            self.totals_scratch.fill(0.0);
            return;
        }
        for &s in &self.order {
            let si = s as usize;
            if self.width[si] == 1 {
                self.totals_scratch[self.node0[si] as usize] = 0.0;
            } else {
                let start = self.gang_start[si] as usize;
                for &ni in &self.gang_nodes[start..start + self.width[si] as usize] {
                    self.totals_scratch[ni as usize] = 0.0;
                }
            }
        }
    }

    fn recompute_rates(&mut self) {
        let now = self.last_update.as_secs();
        // Pass 1: every live slot's Eq. 1 share from current beliefs.
        // When the arena is densely populated, a branch- and
        // indirection-free sweep over every lane (free-list lanes divide
        // stale beliefs into garbage nothing reads — all folds below
        // walk `order`) lets the divisions pipeline and vectorize; live
        // lanes get bitwise the quotient the ordered loop produces —
        // same operands, same expression.
        let n_slots = self.ids.len();
        if self.dense_sweeps_pay() {
            let dls = &self.abs_deadline[..n_slots];
            let rems = &self.remaining_est[..n_slots];
            let shares = &mut self.share_scratch[..n_slots];
            for i in 0..n_slots {
                let rd = (dls[i] - now).max(EPS_DEADLINE);
                shares[i] = rems[i].max(EPS_WORK) / rd;
            }
        } else {
            for &s in &self.order {
                let si = s as usize;
                let rd = (self.abs_deadline[si] - now).max(EPS_DEADLINE);
                self.share_scratch[si] = self.remaining_est[si].max(EPS_WORK) / rd;
            }
        }
        // Per-node totals accumulate in the reference's ascending job-id
        // order (float sums are fold-order-sensitive).
        self.zero_touched_totals();
        for &s in &self.order {
            let si = s as usize;
            let share = self.share_scratch[si];
            if self.width[si] == 1 {
                self.totals_scratch[self.node0[si] as usize] += share;
            } else {
                let start = self.gang_start[si] as usize;
                for &ni in &self.gang_nodes[start..start + self.width[si] as usize] {
                    self.totals_scratch[ni as usize] += share;
                }
            }
        }
        self.scratch_valid = true;
        self.recompute_pass2();
    }

    /// Pass 2 of the rate recompute: rates (gang = min over member
    /// nodes) and the running event-gap minimum, consuming the per-node
    /// totals and per-slot shares pass 1 left in engine scratch. Split
    /// out so the advance progress loop can fuse pass 1 into its own
    /// sweep when nothing discrete happened (see
    /// [`ProportionalCluster::advance_into`]).
    fn recompute_pass2(&mut self) {
        let now = self.last_update.as_secs();
        let strict = matches!(self.cfg.discipline, ShareDiscipline::Strict);
        let n_slots = self.ids.len();
        let dense = self.dense_sweeps_pay();
        if dense {
            // Dense rate sweep over every arena slot via its first member
            // node: exact for width-1 slots (same expression, same bits
            // as the ordered fold's inline computation); a gang's true
            // rate is the member-min, fixed up in the ordered fold below.
            // Free-list lanes compute garbage (possibly ±inf) that only
            // the dense event-gap sweep reads — and the ordered fold
            // discards those lanes.
            {
                let shares = &self.share_scratch[..n_slots];
                let node0 = &self.node0[..n_slots];
                let rates = &mut self.rate[..n_slots];
                if strict {
                    for i in 0..n_slots {
                        let ni = node0[i] as usize;
                        rates[i] = shares[i] / self.totals_scratch[ni].max(1.0) * self.speeds[ni];
                    }
                } else {
                    for i in 0..n_slots {
                        let ni = node0[i] as usize;
                        rates[i] = shares[i] / self.totals_scratch[ni] * self.speeds[ni];
                    }
                }
            }
            // Dense event-gap sweep: branch-free rewrite of [`event_dt`],
            // bitwise equal on live width-1 lanes (the selects reproduce
            // the reference's guards; `min` of the positive quotient with
            // +inf is the quotient). Gang lanes hold a garbage gap (their
            // dense rate is one member's, not the min) and are recomputed
            // in the fold.
            let rates = &self.rate[..n_slots];
            let rw = &self.remaining_work[..n_slots];
            let re = &self.remaining_est[..n_slots];
            let dls = &self.abs_deadline[..n_slots];
            let dts = &mut self.dt_scratch[..n_slots];
            for i in 0..n_slots {
                let r = rates[i];
                let q = rw[i].min(re[i]) / r;
                let dt0 = if r > 0.0 { q } else { f64::INFINITY };
                let td = dls[i] - now;
                let dtd = if td > EPS_WORK { td } else { f64::INFINITY };
                dts[i] = dt0.min(dtd);
            }
        }
        let mut min_dt = f64::INFINITY;
        for &s in &self.order {
            let si = s as usize;
            if self.width[si] == 1 {
                let rate = if dense {
                    self.rate[si]
                } else {
                    let ni = self.node0[si] as usize;
                    let total = self.totals_scratch[ni];
                    let denom = if strict { total.max(1.0) } else { total };
                    let r = self.share_scratch[si] / denom * self.speeds[ni];
                    self.rate[si] = r;
                    r
                };
                // The share (and hence the rate) can underflow to exactly
                // zero when a co-resident share is astronomically
                // inflated; `event_dt` and the projection kernel
                // tolerate that.
                debug_assert!(rate.is_finite() && rate >= 0.0);
                min_dt = min_dt.min(if dense {
                    self.dt_scratch[si]
                } else {
                    event_dt(
                        rate,
                        self.remaining_work[si],
                        self.remaining_est[si],
                        self.abs_deadline[si],
                        now,
                    )
                });
                continue;
            }
            let share = self.share_scratch[si];
            let rate = {
                let start = self.gang_start[si] as usize;
                let mut rate = f64::INFINITY;
                // Gang members frequently land on nodes with identical
                // share totals and speeds (gangs overlap on the same node
                // sets). `share / denom * speed` is a pure function of
                // those bits, so replaying the previous member's rate on
                // a bitwise-equal (total, speed) pair is exact — the min
                // fold sees identical values in identical order.
                let mut last_key = (u64::MAX, u64::MAX);
                let mut last_rate = f64::INFINITY;
                for &ni in &self.gang_nodes[start..start + self.width[si] as usize] {
                    let ni = ni as usize;
                    let total = self.totals_scratch[ni];
                    let speed = self.speeds[ni];
                    let key = (total.to_bits(), speed.to_bits());
                    let node_rate = if key == last_key {
                        last_rate
                    } else {
                        let denom = if strict { total.max(1.0) } else { total };
                        let r = share / denom * speed;
                        last_key = key;
                        last_rate = r;
                        r
                    };
                    rate = rate.min(node_rate);
                }
                rate
            };
            // The share (and hence the rate) can underflow to exactly
            // zero when a co-resident share is astronomically inflated;
            // `event_dt` and the projection kernel tolerate that.
            debug_assert!(rate.is_finite() && rate >= 0.0);
            self.rate[si] = rate;
            min_dt = min_dt.min(event_dt(
                rate,
                self.remaining_work[si],
                self.remaining_est[si],
                self.abs_deadline[si],
                now,
            ));
        }
        self.next_dt = min_dt;
        self.rates_clean = true;
    }

    /// Reference implementation of
    /// [`ProportionalCluster::recompute_rates`]: fresh totals allocation,
    /// no single-node fast path, and the event-gap minimum recovered by a
    /// separate full scan. Kept as the differential-test oracle.
    pub fn recompute_rates_reference(&mut self) {
        let now = self.last_update.as_secs();
        let mut totals = vec![0.0f64; self.cluster.len()];
        for &s in &self.order {
            let si = s as usize;
            let rd = (self.abs_deadline[si] - now).max(EPS_DEADLINE);
            let share = self.remaining_est[si].max(EPS_WORK) / rd;
            let m = self.meta[si].as_ref().expect("resident has meta");
            for n in &m.nodes {
                totals[n.0 as usize] += share;
            }
        }
        for &s in &self.order {
            let si = s as usize;
            let rd = (self.abs_deadline[si] - now).max(EPS_DEADLINE);
            let share = self.remaining_est[si].max(EPS_WORK) / rd;
            let m = self.meta[si].as_ref().expect("resident has meta");
            let mut rate = f64::INFINITY;
            for n in &m.nodes {
                let total = totals[n.0 as usize];
                let denom = match self.cfg.discipline {
                    ShareDiscipline::Strict => total.max(1.0),
                    ShareDiscipline::WorkConserving => total,
                };
                let node_rate = share / denom * self.cluster.speed_factor(*n);
                rate = rate.min(node_rate);
            }
            debug_assert!(rate.is_finite() && rate >= 0.0);
            self.rate[si] = rate;
        }
        let mut min_dt = f64::INFINITY;
        for &s in &self.order {
            let si = s as usize;
            min_dt = min_dt.min(event_dt(
                self.rate[si],
                self.remaining_work[si],
                self.remaining_est[si],
                self.abs_deadline[si],
                now,
            ));
        }
        self.next_dt = min_dt;
        self.rates_clean = true;
        // The totals above lived in a local buffer: the engine scratch is
        // now stale relative to `rate`/`next_dt`, and incremental
        // consumers must rebuild it before extending it.
        self.scratch_valid = false;
    }

    /// Extracts the canonical engine state (see [`EngineSnapshot`]).
    /// Valid at any quiescent instant — i.e. whenever the facade could
    /// also accept a `submit` or `advance`.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            residents: self
                .order
                .iter()
                .map(|&s| {
                    let si = s as usize;
                    let m = self.meta[si].as_ref().expect("resident has meta");
                    ResidentSnapshot {
                        job: m.job.clone(),
                        nodes: m.nodes.clone(),
                        node_positions: m.slots.clone(),
                        started: m.started,
                        overruns: m.overruns,
                        remaining_work: self.remaining_work[si],
                        remaining_est: self.remaining_est[si],
                    }
                })
                .collect(),
            last_update: self.last_update,
            busy_integral: self.busy_integral,
            down_integral: self.down_integral,
            node_busy: self.node_busy.clone(),
            down: self.down.clone(),
        }
    }

    /// Rebuilds an engine from a snapshot. Canonical state is injected
    /// verbatim; every derived structure — rates, per-node share
    /// totals, event-gap minimum, occupancy mask, min-deadline cache,
    /// share index, scratch — is recomputed from it. Rates recompute by
    /// the same from-zero ascending-job-id fold every live recompute
    /// uses, so the restored engine is bitwise equal to the one the
    /// snapshot was taken from (epoch counters restart at zero, which
    /// no consumer observes: they are only compared for equality, and a
    /// restored engine starts with no caches to invalidate).
    ///
    /// Returns a description of the first violated invariant instead of
    /// panicking, so checkpoint restore can surface corruption as a
    /// structured error.
    pub fn from_snapshot(
        cluster: Cluster,
        cfg: ProportionalConfig,
        snap: &EngineSnapshot,
    ) -> Result<Self, String> {
        let n = cluster.len();
        if snap.down.len() != n || snap.node_busy.len() != n {
            return Err(format!(
                "per-node arrays cover {}/{} nodes, cluster has {n}",
                snap.down.len(),
                snap.node_busy.len()
            ));
        }
        let mut eng = ProportionalCluster::new(cluster, cfg);
        eng.down = snap.down.clone();
        eng.down_count = snap.down.iter().filter(|d| **d).count();
        eng.node_busy = snap.node_busy.clone();
        eng.busy_integral = snap.busy_integral;
        eng.down_integral = snap.down_integral;
        eng.last_update = snap.last_update;
        // Per-node resident lists are placed by recorded position, so
        // each list must receive exactly its residents' positions as a
        // permutation of 0..len.
        let mut node_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (slot, r) in snap.residents.iter().enumerate() {
            let s = slot as u32;
            if slot > 0 && snap.residents[slot - 1].job.id >= r.job.id {
                return Err("residents not in ascending-id order".into());
            }
            if r.nodes.is_empty()
                || r.nodes.len() != r.job.procs as usize
                || r.nodes.len() != r.node_positions.len()
            {
                return Err(format!("{} node list does not match procs", r.job.id));
            }
            if !(r.remaining_work.is_finite()
                && r.remaining_work > 0.0
                && r.remaining_est.is_finite()
                && r.remaining_est > 0.0)
            {
                return Err(format!("{} has non-positive remaining work", r.job.id));
            }
            let dl = r.job.absolute_deadline().as_secs();
            let real_s = eng.alloc_slot();
            debug_assert_eq!(real_s, s, "blank engine allocates slots in order");
            eng.gang_start[slot] = eng.gang_nodes.len() as u32;
            let mut seen = r.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != r.nodes.len() {
                return Err(format!("{} allocation repeats a node", r.job.id));
            }
            for (node, &pos) in r.nodes.iter().zip(&r.node_positions) {
                let ni = node.0 as usize;
                if ni >= n {
                    return Err(format!("{} hosts on unknown {node}", r.job.id));
                }
                if snap.down[ni] {
                    return Err(format!("{} hosts on down {node}", r.job.id));
                }
                let list = &mut node_lists[ni];
                let pos = pos as usize;
                if list.len() <= pos {
                    list.resize(pos + 1, u32::MAX);
                }
                if list[pos] != u32::MAX {
                    return Err(format!("{node} position {pos} claimed twice"));
                }
                list[pos] = s;
                eng.gang_nodes.push(node.0);
                eng.occ_mask[ni / 64] |= 1u64 << (ni % 64);
                eng.node_min_dl[ni] = eng.node_min_dl[ni].min(dl);
            }
            eng.ids[slot] = r.job.id;
            eng.remaining_work[slot] = r.remaining_work;
            eng.remaining_est[slot] = r.remaining_est;
            eng.abs_deadline[slot] = dl;
            eng.estimate_secs[slot] = r.job.estimate.as_secs();
            eng.width[slot] = r.nodes.len() as u32;
            eng.width_f[slot] = r.nodes.len() as f64;
            eng.node0[slot] = r.nodes[0].0;
            eng.meta[slot] = Some(ResidentMeta {
                job: r.job.clone(),
                nodes: r.nodes.clone(),
                slots: r.node_positions.clone(),
                started: r.started,
                overruns: r.overruns,
            });
            eng.order.push(s);
        }
        for (ni, list) in node_lists.into_iter().enumerate() {
            if list.contains(&u32::MAX) {
                return Err(format!("node {ni} resident positions have a gap"));
            }
            eng.node_jobs[ni] = list;
        }
        eng.rates_clean = false;
        eng.recompute_rates();
        Ok(eng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;
    use workload::Urgency;

    fn cluster(n: usize) -> Cluster {
        Cluster::homogeneous(n, 168.0)
    }

    fn job(id: u64, submit: f64, runtime: f64, estimate: f64, procs: u32, deadline: f64) -> Job {
        Job {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(estimate),
            procs,
            deadline: SimDuration::from_secs(deadline),
            urgency: Urgency::Low,
        }
    }

    /// Drives the engine until all jobs complete; returns (job, finish).
    fn run_to_completion(engine: &mut ProportionalCluster) -> Vec<CompletedJob> {
        let mut done = Vec::new();
        let mut guard = 0;
        while let Some(t) = engine.next_event_time() {
            done.extend(engine.advance(t));
            guard += 1;
            assert!(guard < 100_000, "engine did not converge");
        }
        done
    }

    fn on_node(e: &ProportionalCluster, n: u32) -> Vec<JobId> {
        e.jobs_on_node(NodeId(n)).collect()
    }

    fn strict_cfg() -> ProportionalConfig {
        ProportionalConfig {
            discipline: ShareDiscipline::Strict,
            ..Default::default()
        }
    }

    #[test]
    fn accurate_single_job_meets_deadline_exactly_under_strict() {
        let mut e = ProportionalCluster::new(cluster(1), strict_cfg());
        e.admit(
            job(0, 0.0, 100.0, 100.0, 1, 200.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        // Required share 0.5 → rate 0.5 → finish at 200.
        assert!((e.rate_of(JobId(0)).unwrap() - 0.5).abs() < 1e-12);
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].finish.as_secs() - 200.0).abs() < 1e-3,
            "finish {:?}",
            done[0].finish
        );
        assert_eq!(done[0].overruns, 0);
        assert!(e.is_empty());
    }

    #[test]
    fn work_conserving_runs_at_full_speed_when_alone() {
        // Work-conserving is the default discipline.
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 100.0, 100.0, 1, 200.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        assert!((e.rate_of(JobId(0)).unwrap() - 1.0).abs() < 1e-12);
        let done = run_to_completion(&mut e);
        assert!((done[0].finish.as_secs() - 100.0).abs() < 1e-3);
    }

    #[test]
    fn overestimated_job_finishes_when_actual_work_done() {
        let mut e = ProportionalCluster::new(cluster(1), strict_cfg());
        // Estimate 4× the runtime, deadline 400: share = 1.0 (est 400 / dl
        // 400)... the scheduler thinks the job needs the whole node.
        e.admit(
            job(0, 0.0, 100.0, 400.0, 1, 400.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let done = run_to_completion(&mut e);
        // Actual work 100 at rate 1.0 → finishes at ~100, well before the
        // deadline, despite the scheduler's inflated belief.
        assert!(
            (done[0].finish.as_secs() - 100.0).abs() < 1e-3,
            "finish {:?}",
            done[0].finish
        );
        assert_eq!(done[0].overruns, 0);
    }

    #[test]
    fn underestimated_job_overruns_and_still_completes() {
        let mut e = ProportionalCluster::new(cluster(1), strict_cfg());
        // Estimate 50, actual 100, deadline 100: share starts at 0.5.
        e.admit(
            job(0, 0.0, 100.0, 50.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 1);
        assert!(done[0].overruns >= 1, "overruns {}", done[0].overruns);
        // It must finish eventually — after its deadline.
        assert!(done[0].finish.as_secs() > 100.0);
        // And the engine must never lose the job.
        assert!(e.is_empty());
    }

    #[test]
    fn overloaded_node_squeezes_coresidents() {
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        // Two jobs each demanding share 0.75: the node is overloaded and
        // both run slower than required.
        e.admit(
            job(0, 0.0, 75.0, 75.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        e.admit(
            job(1, 0.0, 75.0, 75.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let r0 = e.rate_of(JobId(0)).unwrap();
        assert!((r0 - 0.5).abs() < 1e-9, "rate {r0}");
        let done = run_to_completion(&mut e);
        for d in &done {
            assert!(
                d.finish.as_secs() > 100.0 + 1.0,
                "both jobs miss: {:?}",
                d.finish
            );
        }
    }

    #[test]
    fn gang_job_advances_at_slowest_member_rate() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        // Node 0 also hosts a competing job → gang member on node 0 is
        // slower than on node 1.
        e.admit(
            job(0, 0.0, 100.0, 100.0, 1, 125.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        e.admit(
            job(1, 0.0, 50.0, 50.0, 2, 100.0),
            vec![NodeId(0), NodeId(1)],
            SimTime::ZERO,
        );
        // Node 0: shares 0.8 + 0.5 = 1.3 (overloaded) → gang rate on node
        // 0 = 0.5/1.3; node 1: share 0.5 alone → rate 0.5. Gang = min.
        let gang = e.rate_of(JobId(1)).unwrap();
        assert!((gang - 0.5 / 1.3).abs() < 1e-9, "gang rate {gang}");
    }

    #[test]
    fn fail_node_evicts_gangs_and_frees_survivor_capacity() {
        let mut e = ProportionalCluster::new(cluster(3), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 100.0, 100.0, 2, 400.0),
            vec![NodeId(0), NodeId(1)],
            SimTime::ZERO,
        );
        e.admit(
            job(1, 0.0, 100.0, 100.0, 1, 400.0),
            vec![NodeId(1)],
            SimTime::ZERO,
        );
        e.admit(
            job(2, 0.0, 100.0, 100.0, 1, 400.0),
            vec![NodeId(2)],
            SimTime::ZERO,
        );
        let t = SimTime::from_secs(50.0);
        e.advance(t);
        let epoch_before = e.global_epoch();
        let displaced = e.fail_node(NodeId(0), t);
        // Only the gang touching node 0 dies; its progress is reported.
        assert_eq!(displaced.len(), 1);
        assert_eq!(displaced[0].job.id, JobId(0));
        assert!(displaced[0].remaining_work < 100.0);
        assert!(!e.node_is_up(NodeId(0)));
        assert_eq!(e.up_nodes(), 2);
        assert!(e.global_epoch() > epoch_before);
        // Node 1 lost its gang member: only job 1 remains there.
        assert_eq!(on_node(&e, 1), vec![JobId(1)]);
        assert!(on_node(&e, 0).is_empty());
        // The survivors still drain to completion.
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 2);
        // The down node sorts last in the share index with an infinite base.
        e.with_share_index(|entries| {
            assert_eq!(entries.last().unwrap().node, NodeId(0));
            assert!(entries.last().unwrap().base_share.is_infinite());
        });
        e.restore_node(NodeId(0), e.now());
        assert!(e.node_is_up(NodeId(0)));
        e.with_share_index(|entries| {
            assert!(entries.iter().all(|s| s.base_share == 0.0));
        });
    }

    #[test]
    #[should_panic(expected = "onto down")]
    fn admitting_onto_down_node_panics() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        e.fail_node(NodeId(1), SimTime::ZERO);
        e.admit(
            job(0, 0.0, 10.0, 10.0, 1, 100.0),
            vec![NodeId(1)],
            SimTime::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_node_panics() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        e.fail_node(NodeId(1), SimTime::ZERO);
        e.fail_node(NodeId(1), SimTime::ZERO);
    }

    #[test]
    fn fail_node_rebalances_shared_node_rates() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        // Two jobs share node 1; one also spans node 0.
        e.admit(
            job(0, 0.0, 100.0, 100.0, 2, 200.0),
            vec![NodeId(0), NodeId(1)],
            SimTime::ZERO,
        );
        e.admit(
            job(1, 0.0, 100.0, 100.0, 1, 200.0),
            vec![NodeId(1)],
            SimTime::ZERO,
        );
        let squeezed = e.rate_of(JobId(1)).unwrap();
        e.fail_node(NodeId(0), SimTime::ZERO);
        // With the gang evicted, job 1 owns node 1 again.
        assert!(e.rate_of(JobId(0)).is_none());
        assert!(e.rate_of(JobId(1)).unwrap() > squeezed);
    }

    #[test]
    fn utilization_accounts_gang_width() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        let cfg_now = SimTime::ZERO;
        e.admit(
            job(0, 0.0, 100.0, 100.0, 2, 100.0),
            vec![NodeId(0), NodeId(1)],
            cfg_now,
        );
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 1);
        // Share 1.0 on both nodes → full utilisation of both for 100 s.
        assert!(
            (e.utilization() - 1.0).abs() < 1e-6,
            "util {}",
            e.utilization()
        );
    }

    #[test]
    fn arrivals_mid_run_redistribute_rates() {
        let mut e = ProportionalCluster::new(cluster(1), strict_cfg());
        e.admit(
            job(0, 0.0, 100.0, 100.0, 1, 200.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        // Advance halfway, then a second job arrives requiring share 0.8.
        let t = SimTime::from_secs(100.0);
        let done = e.advance(t);
        assert!(done.is_empty());
        assert!((e.remaining_est_of(JobId(0)).unwrap() - 50.0).abs() < 1e-9);
        e.admit(job(1, 100.0, 80.0, 80.0, 1, 100.0), vec![NodeId(0)], t);
        // Node now has shares 0.5 + 0.8 = 1.3 → job 0's rate drops.
        let r0 = e.rate_of(JobId(0)).unwrap();
        assert!((r0 - 0.5 / 1.3).abs() < 1e-9, "rate {r0}");
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn node_total_share_matches_eq2() {
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 60.0, 60.0, 1, 120.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let s = e.node_total_share(NodeId(0), None);
        assert!((s - 0.5).abs() < 1e-9);
        let new = job(1, 0.0, 30.0, 30.0, 1, 100.0);
        let s2 = e.node_total_share(NodeId(0), Some(&new));
        assert!((s2 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn projection_input_includes_tentative_job() {
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 60.0, 60.0, 1, 120.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let new = job(1, 0.0, 30.0, 30.0, 1, 100.0);
        let pj = e.node_projection(NodeId(0), Some(&new));
        assert_eq!(pj.len(), 2);
        assert_eq!(pj[1].remaining_est, 30.0);
        assert_eq!(pj[1].abs_deadline, 100.0);
    }

    #[test]
    #[should_panic(expected = "advance() the engine")]
    fn stale_admit_panics() {
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 10.0, 10.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::from_secs(5.0),
        );
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn wrong_node_count_panics() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 10.0, 10.0, 2, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_node_panics() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 10.0, 10.0, 2, 100.0),
            vec![NodeId(0), NodeId(0)],
            SimTime::ZERO,
        );
    }

    #[test]
    fn queries_on_absent_jobs_return_none() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        assert_eq!(e.rate_of(JobId(7)), None);
        assert_eq!(e.remaining_est_of(JobId(7)), None);
        e.admit(
            job(7, 0.0, 10.0, 10.0, 1, 100.0),
            vec![NodeId(1)],
            SimTime::ZERO,
        );
        assert_eq!(on_node(&e, 1), vec![JobId(7)]);
        assert!(on_node(&e, 0).is_empty());
        assert_eq!(e.resident_count(NodeId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_rejects_time_travel() {
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        e.admit(
            job(0, 0.0, 10.0, 10.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        e.advance(SimTime::from_secs(5.0));
        e.advance(SimTime::from_secs(1.0));
    }

    #[test]
    fn idle_engine_has_no_next_event() {
        let e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        assert!(e.next_event_time().is_none());
        assert_eq!(e.utilization(), 0.0);
    }

    #[test]
    fn quantum_bounds_event_gap() {
        let cfg = ProportionalConfig {
            max_quantum: Some(10.0),
            ..Default::default()
        };
        let mut e = ProportionalCluster::new(cluster(1), cfg);
        e.admit(
            job(0, 0.0, 1000.0, 1000.0, 1, 10_000.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let next = e.next_event_time().unwrap();
        assert!((next.as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn per_node_utilization_tracks_where_work_ran() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        // One job on node 0 only; node 1 idles.
        e.admit(
            job(0, 0.0, 100.0, 100.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 1);
        assert!((e.node_utilization(NodeId(0)) - 1.0).abs() < 1e-6);
        assert_eq!(e.node_utilization(NodeId(1)), 0.0);
        assert!((e.utilization_imbalance() - 1.0).abs() < 1e-6);
        // Cluster-wide utilisation is the mean of the two.
        assert!((e.utilization() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cached_next_event_matches_scan_through_a_busy_run() {
        let mut e = ProportionalCluster::new(cluster(4), ProportionalConfig::default());
        let mut id = 0u64;
        let mut t = 0.0;
        for round in 0..40 {
            // Admit a small burst with varied shapes.
            for k in 0..3 {
                let node = NodeId(((round + k) % 4) as u32);
                e.admit(
                    job(
                        id,
                        t,
                        20.0 + 7.0 * k as f64,
                        25.0,
                        1,
                        90.0 + 11.0 * k as f64,
                    ),
                    vec![node],
                    SimTime::from_secs(t),
                );
                assert_eq!(
                    e.next_event_time().map(|t| t.as_secs().to_bits()),
                    e.next_event_time_scan().map(|t| t.as_secs().to_bits()),
                    "cached and scan diverged after admit"
                );
                id += 1;
            }
            let next = e.next_event_time().expect("jobs resident");
            t = next.as_secs();
            e.advance(next);
            assert_eq!(
                e.next_event_time().map(|t| t.as_secs().to_bits()),
                e.next_event_time_scan().map(|t| t.as_secs().to_bits()),
                "cached and scan diverged after advance"
            );
        }
        // Drain to idle; the two must agree at every event.
        while let Some(next) = e.next_event_time() {
            assert_eq!(
                e.next_event_time().map(|t| t.as_secs().to_bits()),
                e.next_event_time_scan().map(|t| t.as_secs().to_bits())
            );
            e.advance(next);
        }
        assert!(e.is_empty());
        assert!(e.next_event_time_scan().is_none());
    }

    #[test]
    fn swap_remove_keeps_slots_consistent() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        // Five jobs on node 0 with staggered finishes, one gang job over
        // both nodes: removals exercise the slot-patching path.
        for i in 0..5 {
            e.admit(
                job(
                    i,
                    0.0,
                    10.0 + 10.0 * i as f64,
                    10.0 + 10.0 * i as f64,
                    1,
                    500.0,
                ),
                vec![NodeId(0)],
                SimTime::ZERO,
            );
        }
        e.admit(
            job(9, 0.0, 25.0, 25.0, 2, 500.0),
            vec![NodeId(0), NodeId(1)],
            SimTime::ZERO,
        );
        let mut done = 0;
        while let Some(next) = e.next_event_time() {
            done += e.advance(next).len();
            // Slot invariant: every resident's recorded slot points at
            // itself in the node list.
            for &s in &e.order {
                let m = e.meta[s as usize].as_ref().unwrap();
                for (n, &slot) in m.nodes.iter().zip(&m.slots) {
                    assert_eq!(e.node_jobs[n.0 as usize][slot as usize], s);
                }
            }
        }
        assert_eq!(done, 6);
        assert!(on_node(&e, 0).is_empty());
        assert!(on_node(&e, 1).is_empty());
    }

    #[test]
    fn epochs_track_scheduler_visible_change() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        let e0 = e.node_epoch(NodeId(0));
        let e1 = e.node_epoch(NodeId(1));
        e.admit(
            job(0, 0.0, 50.0, 50.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        assert!(e.node_epoch(NodeId(0)) > e0, "admit must bump the node");
        assert_eq!(
            e.node_epoch(NodeId(1)),
            e1,
            "untouched node keeps its epoch"
        );

        // Zero-width advance changes nothing scheduler-visible.
        let mid0 = e.node_epoch(NodeId(0));
        e.advance(SimTime::ZERO);
        assert_eq!(e.node_epoch(NodeId(0)), mid0);

        // A real advance moves `now` and the estimates: occupied nodes
        // bump, empty nodes do not.
        e.advance(SimTime::from_secs(10.0));
        assert!(e.node_epoch(NodeId(0)) > mid0);
        assert_eq!(e.node_epoch(NodeId(1)), e1);
    }

    #[test]
    fn rate_starved_resident_gets_conservative_wake() {
        // Job 1's share underflows to zero next to an astronomically
        // inflated co-resident: the engine must neither panic nor stall.
        let cfg = ProportionalConfig {
            max_quantum: None,
            ..Default::default()
        };
        let mut e = ProportionalCluster::new(cluster(1), cfg);
        e.admit(
            job(0, 0.0, 10.0, 1e300, 1, 1.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        e.admit(
            job(1, 0.0, 10.0, 1e-6, 1, 1e300),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        assert_eq!(e.rate_of(JobId(1)), Some(0.0), "share underflows to zero");
        let next = e.next_event_time().expect("resident jobs");
        assert!(next > e.now(), "wake must move time forward");
        assert!(
            next.as_secs() <= e.now().as_secs() + FALLBACK_QUANTUM,
            "wake is quantum-bounded"
        );
        assert_eq!(
            e.next_event_time().map(|t| t.as_secs().to_bits()),
            e.next_event_time_scan().map(|t| t.as_secs().to_bits())
        );
        // The engine keeps making progress events even while one job is
        // starved (job 0 completes, then job 1 recovers the full node).
        let mut done = Vec::new();
        let mut guard = 0;
        while let Some(t) = e.next_event_time() {
            done.extend(e.advance(t));
            guard += 1;
            assert!(guard < 100_000, "engine did not converge");
        }
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn share_index_matches_direct_totals_and_stays_sorted() {
        let mut e = ProportionalCluster::new(cluster(4), ProportionalConfig::default());
        let check = |e: &ProportionalCluster| {
            e.with_share_index(|entries| {
                assert_eq!(entries.len(), 4);
                for w in entries.windows(2) {
                    assert!(
                        (w[0].base_share, w[0].node) <= (w[1].base_share, w[1].node),
                        "index out of order: {w:?}"
                    );
                }
                for entry in entries {
                    assert_eq!(
                        entry.base_share.to_bits(),
                        e.node_total_share(entry.node, None).to_bits(),
                        "stale share for {:?}",
                        entry.node
                    );
                }
            });
        };
        check(&e);
        // Load the nodes unevenly, checking after every mutation kind.
        e.admit(
            job(0, 0.0, 60.0, 60.0, 1, 120.0),
            vec![NodeId(2)],
            SimTime::ZERO,
        );
        check(&e);
        e.admit(
            job(1, 0.0, 90.0, 90.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        e.admit(
            job(2, 0.0, 30.0, 30.0, 1, 400.0),
            vec![NodeId(2)],
            SimTime::ZERO,
        );
        check(&e);
        let next = e.next_event_time().unwrap();
        e.advance(next);
        check(&e);
        while let Some(t) = e.next_event_time() {
            e.advance(t);
            check(&e);
        }
        assert!(e.is_empty());
        check(&e);
    }

    #[test]
    fn global_epoch_moves_with_any_node_epoch() {
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        let g0 = e.global_epoch();
        e.admit(
            job(0, 0.0, 50.0, 50.0, 1, 100.0),
            vec![NodeId(0)],
            SimTime::ZERO,
        );
        assert!(e.global_epoch() > g0, "admit must bump the global epoch");
        let g1 = e.global_epoch();
        e.advance(SimTime::ZERO);
        assert_eq!(e.global_epoch(), g1, "zero-width advance changes nothing");
        e.advance(SimTime::from_secs(5.0));
        assert!(
            e.global_epoch() > g1,
            "a real advance bumps the global epoch"
        );
    }

    #[test]
    fn advance_matches_reference_under_long_churn() {
        // Long-lived residents under steady event churn: the fast path
        // (scratch buffers, cached event minimum, batched epoch bumps)
        // must stay bitwise identical to the reference at every step.
        let mut fast = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        let mut refr = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        for i in 0..8 {
            let j = job(i, 0.0, 1e6, 1e6, 1, 2e6);
            fast.admit(j.clone(), vec![NodeId((i % 2) as u32)], SimTime::ZERO);
            refr.admit(j, vec![NodeId((i % 2) as u32)], SimTime::ZERO);
        }
        for step in 1..500u64 {
            let t = SimTime::from_secs(step as f64);
            let a = fast.advance(t);
            let b = refr.advance_reference(t);
            assert_eq!(a.len(), b.len());
            assert_eq!(
                fast.next_event_time().map(|t| t.as_secs().to_bits()),
                refr.next_event_time().map(|t| t.as_secs().to_bits()),
                "fast and reference diverged at step {step}"
            );
            for i in 0..8 {
                assert_eq!(
                    fast.rate_of(JobId(i)).map(f64::to_bits),
                    refr.rate_of(JobId(i)).map(f64::to_bits)
                );
                assert_eq!(
                    fast.remaining_est_of(JobId(i)).map(f64::to_bits),
                    refr.remaining_est_of(JobId(i)).map(f64::to_bits)
                );
            }
            assert_eq!(fast.utilization().to_bits(), refr.utilization().to_bits());
        }
    }

    #[test]
    fn zero_dt_advance_skips_recompute_bitwise_inertly() {
        // Same-instant advances must neither change any rate bit nor pay
        // for a recompute (observable through the unchanged epochs).
        let mut e = ProportionalCluster::new(cluster(2), ProportionalConfig::default());
        for i in 0..4 {
            e.admit(
                job(i, 0.0, 50.0 + i as f64, 60.0, 1, 200.0),
                vec![NodeId((i % 2) as u32)],
                SimTime::ZERO,
            );
        }
        let t = SimTime::from_secs(7.0);
        e.advance(t);
        let rates: Vec<u64> = (0..4)
            .map(|i| e.rate_of(JobId(i)).unwrap().to_bits())
            .collect();
        let next = e.next_event_time().map(|t| t.as_secs().to_bits());
        let g = e.global_epoch();
        for _ in 0..5 {
            let done = e.advance(t);
            assert!(done.is_empty());
        }
        assert_eq!(e.global_epoch(), g);
        assert_eq!(e.next_event_time().map(|t| t.as_secs().to_bits()), next);
        for (i, bits) in rates.iter().enumerate() {
            assert_eq!(e.rate_of(JobId(i as u64)).unwrap().to_bits(), *bits);
        }
    }

    #[test]
    fn work_is_conserved_across_many_jobs() {
        // Total delivered work equals the sum of runtimes regardless of
        // contention (single node, serial jobs).
        let mut e = ProportionalCluster::new(cluster(1), ProportionalConfig::default());
        for i in 0..5 {
            e.admit(
                job(i, 0.0, 40.0, 40.0, 1, 150.0 + 10.0 * i as f64),
                vec![NodeId(0)],
                SimTime::ZERO,
            );
        }
        let done = run_to_completion(&mut e);
        assert_eq!(done.len(), 5);
        let makespan = done.iter().map(|d| d.finish.as_secs()).fold(0.0, f64::max);
        // 200 s of work on one processor: cannot finish before 200 s.
        assert!(makespan >= 200.0 - 1e-3, "makespan {makespan}");
        // busy integral == total work delivered.
        assert!((e.utilization() * makespan - 200.0).abs() < 1.0);
    }
}
