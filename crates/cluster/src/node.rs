//! Computation nodes.

/// Index of a node within its cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A single-processor computation node with a SPEC rating.
///
/// Job runtimes are expressed at a *reference* rating; a node processes
/// `rating / reference_rating` reference-seconds of work per wall second,
/// which is how "the runtime estimate of a job has to be translated to its
/// equivalent value across heterogeneous nodes" (§3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Node {
    /// The node's identity.
    pub id: NodeId,
    /// SPEC rating (processing power), > 0.
    pub rating: f64,
}

impl Node {
    /// Creates a node.
    ///
    /// # Panics
    /// Panics if `rating` is not strictly positive.
    pub fn new(id: NodeId, rating: f64) -> Self {
        assert!(rating > 0.0, "node rating must be > 0, got {rating}");
        Node { id, rating }
    }

    /// Speed factor relative to the reference rating.
    #[inline]
    pub fn speed_factor(&self, reference_rating: f64) -> f64 {
        self.rating / reference_rating
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_factor_scales_with_rating() {
        let n = Node::new(NodeId(0), 336.0);
        assert_eq!(n.speed_factor(168.0), 2.0);
        assert_eq!(n.speed_factor(336.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "rating")]
    fn zero_rating_rejected() {
        Node::new(NodeId(0), 0.0);
    }
}
