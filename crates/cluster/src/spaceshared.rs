//! Space-shared processor pool (the substrate EDF and FCFS run on).
//!
//! Each processor executes a single job at a time (§4: EDF "executes only
//! a single job on a processor at any time (space-shared)"). Starting a
//! job occupies `numproc` processors for exactly its actual runtime
//! (scaled by the slowest allocated node's speed factor); the finish
//! instant is known at start, so the caller schedules one completion
//! event per started job.

use crate::cluster::Cluster;
use crate::node::NodeId;
use sim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use workload::{Job, JobId};

/// A running space-shared job.
#[derive(Clone, Debug)]
struct RunningJob {
    job: Job,
    nodes: Vec<NodeId>,
    started: SimTime,
    finish: SimTime,
    /// Start order, used to break ties among simultaneous finishes the
    /// same way an event queue would (FIFO by schedule order).
    seq: u64,
}

/// Canonical state of one running job, as carried by [`PoolSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunningSnapshot {
    /// The job itself.
    pub job: Job,
    /// Allocated nodes, in allocation order.
    pub nodes: Vec<NodeId>,
    /// Start instant.
    pub started: SimTime,
    /// Precomputed finish instant.
    pub finish: SimTime,
    /// Start sequence (finish-tie breaker).
    pub seq: u64,
}

/// Canonical state of a [`SpaceSharedCluster`], sufficient to rebuild
/// the pool bit-for-bit: the free list and finish heap are derived.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PoolSnapshot {
    /// Running jobs in ascending-id order.
    pub running: Vec<RunningSnapshot>,
    /// Busy processor-seconds over `[0, last_update]`.
    pub busy_integral: f64,
    /// Down processor-seconds over `[0, last_update]`.
    pub down_integral: f64,
    /// Instant up to which the integrals are accounted.
    pub last_update: SimTime,
    /// Next start sequence to hand out.
    pub start_seq: u64,
    /// Per-node down flags.
    pub down: Vec<bool>,
}

/// The space-shared cluster engine.
#[derive(Clone, Debug)]
pub struct SpaceSharedCluster {
    cluster: Cluster,
    free: Vec<NodeId>,
    running: BTreeMap<JobId, RunningJob>,
    busy_integral: f64,
    /// Processor-seconds spent down over `[0, last_update]`; excluded
    /// from the utilisation denominator (churn is lost capacity, not
    /// idleness). Exactly `0.0` on fault-free runs, keeping their
    /// utilisation bitwise unchanged.
    down_integral: f64,
    last_update: SimTime,
    /// Min-heap of `(finish, start seq, id)` surfacing the next
    /// completion without an external event queue. Entries for jobs
    /// completed through [`SpaceSharedCluster::complete`] go stale and
    /// are lazily discarded when they reach the top.
    finish_heap: BinaryHeap<Reverse<(SimTime, u64, JobId)>>,
    start_seq: u64,
    /// Per-node down flags; a down node is neither free nor busy.
    down: Vec<bool>,
    down_count: usize,
}

impl SpaceSharedCluster {
    /// Creates an idle pool over the cluster.
    pub fn new(cluster: Cluster) -> Self {
        // Free list kept sorted descending so `pop` hands out the
        // lowest-id node first (deterministic allocations).
        let mut free: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id).collect();
        free.reverse();
        let down = vec![false; cluster.len()];
        SpaceSharedCluster {
            cluster,
            free,
            running: BTreeMap::new(),
            busy_integral: 0.0,
            down_integral: 0.0,
            last_update: SimTime::ZERO,
            finish_heap: BinaryHeap::new(),
            start_seq: 0,
            down,
            down_count: 0,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of idle processors.
    pub fn free_procs(&self) -> usize {
        self.free.len()
    }

    /// Number of running jobs.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// `true` when the job can start right now.
    pub fn can_start(&self, job: &Job) -> bool {
        job.procs as usize <= self.free.len()
    }

    /// Returns a node to the free pool at its sorted (descending-id)
    /// position. Ids are unique, so the pool after k insertions is
    /// exactly the list the historical `extend + sort` produced — minus
    /// the full re-sort per completion/fail/restore event.
    fn free_insert(&mut self, n: NodeId) {
        let pos = self.free.partition_point(|x| *x > n);
        self.free.insert(pos, n);
    }

    /// Starts a job at `now` on the lowest-id free processors; returns the
    /// completion instant the caller must schedule.
    ///
    /// # Panics
    /// Panics if not enough processors are free.
    pub fn start(&mut self, job: Job, now: SimTime) -> SimTime {
        assert!(
            self.can_start(&job),
            "{} needs {} procs, {} free",
            job.id,
            job.procs,
            self.free.len()
        );
        self.account(now);
        let mut nodes = Vec::with_capacity(job.procs as usize);
        for _ in 0..job.procs {
            nodes.push(self.free.pop().expect("checked free count"));
        }
        // On heterogeneous nodes the gang advances at the slowest member.
        let slowest = nodes
            .iter()
            .map(|n| self.cluster.speed_factor(*n))
            .fold(f64::INFINITY, f64::min);
        let duration = SimDuration::from_secs(job.runtime.as_secs() / slowest);
        let finish = now + duration;
        let id = job.id;
        let seq = self.start_seq;
        self.start_seq += 1;
        self.finish_heap.push(Reverse((finish, seq, id)));
        self.running.insert(
            id,
            RunningJob {
                job,
                nodes,
                started: now,
                finish,
                seq,
            },
        );
        finish
    }

    /// The instant of the earliest pending completion, if any job is
    /// running. Simultaneous finishes are surfaced in start order, so
    /// repeatedly draining [`SpaceSharedCluster::complete_next`] visits
    /// completions exactly as an event queue with FIFO ties would.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse((finish, seq, id))) = self.finish_heap.peek().copied() {
            match self.running.get(&id) {
                Some(r) if r.seq == seq => return Some(finish),
                // Stale: completed out-of-band via `complete`.
                _ => {
                    self.finish_heap.pop();
                }
            }
        }
        None
    }

    /// Completes the earliest-finishing running job (start order breaks
    /// ties), freeing its processors and accounting utilisation up to its
    /// finish instant. Returns `(job, started, finish)`.
    ///
    /// # Panics
    /// Panics if no job is running.
    pub fn complete_next(&mut self) -> (Job, SimTime, SimTime) {
        let finish = self
            .next_completion_time()
            .expect("complete_next on an idle pool");
        let Reverse((_, _, id)) = self.finish_heap.pop().expect("peeked entry present");
        let (job, started) = self.complete(id, finish);
        (job, started, finish)
    }

    /// Completes a running job at `now`, freeing its processors. Returns
    /// `(job, started)`.
    ///
    /// # Panics
    /// Panics if the job is not running or `now` differs from its
    /// precomputed finish instant.
    pub fn complete(&mut self, id: JobId, now: SimTime) -> (Job, SimTime) {
        self.account(now);
        let r = self
            .running
            .remove(&id)
            .unwrap_or_else(|| panic!("{id} is not running"));
        assert_eq!(
            r.finish, now,
            "{id} completes at {:?}, not {:?}",
            r.finish, now
        );
        for &n in &r.nodes {
            self.free_insert(n);
        }
        (r.job, r.started)
    }

    /// `true` when the node has not been failed (or has been restored).
    #[inline]
    pub fn node_is_up(&self, node: NodeId) -> bool {
        !self.down[node.0 as usize]
    }

    /// Number of processors that are not down (free or busy).
    pub fn up_procs(&self) -> usize {
        self.cluster.len() - self.down_count
    }

    /// Fails a node at `now`. An idle node simply leaves the free pool;
    /// a hosting node displaces its resident gang job — the *whole* gang
    /// loses its work, the job's other processors are freed, and the
    /// displaced `(job, started)` is returned for the caller's recovery
    /// policy. The job's pending finish-heap entry goes stale and is
    /// lazily discarded, exactly like an out-of-band `complete`.
    ///
    /// # Panics
    /// Panics if the node is already down.
    pub fn fail_node(&mut self, node: NodeId, now: SimTime) -> Option<(Job, SimTime)> {
        assert!(self.node_is_up(node), "{node} is already down");
        self.account(now);
        self.down[node.0 as usize] = true;
        self.down_count += 1;
        if let Some(pos) = self.free.iter().position(|n| *n == node) {
            self.free.remove(pos);
            return None;
        }
        let id = self
            .running
            .iter()
            .find(|(_, r)| r.nodes.contains(&node))
            .map(|(id, _)| *id)
            .expect("a non-free up node hosts a job");
        let r = self.running.remove(&id).expect("found above");
        for &n in r.nodes.iter().filter(|n| **n != node) {
            self.free_insert(n);
        }
        Some((r.job, r.started))
    }

    /// Restores a failed node at `now`: it rejoins the free pool empty.
    ///
    /// # Panics
    /// Panics if the node is not down.
    pub fn restore_node(&mut self, node: NodeId, now: SimTime) {
        assert!(!self.node_is_up(node), "{node} is not down");
        self.account(now);
        self.down[node.0 as usize] = false;
        self.down_count -= 1;
        self.free_insert(node);
    }

    /// Mean processor utilisation over `[0, now]`, relative to the
    /// capacity that was actually *up* — processor-seconds spent down
    /// are excluded from the denominator. Call after the final
    /// completion to get the run's figure.
    pub fn utilization(&self) -> f64 {
        let elapsed = self.last_update.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let capacity = elapsed * self.cluster.len() as f64 - self.down_integral;
        if capacity <= 0.0 {
            return 0.0;
        }
        self.busy_integral / capacity
    }

    /// Extracts the canonical pool state (see [`PoolSnapshot`]).
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            // BTreeMap iteration is ascending by id already.
            running: self
                .running
                .values()
                .map(|r| RunningSnapshot {
                    job: r.job.clone(),
                    nodes: r.nodes.clone(),
                    started: r.started,
                    finish: r.finish,
                    seq: r.seq,
                })
                .collect(),
            busy_integral: self.busy_integral,
            down_integral: self.down_integral,
            last_update: self.last_update,
            start_seq: self.start_seq,
            down: self.down.clone(),
        }
    }

    /// Rebuilds a pool from a snapshot over `cluster`. The free list
    /// (up nodes hosting nothing, sorted descending) and the finish
    /// heap are reconstructed from the canonical state; the result is
    /// observationally identical to the pool the snapshot was taken
    /// from — the only difference is the absence of stale finish-heap
    /// entries, which the live pool discards lazily anyway.
    ///
    /// Returns a description of the first violated invariant instead of
    /// panicking, so checkpoint restore can surface corruption as a
    /// structured error.
    pub fn from_snapshot(cluster: Cluster, snap: &PoolSnapshot) -> Result<Self, String> {
        let n = cluster.len();
        if snap.down.len() != n {
            return Err(format!(
                "down flags cover {} nodes, cluster has {n}",
                snap.down.len()
            ));
        }
        let mut hosted = vec![false; n];
        let mut running = BTreeMap::new();
        let mut finish_heap = BinaryHeap::new();
        for r in &snap.running {
            if r.nodes.is_empty() || r.nodes.len() != r.job.procs as usize {
                return Err(format!("{} node list does not match procs", r.job.id));
            }
            if r.seq >= snap.start_seq {
                return Err(format!("{} seq beyond start_seq", r.job.id));
            }
            for node in &r.nodes {
                let i = node.0 as usize;
                if i >= n {
                    return Err(format!("{} hosts on unknown {node}", r.job.id));
                }
                if hosted[i] {
                    return Err(format!("{node} hosts two jobs"));
                }
                if snap.down[i] {
                    return Err(format!("{} hosts on down {node}", r.job.id));
                }
                hosted[i] = true;
            }
            finish_heap.push(Reverse((r.finish, r.seq, r.job.id)));
            if running
                .insert(
                    r.job.id,
                    RunningJob {
                        job: r.job.clone(),
                        nodes: r.nodes.clone(),
                        started: r.started,
                        finish: r.finish,
                        seq: r.seq,
                    },
                )
                .is_some()
            {
                return Err(format!("{} appears twice", r.job.id));
            }
        }
        // Free = up and not hosting, descending so `pop` hands out the
        // lowest id first (the invariant `free_insert` maintains).
        let free: Vec<NodeId> = (0..n)
            .rev()
            .filter(|&i| !snap.down[i] && !hosted[i])
            .map(|i| NodeId(i as u32))
            .collect();
        let down_count = snap.down.iter().filter(|d| **d).count();
        Ok(SpaceSharedCluster {
            cluster,
            free,
            running,
            busy_integral: snap.busy_integral,
            down_integral: snap.down_integral,
            last_update: snap.last_update,
            finish_heap,
            start_seq: snap.start_seq,
            down: snap.down.clone(),
            down_count,
        })
    }

    fn account(&mut self, now: SimTime) {
        assert!(now >= self.last_update, "time went backwards");
        let dt = (now - self.last_update).as_secs();
        // Down nodes are neither free nor busy: they deliver no work.
        let busy = self.cluster.len() - self.free.len() - self.down_count;
        self.busy_integral += busy as f64 * dt;
        // Skipped entirely when nothing is down so fault-free runs stay
        // bitwise identical to the pre-churn accounting.
        if self.down_count > 0 {
            self.down_integral += self.down_count as f64 * dt;
        }
        self.last_update = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Urgency;

    fn job(id: u64, runtime: f64, procs: u32) -> Job {
        Job {
            id: JobId(id),
            submit: SimTime::ZERO,
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime),
            procs,
            deadline: SimDuration::from_secs(runtime * 2.0),
            urgency: Urgency::Low,
        }
    }

    #[test]
    fn start_and_complete_roundtrip() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(4, 168.0));
        assert_eq!(p.free_procs(), 4);
        let finish = p.start(job(1, 100.0, 3), SimTime::ZERO);
        assert_eq!(finish, SimTime::from_secs(100.0));
        assert_eq!(p.free_procs(), 1);
        assert_eq!(p.running_jobs(), 1);
        let (j, started) = p.complete(JobId(1), finish);
        assert_eq!(j.id, JobId(1));
        assert_eq!(started, SimTime::ZERO);
        assert_eq!(p.free_procs(), 4);
    }

    #[test]
    fn can_start_checks_capacity() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(4, 168.0));
        p.start(job(1, 10.0, 3), SimTime::ZERO);
        assert!(p.can_start(&job(2, 10.0, 1)));
        assert!(!p.can_start(&job(3, 10.0, 2)));
    }

    #[test]
    #[should_panic(expected = "procs")]
    fn overcommit_panics() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.start(job(1, 10.0, 3), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completing_unknown_job_panics() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.complete(JobId(9), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "completes at")]
    fn completing_at_wrong_instant_panics() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.start(job(1, 100.0, 1), SimTime::ZERO);
        p.complete(JobId(1), SimTime::from_secs(50.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn accounting_rejects_time_travel() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.start(job(1, 100.0, 1), SimTime::from_secs(10.0));
        p.start(job(2, 100.0, 1), SimTime::from_secs(5.0));
    }

    #[test]
    fn heterogeneous_gang_runs_at_slowest_member() {
        let nodes = vec![
            crate::node::Node::new(NodeId(0), 168.0),
            crate::node::Node::new(NodeId(1), 336.0),
        ];
        let c = Cluster::new(nodes, 168.0);
        let mut p = SpaceSharedCluster::new(c);
        // Lowest ids first → gets node 0 (slow) and node 1 (fast): the
        // gang runs at factor 1.0.
        let finish = p.start(job(1, 100.0, 2), SimTime::ZERO);
        assert_eq!(finish, SimTime::from_secs(100.0));
    }

    #[test]
    fn fast_node_alone_shortens_runtime() {
        let nodes = vec![
            crate::node::Node::new(NodeId(0), 336.0),
            crate::node::Node::new(NodeId(1), 168.0),
        ];
        let c = Cluster::new(nodes, 168.0);
        let mut p = SpaceSharedCluster::new(c);
        let finish = p.start(job(1, 100.0, 1), SimTime::ZERO);
        // Node 0 (factor 2) is handed out first.
        assert_eq!(finish, SimTime::from_secs(50.0));
    }

    #[test]
    fn utilization_integrates_busy_processors() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        let f = p.start(job(1, 100.0, 1), SimTime::ZERO);
        p.complete(JobId(1), f);
        // One of two processors busy for the whole span.
        assert!((p.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn next_completion_surfaces_in_finish_then_start_order() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(4, 168.0));
        assert_eq!(p.next_completion_time(), None);
        p.start(job(1, 100.0, 1), SimTime::ZERO);
        p.start(job(2, 50.0, 1), SimTime::ZERO);
        p.start(job(3, 50.0, 1), SimTime::ZERO);
        assert_eq!(p.next_completion_time(), Some(SimTime::from_secs(50.0)));
        // Ties break by start order: job 2 before job 3.
        let (j, started, finish) = p.complete_next();
        assert_eq!(j.id, JobId(2));
        assert_eq!(started, SimTime::ZERO);
        assert_eq!(finish, SimTime::from_secs(50.0));
        let (j, _, _) = p.complete_next();
        assert_eq!(j.id, JobId(3));
        let (j, _, finish) = p.complete_next();
        assert_eq!(j.id, JobId(1));
        assert_eq!(finish, SimTime::from_secs(100.0));
        assert_eq!(p.next_completion_time(), None);
        assert_eq!(p.free_procs(), 4);
    }

    #[test]
    fn out_of_band_complete_leaves_no_stale_surfacing() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.start(job(1, 10.0, 1), SimTime::ZERO);
        p.start(job(2, 20.0, 1), SimTime::ZERO);
        // Complete job 1 through the legacy by-id path; the heap entry it
        // left behind must be skipped.
        p.complete(JobId(1), SimTime::from_secs(10.0));
        assert_eq!(p.next_completion_time(), Some(SimTime::from_secs(20.0)));
        let (j, _, _) = p.complete_next();
        assert_eq!(j.id, JobId(2));
    }

    #[test]
    #[should_panic(expected = "idle pool")]
    fn complete_next_on_idle_pool_panics() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.complete_next();
    }

    #[test]
    fn failing_idle_node_shrinks_capacity() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(3, 168.0));
        assert_eq!(p.fail_node(NodeId(1), SimTime::ZERO), None);
        assert_eq!(p.free_procs(), 2);
        assert_eq!(p.up_procs(), 2);
        assert!(!p.node_is_up(NodeId(1)));
        // Allocation skips the down node.
        p.start(job(1, 10.0, 2), SimTime::ZERO);
        let r = p.running.get(&JobId(1)).unwrap();
        assert_eq!(r.nodes, vec![NodeId(0), NodeId(2)]);
        p.restore_node(NodeId(1), SimTime::from_secs(5.0));
        assert_eq!(p.up_procs(), 3);
        assert_eq!(p.free_procs(), 1);
    }

    #[test]
    fn failing_hosting_node_displaces_the_whole_gang() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(4, 168.0));
        p.start(job(1, 100.0, 3), SimTime::ZERO);
        p.start(job(2, 100.0, 1), SimTime::ZERO);
        let (j, started) = p.fail_node(NodeId(1), SimTime::from_secs(30.0)).unwrap();
        assert_eq!(j.id, JobId(1));
        assert_eq!(started, SimTime::ZERO);
        // Nodes 0 and 2 come back free; node 1 is down, node 3 still busy.
        assert_eq!(p.free, vec![NodeId(2), NodeId(0)]);
        assert_eq!(p.running_jobs(), 1);
        // The displaced job's finish-heap entry is stale, not surfaced.
        assert_eq!(p.next_completion_time(), Some(SimTime::from_secs(100.0)));
        let (j, _, _) = p.complete_next();
        assert_eq!(j.id, JobId(2));
    }

    #[test]
    fn down_nodes_do_not_count_as_busy_in_utilization() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.fail_node(NodeId(0), SimTime::ZERO);
        let f = p.start(job(1, 100.0, 1), SimTime::ZERO);
        p.complete(JobId(1), f);
        // The one *up* processor was busy the whole span; the down node
        // is lost capacity, not idleness.
        assert!((p.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn down_time_leaves_the_utilization_denominator() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        // Both up: one of two processors busy over [0, 100] → 100 busy
        // proc-seconds of 200 available.
        let f = p.start(job(1, 100.0, 1), SimTime::ZERO);
        p.complete(JobId(1), f);
        assert!((p.utilization() - 0.5).abs() < 1e-9);
        // Node 0 down over [100, 200] while the other runs: +100 busy of
        // +100 available → 200 busy / 300 available overall.
        p.fail_node(NodeId(0), f);
        let f2 = p.start(job(2, 100.0, 1), f);
        p.complete(JobId(2), f2);
        assert!((p.utilization() - 200.0 / 300.0).abs() < 1e-9);
        // Restoring the node resumes full-capacity accounting: an idle
        // [200, 300] adds 200 available proc-seconds and no busy ones.
        p.restore_node(NodeId(0), f2);
        p.account(SimTime::from_secs(300.0));
        assert!((p.utilization() - 200.0 / 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_panics() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(2, 168.0));
        p.fail_node(NodeId(0), SimTime::ZERO);
        p.fail_node(NodeId(0), SimTime::ZERO);
    }

    #[test]
    fn processors_are_reused_deterministically() {
        let mut p = SpaceSharedCluster::new(Cluster::homogeneous(3, 168.0));
        let f1 = p.start(job(1, 10.0, 2), SimTime::ZERO);
        p.start(job(2, 50.0, 1), SimTime::ZERO);
        p.complete(JobId(1), f1);
        assert_eq!(p.free_procs(), 2);
        // Restarting grabs the lowest ids again.
        let _ = p.start(job(3, 10.0, 2), f1);
        assert_eq!(p.free_procs(), 0);
    }
}
