//! # `cluster` — the cluster substrate
//!
//! Models the machine the admission controls manage (the paper's IBM SP2
//! at SDSC: 128 computation nodes, each a single-processor node with a
//! SPEC rating):
//!
//! * [`node`] / [`cluster`] — node inventory with per-node SPEC ratings
//!   (heterogeneity supported; the paper's machine is homogeneous).
//! * [`proportional`] — the deadline-based **proportional processor
//!   share** execution engine Libra/LibraRisk run on: each resident job
//!   requires share `remaining_runtime / remaining_deadline`; rates are
//!   renormalised when a node is overloaded and recomputed at every event.
//!   The engine tracks *actual* work and *scheduler-believed* (estimated)
//!   work separately — the divergence between the two is the paper's
//!   entire subject.
//! * [`spaceshared`] — the space-shared processor pool EDF/FCFS run on
//!   (one job per processor, non-preemptive).
//! * [`projection`] — the node-local what-if simulation that admission
//!   controls use to project per-job delays, deadline-delay values
//!   (Eq. 4) and the risk `σ_j` (Eq. 6).
//! * [`fault`] — deterministic node-churn plans (seeded exponential
//!   MTBF/MTTR scripts) both execution engines consume via
//!   `fail_node`/`restore_node`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod node;
pub mod projection;
pub mod proportional;
pub mod spaceshared;

pub use cluster::Cluster;
pub use fault::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
pub use node::{Node, NodeId};
pub use proportional::{
    CompletedJob, DisplacedJob, EngineSnapshot, ProportionalCluster, ProportionalConfig,
    ResidentSnapshot, ShareEntry,
};
pub use spaceshared::{PoolSnapshot, RunningSnapshot, SpaceSharedCluster};
