//! Property-based invariants of the execution engines and the delay
//! projection.

use cluster::projection::{self, node_risk, project_finishes, ProjectedJob, ShareDiscipline};
use cluster::proportional::{ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, NodeId, SpaceSharedCluster};
use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use workload::{Job, JobId, Urgency};

fn job(id: u64, runtime: f64, estimate: f64, procs: u32, deadline: f64) -> Job {
    Job {
        id: JobId(id),
        submit: SimTime::ZERO,
        runtime: SimDuration::from_secs(runtime),
        estimate: SimDuration::from_secs(estimate),
        procs,
        deadline: SimDuration::from_secs(deadline),
        urgency: Urgency::Low,
    }
}

#[derive(Debug, Clone)]
struct RawJob {
    runtime: f64,
    est_factor: f64,
    deadline: f64,
    procs: u32,
}

fn raw_job() -> impl Strategy<Value = RawJob> {
    (1.0..5_000.0f64, 0.2..6.0f64, 10.0..20_000.0f64, 1u32..4).prop_map(
        |(runtime, est_factor, deadline, procs)| RawJob {
            runtime,
            est_factor,
            deadline,
            procs,
        },
    )
}

fn discipline() -> impl Strategy<Value = ShareDiscipline> {
    prop_oneof![
        Just(ShareDiscipline::Strict),
        Just(ShareDiscipline::WorkConserving)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_always_terminates_and_conserves_work(
        raws in proptest::collection::vec(raw_job(), 1..12),
        disc in discipline(),
    ) {
        let cfg = ProportionalConfig { discipline: disc, ..Default::default() };
        let mut engine = ProportionalCluster::new(Cluster::homogeneous(4, 168.0), cfg);
        let mut total_work = 0.0;
        for (i, r) in raws.iter().enumerate() {
            let j = job(i as u64, r.runtime, r.runtime * r.est_factor, r.procs, r.deadline);
            total_work += r.runtime * f64::from(r.procs);
            let nodes: Vec<NodeId> = (0..r.procs).map(NodeId).collect();
            engine.admit(j, nodes, SimTime::ZERO);
        }
        let mut finishes = Vec::new();
        let mut guard = 0;
        while let Some(t) = engine.next_event_time() {
            for done in engine.advance(t) {
                // A job can never finish before its full-speed runtime.
                prop_assert!(
                    (done.finish - done.started).as_secs() >= done.job.runtime.as_secs() - 1e-3
                );
                finishes.push(done);
            }
            guard += 1;
            prop_assert!(guard < 200_000, "engine failed to converge");
        }
        prop_assert!(engine.is_empty());
        prop_assert_eq!(finishes.len(), raws.len());
        // Work conservation: delivered work equals the sum of runtimes
        // (scaled by gang width), measured through the utilisation
        // integral.
        let makespan = engine.now().as_secs();
        let delivered = engine.utilization() * makespan * 4.0;
        prop_assert!(
            (delivered - total_work).abs() < 1e-3 * total_work.max(1.0) + 1e-3,
            "delivered {delivered} vs submitted {total_work}"
        );
        prop_assert!(engine.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn projection_outputs_are_sane(
        jobs in proptest::collection::vec((1.0..10_000.0f64, -5_000.0..50_000.0f64), 1..20),
        now in 0.0..1_000.0f64,
        disc in discipline(),
    ) {
        let pjs: Vec<ProjectedJob> = jobs
            .iter()
            .map(|&(est, dl)| ProjectedJob { remaining_est: est, abs_deadline: dl })
            .collect();
        let finishes = project_finishes(&pjs, now, 1.0, disc);
        prop_assert_eq!(finishes.len(), pjs.len());
        for &f in &finishes {
            prop_assert!(f.is_finite());
            prop_assert!(f >= now - 1e-9, "finish {f} before now {now}");
        }
        // Unit capacity: the last projected finish cannot beat the total
        // estimated work.
        let total: f64 = pjs.iter().map(|p| p.remaining_est).sum();
        let last = finishes.iter().cloned().fold(0.0, f64::max);
        prop_assert!(last - now >= total - 1e-6 * total.max(1.0) - 1e-6,
            "last {last} now {now} total {total}");

        let (mu, sigma) = node_risk(&pjs, now, 1.0, disc);
        prop_assert!(mu >= 1.0 - 1e-9, "mu {mu} below the metric's minimum");
        prop_assert!(sigma >= 0.0);
        prop_assert!(mu.is_finite() && sigma.is_finite());
    }

    #[test]
    fn zero_risk_iff_all_deadline_delays_equal(
        ests in proptest::collection::vec(10.0..1_000.0f64, 1..8),
    ) {
        // All jobs share one deadline far in the future → all meet it →
        // dd all 1 → zero risk.
        let pjs: Vec<ProjectedJob> = ests
            .iter()
            .map(|&e| ProjectedJob { remaining_est: e, abs_deadline: 1e9 })
            .collect();
        let (mu, sigma) = node_risk(&pjs, 0.0, 1.0, ShareDiscipline::WorkConserving);
        prop_assert!((mu - 1.0).abs() < 1e-9);
        prop_assert!(projection::is_zero_risk(sigma));
    }

    #[test]
    fn heap_next_event_time_equals_full_scan(
        raws in proptest::collection::vec(raw_job(), 1..16),
        gaps in proptest::collection::vec(0.0..1.5f64, 1..16),
        disc in discipline(),
    ) {
        // Differential: the lazy-heap `next_event_time` must be bitwise
        // identical to the retired full scan after every admit and every
        // advance of a randomized interleaving — including advances to
        // fractions of the event gap (mid-segment wakes) and advances
        // exactly onto events (completions, overrun re-arms).
        let cfg = ProportionalConfig { discipline: disc, ..Default::default() };
        let mut engine = ProportionalCluster::new(Cluster::homogeneous(4, 168.0), cfg);
        let check = |e: &ProportionalCluster, ctx: &str| {
            assert_eq!(
                e.next_event_time().map(|t| t.as_secs().to_bits()),
                e.next_event_time_scan().map(|t| t.as_secs().to_bits()),
                "heap vs scan diverged {ctx}"
            );
        };
        for (id, (r, gap)) in raws.iter().zip(&gaps).enumerate() {
            let now = engine.now();
            let mut j = job(id as u64, r.runtime, r.runtime * r.est_factor, r.procs, r.deadline);
            j.submit = now;
            let nodes: Vec<NodeId> = (0..r.procs).map(NodeId).collect();
            engine.admit(j, nodes, now);
            check(&engine, "after admit");
            // Advance a random fraction of the proposed gap (0 → no-op
            // advance, 1 lands exactly on the event so completions and
            // overrun re-arms are exercised too).
            if let Some(next) = engine.next_event_time() {
                let dt = (next - now).as_secs() * gap.min(1.0);
                engine.advance(now + SimDuration::from_secs(dt));
                check(&engine, "after advance");
            }
        }
        // Drain to idle, checking at every event.
        let mut guard = 0;
        while let Some(t) = engine.next_event_time() {
            check(&engine, "while draining");
            engine.advance(t);
            guard += 1;
            prop_assert!(guard < 200_000, "engine failed to converge");
        }
        prop_assert!(engine.next_event_time_scan().is_none());
    }

    #[test]
    fn workspace_projection_is_bitwise_identical(
        jobs in proptest::collection::vec((1.0..10_000.0f64, -5_000.0..50_000.0f64), 0..20),
        now in 0.0..1_000.0f64,
        speed in 0.5..4.0f64,
        disc in discipline(),
    ) {
        // Differential: the zero-allocation workspace kernel against the
        // allocating entry points, over arbitrary job mixes. Both the
        // projected finishes and the (μ, σ) pair must match bitwise.
        let pjs: Vec<ProjectedJob> = jobs
            .iter()
            .map(|&(est, dl)| ProjectedJob { remaining_est: est, abs_deadline: dl })
            .collect();
        let mut ws = projection::ProjectionWorkspace::new();
        let mut out = Vec::new();
        // Run twice through the same workspace: the second pass exercises
        // warm (dirty) buffers.
        for pass in 0..2 {
            let want = project_finishes(&pjs, now, speed, disc);
            ws.project_finishes_into(&pjs, now, speed, disc, &mut out);
            prop_assert_eq!(
                want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "finishes diverged on pass {}", pass
            );
            let (mu_a, sigma_a) = node_risk(&pjs, now, speed, disc);
            let (mu_b, sigma_b) = ws.node_risk_with(&pjs, now, speed, disc);
            prop_assert_eq!(mu_a.to_bits(), mu_b.to_bits(), "mu diverged on pass {}", pass);
            prop_assert_eq!(sigma_a.to_bits(), sigma_b.to_bits(), "sigma diverged on pass {}", pass);
        }
    }

    #[test]
    fn share_index_is_bitwise_identical_to_direct_totals(
        raws in proptest::collection::vec(raw_job(), 1..16),
        gaps in proptest::collection::vec(0.0..1.5f64, 1..16),
        disc in discipline(),
    ) {
        // Differential: the lazily maintained share-ordered index must
        // agree bitwise with `node_total_share(node, None)` for every
        // node, stay sorted, and cover every node exactly once — after
        // every admit and every advance of a randomized interleaving.
        let nodes = 4u32;
        let cfg = ProportionalConfig { discipline: disc, ..Default::default() };
        let mut engine = ProportionalCluster::new(Cluster::homogeneous(nodes as usize, 168.0), cfg);
        let check = |e: &ProportionalCluster, ctx: &str| {
            e.with_share_index(|entries| {
                assert_eq!(entries.len(), nodes as usize, "missing nodes {ctx}");
                let mut seen: Vec<u32> = entries.iter().map(|s| s.node.0).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..nodes).collect::<Vec<_>>(), "node set wrong {ctx}");
                for w in entries.windows(2) {
                    assert!(
                        (w[0].base_share, w[0].node) <= (w[1].base_share, w[1].node),
                        "index unsorted {ctx}: {w:?}"
                    );
                }
                for s in entries {
                    assert_eq!(
                        s.base_share.to_bits(),
                        e.node_total_share(s.node, None).to_bits(),
                        "stale share for {:?} {ctx}",
                        s.node
                    );
                }
            });
        };
        check(&engine, "on an idle engine");
        for (id, (r, gap)) in raws.iter().zip(&gaps).enumerate() {
            let now = engine.now();
            let mut j = job(id as u64, r.runtime, r.runtime * r.est_factor, r.procs, r.deadline);
            j.submit = now;
            let alloc: Vec<NodeId> = (0..r.procs).map(NodeId).collect();
            engine.admit(j, alloc, now);
            check(&engine, "after admit");
            if let Some(next) = engine.next_event_time() {
                let dt = (next - now).as_secs() * gap.min(1.0);
                engine.advance(now + SimDuration::from_secs(dt));
                check(&engine, "after advance");
            }
        }
        let mut guard = 0;
        while let Some(t) = engine.next_event_time() {
            engine.advance(t);
            check(&engine, "while draining");
            guard += 1;
            prop_assert!(guard < 200_000, "engine failed to converge");
        }
    }

    #[test]
    fn space_shared_never_overcommits(
        widths in proptest::collection::vec(1u32..5, 1..20),
    ) {
        let total = 8usize;
        let mut pool = SpaceSharedCluster::new(Cluster::homogeneous(total, 168.0));
        let mut running: Vec<(JobId, SimTime)> = Vec::new();
        let mut clock = SimTime::ZERO;
        for (i, &w) in widths.iter().enumerate() {
            let j = job(i as u64, 100.0, 100.0, w, 1e6);
            if pool.can_start(&j) {
                let fin = pool.start(j, clock);
                running.push((JobId(i as u64), fin));
                prop_assert!(pool.free_procs() <= total);
            } else {
                // Free the earliest-finishing job and retry once.
                running.sort_by_key(|(_, f)| *f);
                if let Some((id, fin)) = running.first().cloned() {
                    clock = fin;
                    pool.complete(id, fin);
                    running.remove(0);
                }
                let j = job(i as u64, 100.0, 100.0, w, 1e6);
                if pool.can_start(&j) {
                    let fin = pool.start(j, clock);
                    running.push((JobId(i as u64), fin));
                }
            }
            let busy: usize = total - pool.free_procs();
            prop_assert!(busy <= total);
        }
    }
}

#[test]
fn projection_matches_engine_for_feasible_accurate_jobs() {
    // When estimates are exact and the node is feasible, the engine's
    // actual finishes must equal the projection's predictions.
    let cfg = ProportionalConfig {
        discipline: ShareDiscipline::Strict,
        max_quantum: None,
        ..Default::default()
    };
    let mut engine = ProportionalCluster::new(Cluster::homogeneous(1, 168.0), cfg);
    let specs = [(100.0, 400.0), (50.0, 1_000.0), (20.0, 2_000.0)];
    let mut pjs = Vec::new();
    for (i, &(rt, dl)) in specs.iter().enumerate() {
        engine.admit(job(i as u64, rt, rt, 1, dl), vec![NodeId(0)], SimTime::ZERO);
        pjs.push(ProjectedJob {
            remaining_est: rt,
            abs_deadline: dl,
        });
    }
    let predicted = project_finishes(&pjs, 0.0, 1.0, ShareDiscipline::Strict);
    let mut actual = vec![0.0; specs.len()];
    while let Some(t) = engine.next_event_time() {
        for done in engine.advance(t) {
            actual[done.job.id.0 as usize] = done.finish.as_secs();
        }
    }
    for (p, a) in predicted.iter().zip(&actual) {
        assert!((p - a).abs() < 1e-3, "projected {p} vs actual {a}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn same_instant_advance_batches_are_bitwise_inert(
        raws in proptest::collection::vec(raw_job(), 1..14),
        gaps in proptest::collection::vec(0.0..1.5f64, 1..14),
        repeats in proptest::collection::vec(0usize..4, 1..14),
        disc in discipline(),
    ) {
        // Differential: an engine that receives *batches* of advances at
        // identical timestamps (zero-dt re-advances after every real
        // step, as same-instant event clusters in the driver produce)
        // must stay bitwise identical to a twin that advances exactly
        // once per distinct instant through the single-step reference
        // path. Zero-dt calls must neither complete anything, nor move
        // any rate, nor disturb the next event time.
        let cfg = ProportionalConfig { discipline: disc, ..Default::default() };
        let mut batched = ProportionalCluster::new(Cluster::homogeneous(4, 168.0), cfg);
        let mut single = ProportionalCluster::new(Cluster::homogeneous(4, 168.0), cfg);
        let mut buf = Vec::new();
        let ids: Vec<u64> = (0..raws.len() as u64).collect();
        let check = |b: &ProportionalCluster, s: &ProportionalCluster, ids: &[u64], ctx: &str| {
            assert_eq!(
                b.next_event_time().map(|t| t.as_secs().to_bits()),
                s.next_event_time_scan().map(|t| t.as_secs().to_bits()),
                "next event diverged {ctx}"
            );
            for &id in ids {
                let id = workload::JobId(id);
                assert_eq!(
                    b.rate_of(id).map(f64::to_bits),
                    s.rate_of(id).map(f64::to_bits),
                    "rate of {id} diverged {ctx}"
                );
                assert_eq!(
                    b.remaining_est_of(id).map(f64::to_bits),
                    s.remaining_est_of(id).map(f64::to_bits),
                    "remaining_est of {id} diverged {ctx}"
                );
            }
            assert_eq!(
                b.utilization().to_bits(),
                s.utilization().to_bits(),
                "utilization diverged {ctx}"
            );
        };
        for (i, (r, gap)) in raws.iter().zip(&gaps).enumerate() {
            let now = batched.now();
            let mut j = job(ids[i], r.runtime, r.runtime * r.est_factor, r.procs, r.deadline);
            j.submit = now;
            let nodes: Vec<NodeId> = (0..r.procs).map(NodeId).collect();
            batched.admit(j.clone(), nodes.clone(), now);
            single.admit(j, nodes, now);
            check(&batched, &single, &ids, "after admit");
            if let Some(next) = batched.next_event_time() {
                let dt = (next - now).as_secs() * gap.min(1.0);
                let to = now + SimDuration::from_secs(dt);
                batched.advance_into(to, &mut buf);
                let batched_done: Vec<(u64, u64)> = buf
                    .iter()
                    .map(|d| (d.job.id.0, d.finish.as_secs().to_bits()))
                    .collect();
                // Zero-dt re-advances to the *same* instant: each must be
                // a bitwise no-op and complete nothing.
                for _ in 0..repeats[i % repeats.len()] {
                    batched.advance_into(to, &mut buf);
                    prop_assert!(buf.is_empty(), "zero-dt advance completed a job");
                }
                let single_done: Vec<(u64, u64)> = single
                    .advance_reference(to)
                    .iter()
                    .map(|d| (d.job.id.0, d.finish.as_secs().to_bits()))
                    .collect();
                prop_assert_eq!(batched_done, single_done, "completions diverged");
                check(&batched, &single, &ids, "after same-instant batch");
            }
        }
        // Drain both to idle through their respective paths, with a
        // zero-dt echo after every batched step.
        let mut guard = 0;
        while let Some(t) = batched.next_event_time() {
            batched.advance_into(t, &mut buf);
            let batched_done: Vec<(u64, u64)> = buf
                .iter()
                .map(|d| (d.job.id.0, d.finish.as_secs().to_bits()))
                .collect();
            batched.advance_into(t, &mut buf);
            prop_assert!(buf.is_empty(), "zero-dt drain advance completed a job");
            let single_done: Vec<(u64, u64)> = single
                .advance_reference(t)
                .iter()
                .map(|d| (d.job.id.0, d.finish.as_secs().to_bits()))
                .collect();
            prop_assert_eq!(batched_done, single_done, "drain completions diverged");
            check(&batched, &single, &ids, "while draining");
            guard += 1;
            prop_assert!(guard < 200_000, "engines failed to converge");
        }
        prop_assert!(single.next_event_time_scan().is_none());
    }
}
