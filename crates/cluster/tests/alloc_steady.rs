//! Steady-state allocation audit: once its scratch buffers are warm, the
//! proportional engine's advance path must not touch the heap at all —
//! no per-event worklists, no per-recompute totals, no completion-buffer
//! churn. A counting global allocator makes the claim checkable instead
//! of asserted in comments. One test per binary: the allocator is
//! process-global, so this file intentionally holds a single `#[test]`.

use cluster::proportional::{CompletedJob, ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, NodeId};
use sim::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use workload::{Job, JobId, Urgency};

/// `System`, with every allocation and reallocation counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn job(id: u64, runtime: f64, estimate: f64, deadline: f64) -> Job {
    Job {
        id: JobId(id),
        submit: SimTime::ZERO,
        runtime: SimDuration::from_secs(runtime),
        estimate: SimDuration::from_secs(estimate),
        procs: 1,
        deadline: SimDuration::from_secs(deadline),
        urgency: Urgency::Low,
    }
}

#[test]
fn steady_state_advance_allocates_nothing() {
    // An event-heavy load: staggered runtimes and deadlines, a third of
    // the jobs under-estimating so overrun re-arms fire mid-drain.
    let mut engine = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let nodes = engine.cluster().len();
    for i in 0..256usize {
        let runtime = 300.0 + (i as f64 * 7.919) % 700.0;
        let est_factor = [0.5, 1.0, 2.0][i % 3];
        let deadline = 2_000.0 + (i as f64 * 13.37) % 6_000.0;
        let mut j = job(i as u64, runtime, (runtime * est_factor).max(1.0), deadline);
        j.runtime = SimDuration::from_secs(runtime);
        engine.admit(j, vec![NodeId((i % nodes) as u32)], SimTime::ZERO);
    }
    // Warm-up: drain half the events. This sizes every engine-owned
    // scratch buffer (completion worklist, totals, caller buffer) and
    // exercises slot releases so `free_slots` has capacity.
    let mut buf: Vec<CompletedJob> = Vec::with_capacity(64);
    let mut warmed = 0usize;
    while warmed < 400 {
        let Some(t) = engine.next_event_time() else {
            panic!("engine drained during warm-up; grow the job set");
        };
        engine.advance_into(t, &mut buf);
        warmed += 1;
    }
    assert!(!engine.is_empty(), "warm-up drained the engine");
    // Measured window: a long steady-state stretch of event advances,
    // including completions, overrun re-arms and rate recomputes. Only
    // the advances are counted; completed jobs are replaced by fresh
    // (uncounted) admissions so residency — and with it the slot arena —
    // stays in its steady regime, exactly like the driver's loop.
    let mut advance_allocs = 0u64;
    let mut measured = 0usize;
    let mut next_id = 10_000u64;
    while measured < 400 {
        let Some(t) = engine.next_event_time() else {
            break;
        };
        let before = ALLOCS.load(Ordering::Relaxed);
        engine.advance_into(t, &mut buf);
        advance_allocs += ALLOCS.load(Ordering::Relaxed) - before;
        measured += 1;
        for done in buf.iter() {
            let i = next_id as usize;
            let runtime = 300.0 + (i as f64 * 7.919) % 700.0;
            let est_factor = [0.5, 1.0, 2.0][i % 3];
            let deadline = 2_000.0 + (i as f64 * 13.37) % 6_000.0;
            let mut j = job(next_id, runtime, (runtime * est_factor).max(1.0), deadline);
            j.submit = engine.now();
            j.runtime = SimDuration::from_secs(runtime);
            let target = NodeId((done.job.id.0 % nodes as u64) as u32);
            engine.admit(j, vec![target], engine.now());
            next_id += 1;
        }
    }
    assert!(measured > 100, "too few measured advances ({measured})");
    assert_eq!(
        advance_allocs, 0,
        "steady-state advance allocated {advance_allocs} times over {measured} advances"
    );
}
