//! Property-based invariants of the statistics toolkit.

use metrics::{percentile, OnlineStats, Series, Summary, Table};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn welford_matches_naive_two_pass(xs in samples()) {
        let s = OnlineStats::from_slice(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance_population() - var).abs() < 1e-5 * var.max(1.0));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn merge_is_order_independent(xs in samples(), split in 0usize..200) {
        let cut = split.min(xs.len());
        let (a, b) = xs.split_at(cut);
        let sa = OnlineStats::from_slice(a);
        let sb = OnlineStats::from_slice(b);
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9 * ab.mean().abs().max(1.0));
        prop_assert!(
            (ab.variance_sample() - ba.variance_sample()).abs()
                < 1e-6 * ab.variance_sample().max(1.0)
        );
    }

    #[test]
    fn quantiles_are_bounded_and_monotone(xs in samples(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = percentile::quantile(&xs, lo).unwrap();
        let b = percentile::quantile(&xs, hi).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && a <= max + 1e-9);
        prop_assert!(a <= b + 1e-9, "quantiles must be monotone: {a} > {b}");
    }

    #[test]
    fn summary_is_internally_consistent(xs in samples()) {
        let s = Summary::compute(&xs).unwrap();
        prop_assert!(s.min() <= s.q1() + 1e-9);
        prop_assert!(s.q1() <= s.median() + 1e-9);
        prop_assert!(s.median() <= s.q3() + 1e-9);
        prop_assert!(s.q3() <= s.max() + 1e-9);
        prop_assert!(s.iqr() >= -1e-9);
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn series_mean_matches_observation_mean(ys in proptest::collection::vec(-100.0..100.0f64, 1..50)) {
        let mut s = Series::new("p");
        for &y in &ys {
            s.observe(1.0, y);
        }
        let expected = ys.iter().sum::<f64>() / ys.len() as f64;
        let got = s.y_at(1.0).unwrap();
        prop_assert!((got - expected).abs() < 1e-9 * expected.abs().max(1.0));
    }

    #[test]
    fn csv_always_has_header_plus_one_line_per_row(
        rows in proptest::collection::vec((any::<i32>(), "[a-z,\"\n]{0,12}"), 0..20)
    ) {
        let mut t = Table::new("t", &["a", "b"]);
        for (x, s) in &rows {
            t.push_row(vec![x.to_string(), s.clone()]);
        }
        let csv = t.to_csv();
        // RFC 4180 quoting means embedded newlines stay inside quotes; a
        // conforming reader sees exactly rows+1 records. We count records
        // by scanning quote state.
        let mut records = 0;
        let mut in_quotes = false;
        for c in csv.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                '\n' if !in_quotes => records += 1,
                _ => {}
            }
        }
        prop_assert_eq!(records, rows.len() + 1);
    }
}
