//! Standalone SVG line charts — real figure files for the paper's plots,
//! generated with no external dependencies.
//!
//! The output is deliberately minimal, deterministic SVG 1.1: axes, tick
//! labels, one polyline + marker set per series, and a legend. Colours
//! come from a fixed colour-blind-safe palette (Okabe–Ito).

use crate::series::Series;
use std::fmt::Write as _;

/// Okabe–Ito colour-blind-safe palette.
const PALETTE: [&str; 8] = [
    "#0072B2", // blue
    "#D55E00", // vermillion
    "#009E73", // bluish green
    "#CC79A7", // reddish purple
    "#E69F00", // orange
    "#56B4E9", // sky blue
    "#F0E442", // yellow
    "#000000", // black
];

/// Marker shapes cycled alongside the palette.
#[derive(Clone, Copy)]
enum Marker {
    Circle,
    Square,
    Diamond,
    TriangleUp,
}

const MARKERS: [Marker; 4] = [
    Marker::Circle,
    Marker::Square,
    Marker::Diamond,
    Marker::TriangleUp,
];

/// Chart geometry and labelling options.
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Force the y-axis to start at zero.
    pub zero_based: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 560,
            height: 400,
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            zero_based: true,
        }
    }
}

fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    let span = (max - min).max(1e-12);
    let raw_step = span / target.max(1) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= max + 1e-9 * span {
        // Avoid -0.0 labels.
        ticks.push(if t.abs() < 1e-12 { 0.0 } else { t });
        t += step;
    }
    ticks
}

fn fmt_tick(x: f64) -> String {
    if x.abs() >= 1000.0 || (x - x.round()).abs() < 1e-9 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

fn marker_svg(m: Marker, x: f64, y: f64, color: &str) -> String {
    match m {
        Marker::Circle => format!(r#"<circle cx="{x:.1}" cy="{y:.1}" r="3.5" fill="{color}"/>"#),
        Marker::Square => format!(
            r#"<rect x="{:.1}" y="{:.1}" width="7" height="7" fill="{color}"/>"#,
            x - 3.5,
            y - 3.5
        ),
        Marker::Diamond => format!(
            r#"<path d="M {x:.1} {:.1} L {:.1} {y:.1} L {x:.1} {:.1} L {:.1} {y:.1} Z" fill="{color}"/>"#,
            y - 4.5,
            x + 4.5,
            y + 4.5,
            x - 4.5
        ),
        Marker::TriangleUp => format!(
            r#"<path d="M {x:.1} {:.1} L {:.1} {:.1} L {:.1} {:.1} Z" fill="{color}"/>"#,
            y - 4.5,
            x + 4.0,
            y + 3.5,
            x - 4.0,
            y + 3.5
        ),
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the series as a standalone SVG document.
///
/// Returns a placeholder document when no series has data.
pub fn render(series: &[&Series], opts: &SvgOptions) -> String {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let (ml, mr, mt, mb) = (64.0, 16.0, 40.0, 78.0);
    let plot_w = w - ml - mr;
    let plot_h = h - mt - mb;

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in series {
        for (x, y) in s.mean_points() {
            xs.push(x);
            ys.push(y);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}" font-family="Helvetica, Arial, sans-serif">"#,
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    if xs.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{:.0}" y="{:.0}" text-anchor="middle">no data</text></svg>"#,
            w / 2.0,
            h / 2.0
        );
        return out;
    }

    let fmin = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let fmax = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let (x_min, x_max) = (fmin(&xs), fmax(&xs));
    let (mut y_min, mut y_max) = (fmin(&ys), fmax(&ys));
    if opts.zero_based {
        y_min = y_min.min(0.0);
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    // A little headroom above the data.
    y_max += (y_max - y_min) * 0.05;
    let x_span = if (x_max - x_min).abs() < 1e-12 {
        1.0
    } else {
        x_max - x_min
    };
    let px = |x: f64| ml + (x - x_min) / x_span * plot_w;
    let py = |y: f64| mt + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

    // Title and axis labels.
    if !opts.title.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{:.0}" y="22" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
            w / 2.0,
            escape(&opts.title)
        );
    }
    if !opts.x_label.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{:.0}" y="{:.0}" text-anchor="middle" font-size="12">{}</text>"#,
            ml + plot_w / 2.0,
            h - mb + 36.0,
            escape(&opts.x_label)
        );
    }
    if !opts.y_label.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="14" y="{:.0}" text-anchor="middle" font-size="12" transform="rotate(-90 14 {:.0})">{}</text>"#,
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            escape(&opts.y_label)
        );
    }

    // Gridlines and ticks.
    for t in nice_ticks(y_min, y_max, 6) {
        let y = py(t);
        let _ = writeln!(
            out,
            r##"<line x1="{ml:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd" stroke-width="1"/>"##,
            ml + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"#,
            ml - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for t in nice_ticks(x_min, x_max, 8) {
        let x = px(t);
        let _ = writeln!(
            out,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#eeeeee" stroke-width="1"/>"##,
            mt,
            mt + plot_h
        );
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
            mt + plot_h + 16.0,
            fmt_tick(t)
        );
    }
    // Axes.
    let _ = writeln!(
        out,
        r##"<rect x="{ml:.1}" y="{mt:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333333" stroke-width="1"/>"##
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let marker = MARKERS[i % MARKERS.len()];
        let pts = s.mean_points();
        if pts.is_empty() {
            continue;
        }
        let path: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = writeln!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        );
        for &(x, y) in &pts {
            let _ = writeln!(out, "{}", marker_svg(marker, px(x), py(y), color));
        }
    }

    // Legend along the bottom.
    let mut lx = ml;
    let ly = h - 14.0;
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let _ = writeln!(
            out,
            "{}",
            marker_svg(MARKERS[i % MARKERS.len()], lx + 5.0, ly - 4.0, color)
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{ly:.1}" font-size="12">{}</text>"#,
            lx + 14.0,
            escape(s.name())
        );
        lx += 18.0 + 7.5 * s.name().len() as f64 + 14.0;
    }

    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(name);
        for &(x, y) in pts {
            s.observe(x, y);
        }
        s
    }

    #[test]
    fn renders_valid_looking_svg() {
        let a = series("LibraRisk", &[(0.1, 25.9), (0.5, 61.2), (1.0, 75.0)]);
        let b = series("Libra", &[(0.1, 23.3), (0.5, 49.1), (1.0, 56.6)]);
        let svg = render(
            &[&a, &b],
            &SvgOptions {
                title: "Figure 1 (b)".into(),
                x_label: "Arrival Delay Factor".into(),
                y_label: "% fulfilled".into(),
                ..Default::default()
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("Figure 1 (b)"));
        assert!(svg.contains("LibraRisk"));
        assert!(svg.contains("polyline"));
        // Two series → two polylines.
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Balanced tags (cheap well-formedness check).
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn empty_input_yields_placeholder() {
        let empty = Series::new("none");
        let svg = render(&[&empty], &SvgOptions::default());
        assert!(svg.contains("no data"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let a = series("a<b&c", &[(0.0, 1.0)]);
        let svg = render(
            &[&a],
            &SvgOptions {
                title: "x < y".into(),
                ..Default::default()
            },
        );
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(svg.contains("x &lt; y"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn nice_ticks_are_round_and_cover_range() {
        let ticks = nice_ticks(0.0, 100.0, 6);
        assert!(ticks.contains(&0.0) && ticks.contains(&100.0));
        for w in ticks.windows(2) {
            assert!(
                (w[1] - w[0] - 20.0).abs() < 1e-9,
                "step 20 expected: {ticks:?}"
            );
        }
        let small = nice_ticks(0.1, 1.0, 8);
        assert!(small.len() >= 4);
        assert!(small
            .iter()
            .all(|&t| (0.1 - 1e-9..=1.0 + 1e-9).contains(&t)));
    }

    #[test]
    fn zero_based_extends_axis_down_to_zero() {
        let a = series("p", &[(0.0, 50.0), (1.0, 80.0)]);
        let with = render(
            &[&a],
            &SvgOptions {
                zero_based: true,
                ..Default::default()
            },
        );
        let without = render(
            &[&a],
            &SvgOptions {
                zero_based: false,
                ..Default::default()
            },
        );
        // Both label x-tick 0, but only the zero-based variant also has a
        // y-tick at 0 — so it carries strictly more "0" tick labels.
        let zeros = |svg: &str| svg.matches(">0<").count();
        assert!(
            zeros(&with) > zeros(&without),
            "{} vs {}",
            zeros(&with),
            zeros(&without)
        );
    }
}
