//! Welford's online mean/variance with O(1) merge, plus the [`Tally`]
//! hit counter used by streaming report sinks.

/// Single-pass, numerically stable accumulator for mean and variance.
///
/// Supports merging two accumulators (Chan et al.), which lets parallel
/// sweep workers aggregate without sharing state.
///
/// ```
/// use metrics::OnlineStats;
/// let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.stddev_population(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// `true` if no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean, or 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`), or 0 when `n < 1`.
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Sample variance (divides by `n - 1`), or 0 when `n < 2`.
    pub fn variance_sample(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    ///
    /// This is the paper's risk-of-deadline-delay estimator (Eq. 6 divides
    /// by `n_j`, i.e. the population form).
    pub fn stddev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Sample standard deviation.
    pub fn stddev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the ~95% normal-approximation confidence interval for
    /// the mean (1.96·s/√n). Returns 0 when `n < 2`.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev_sample() / (self.n as f64).sqrt()
        }
    }

    /// Raw accumulator state `(n, mean, m2, min, max)`, for serializers
    /// that must round-trip the accumulator bit-for-bit.
    pub fn parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::parts`] output.
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// An O(1) hit counter: `hits` out of `total` trials, with the
/// percentage accessor every figure of the paper reports (fulfilled %,
/// acceptance %, per-urgency fulfilment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    total: u64,
    hits: u64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records one trial; `hit` marks it as counting toward the rate.
    pub fn observe(&mut self, hit: bool) {
        self.total += 1;
        self.hits += u64::from(hit);
    }

    /// Number of trials recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hits as a percentage of trials (0 when empty — the convention
    /// `SimulationReport::fulfilled_pct` uses for empty runs).
    pub fn pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.total += other.total;
        self.hits += other.hits;
    }

    /// Rebuilds a tally from raw counts (serializer round-trip).
    pub fn from_parts(total: u64, hits: u64) -> Self {
        Tally { total, hits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts_and_pct() {
        let mut t = Tally::new();
        assert_eq!(t.pct(), 0.0);
        t.observe(true);
        t.observe(false);
        t.observe(true);
        assert_eq!(t.total(), 3);
        assert_eq!(t.hits(), 2);
        assert!((t.pct() - 200.0 / 3.0).abs() < 1e-12);
        let mut u = Tally::new();
        u.observe(false);
        t.merge(&u);
        assert_eq!(t.total(), 4);
        assert_eq!(t.hits(), 2);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance_population(), 0.0);
        assert_eq!(s.stddev_sample(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Known example: population stddev = 2.
        assert!((s.stddev_population() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn single_observation() {
        let s = OnlineStats::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance_population(), 0.0);
        assert_eq!(s.variance_sample(), 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(17);
        let mut left = OnlineStats::from_slice(a);
        let right = OnlineStats::from_slice(b);
        left.merge(&right);
        let all = OnlineStats::from_slice(&xs);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance_sample() - all.variance_sample()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_never_negative_under_cancellation() {
        // Large offset stresses catastrophic cancellation; Welford stays >= 0.
        let offset = 1e9;
        let s = OnlineStats::from_slice(&[offset, offset, offset]);
        assert!(s.variance_population() >= 0.0);
        assert!(s.variance_population() < 1e-3);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = OnlineStats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut many = OnlineStats::new();
        for _ in 0..100 {
            for x in [1.0, 2.0, 3.0, 4.0] {
                many.push(x);
            }
        }
        assert!(many.ci95_halfwidth() < small.ci95_halfwidth());
    }
}
