//! Plain-text table emission (markdown and CSV).
//!
//! The experiment harness prints every figure/table of the paper through
//! this module so the output format is uniform and easy to diff.

use std::fmt::Write as _;

/// A simple rectangular table of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push_display_row<T: std::fmt::Display>(&mut self, row: &[T]) {
        self.push_row(row.iter().map(|c| c.to_string()).collect());
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a GitHub-flavoured markdown table (column-aligned).
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}", self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (RFC 4180 quoting for cells containing `,`/`"`/newline).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with a fixed number of decimals, trimming `-0.00` to
/// `0.00`.
pub fn fmt_f(x: f64, decimals: usize) -> String {
    let s = format!("{x:.decimals$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new("Demo", &["policy", "fulfilled %"]);
        t.push_row(vec!["EDF".into(), "61.2".into()]);
        t.push_row(vec!["LibraRisk".into(), "73.4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| policy    | fulfilled % |"));
        assert!(md.contains("| LibraRisk | 73.4        |"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f_cleans_negative_zero() {
        assert_eq!(fmt_f(-0.0001, 2), "0.00");
        assert_eq!(fmt_f(1.2345, 2), "1.23");
        assert_eq!(fmt_f(-1.5, 1), "-1.5");
    }

    #[test]
    fn display_row_helper() {
        let mut t = Table::new("", &["x", "y"]);
        t.push_display_row(&[1.5, 2.5]);
        assert_eq!(t.row_count(), 1);
        assert!(t.to_csv().contains("1.5,2.5"));
    }
}
