//! Named `x → y` curves with per-point spread, the unit a figure is built
//! from.

use crate::online::OnlineStats;

/// One curve of a figure: a policy name plus `(x, y ± spread)` points.
///
/// Each point aggregates the metric across seeds/repetitions via
/// [`OnlineStats`], so the harness can report a mean and a 95% CI.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    points: Vec<(f64, OnlineStats)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The curve's name (policy label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an observation of the metric at abscissa `x`.
    ///
    /// Points are matched on exact `x` bit-pattern; sweep drivers use the
    /// same `f64` grid everywhere so this is exact.
    pub fn observe(&mut self, x: f64, y: f64) {
        if let Some((_, stats)) = self.points.iter_mut().find(|(px, _)| *px == x) {
            stats.push(y);
        } else {
            let mut stats = OnlineStats::new();
            stats.push(y);
            self.points.push((x, stats));
            self.points
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN abscissa"));
        }
    }

    /// Merges all points of `other` into this series.
    pub fn merge(&mut self, other: &Series) {
        for (x, stats) in &other.points {
            if let Some((_, mine)) = self.points.iter_mut().find(|(px, _)| px == x) {
                mine.merge(stats);
            } else {
                self.points.push((*x, *stats));
            }
        }
        self.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN abscissa"));
    }

    /// `(x, mean y)` pairs in ascending `x`.
    pub fn mean_points(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|(x, s)| (*x, s.mean())).collect()
    }

    /// `(x, mean, ci95 half-width)` triples in ascending `x`.
    pub fn ci_points(&self) -> Vec<(f64, f64, f64)> {
        self.points
            .iter()
            .map(|(x, s)| (*x, s.mean(), s.ci95_halfwidth()))
            .collect()
    }

    /// Number of distinct abscissae.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points have been observed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean y at a given x, if observed.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| *px == x)
            .map(|(_, s)| s.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_aggregate_per_x() {
        let mut s = Series::new("LibraRisk");
        s.observe(0.5, 10.0);
        s.observe(0.5, 20.0);
        s.observe(0.1, 5.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_at(0.5), Some(15.0));
        assert_eq!(s.y_at(0.1), Some(5.0));
        assert_eq!(s.y_at(0.9), None);
        // Sorted ascending by x.
        let xs: Vec<f64> = s.mean_points().iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![0.1, 0.5]);
    }

    #[test]
    fn merge_combines_matching_points() {
        let mut a = Series::new("p");
        a.observe(1.0, 2.0);
        let mut b = Series::new("p");
        b.observe(1.0, 4.0);
        b.observe(2.0, 9.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.y_at(1.0), Some(3.0));
        assert_eq!(a.y_at(2.0), Some(9.0));
    }

    #[test]
    fn ci_points_include_halfwidth() {
        let mut s = Series::new("p");
        for y in [1.0, 2.0, 3.0, 4.0] {
            s.observe(0.0, y);
        }
        let pts = s.ci_points();
        assert_eq!(pts.len(), 1);
        let (x, mean, hw) = pts[0];
        assert_eq!(x, 0.0);
        assert_eq!(mean, 2.5);
        assert!(hw > 0.0);
    }
}
