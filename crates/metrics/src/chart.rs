//! Plain-text line charts, so the experiment harness can show the
//! *shape* of each figure directly in the terminal next to its table.

use crate::series::Series;
use std::fmt::Write as _;

/// Glyphs assigned to successive series.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders several series into one fixed-size ASCII chart.
///
/// The y-range is `[0, max]` when `zero_based` (natural for percentages)
/// or `[min, max]` otherwise; points are plotted per series with a
/// distinct glyph, later series overwrite earlier ones on collisions, and
/// a legend follows the axes.
pub fn render(
    title: &str,
    x_label: &str,
    series: &[&Series],
    width: usize,
    height: usize,
    zero_based: bool,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to be useful");
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for (x, y) in s.mean_points() {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let fmin = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let fmax = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let (x_min, x_max) = (fmin(&xs), fmax(&xs));
    let (mut y_min, mut y_max) = (fmin(&ys), fmax(&ys));
    if zero_based {
        y_min = 0.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let x_span = if (x_max - x_min).abs() < 1e-12 {
        1.0
    } else {
        x_max - x_min
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in s.mean_points() {
            let cx = ((x - x_min) / x_span * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (r, row) in grid.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_val:>8.1} |{line}");
    }
    let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>8}  {:<w$.1}{:>r$.1}  ({x_label})",
        "",
        x_min,
        x_max,
        w = width / 2,
        r = width - width / 2
    );
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.name()))
        .collect();
    let _ = writeln!(out, "{:>10}{}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(name);
        for &(x, y) in pts {
            s.observe(x, y);
        }
        s
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let a = series("LibraRisk", &[(0.0, 10.0), (1.0, 90.0)]);
        let b = series("Libra", &[(0.0, 10.0), (1.0, 50.0)]);
        let chart = render("Fig 1 (b)", "delay factor", &[&a, &b], 40, 10, true);
        assert!(chart.contains("Fig 1 (b)"));
        assert!(chart.contains("* LibraRisk"));
        assert!(chart.contains("o Libra"));
        assert!(chart.contains("(delay factor)"));
        // The zero-based axis bottoms out at 0.
        assert!(chart.contains("     0.0 |"));
        // Plot glyphs landed on the canvas.
        assert!(chart.matches('*').count() >= 2);
    }

    #[test]
    fn empty_series_does_not_panic() {
        let a = Series::new("empty");
        let chart = render("t", "x", &[&a], 40, 8, true);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn constant_series_is_handled() {
        let a = series("flat", &[(0.0, 5.0), (1.0, 5.0)]);
        let chart = render("t", "x", &[&a], 30, 6, false);
        assert!(chart.contains("flat"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_degenerate_canvas() {
        let a = series("a", &[(0.0, 1.0)]);
        render("t", "x", &[&a], 4, 2, true);
    }

    #[test]
    fn high_values_plot_above_low_values() {
        let a = series("a", &[(0.0, 0.0), (1.0, 100.0)]);
        let chart = render("t", "x", &[&a], 20, 10, true);
        let lines: Vec<&str> = chart.lines().collect();
        // First canvas row (y=100) holds the right-hand point, the last
        // canvas row (y=0) holds the left-hand point.
        let first = lines[1];
        let last = lines[10];
        assert!(first.trim_end().ends_with('*'), "{first:?}");
        assert!(last.contains("|*"), "{last:?}");
    }
}
