//! Small-sample exact summaries.

use crate::percentile::quantile_sorted;

/// An exact five-number-plus-mean summary of a batch of samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty batch.
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn compute(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        Some(Summary {
            n,
            mean,
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[n - 1],
        })
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.n
    }
    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.min
    }
    /// First quartile.
    pub fn q1(&self) -> f64 {
        self.q1
    }
    /// Median.
    pub fn median(&self) -> f64 {
        self.median
    }
    /// Third quartile.
    pub fn q3(&self) -> f64 {
        self.q3
    }
    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.max
    }
    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::compute(&[]).is_none());
    }

    #[test]
    fn known_batch() {
        let s = Summary::compute(&[7.0, 1.0, 3.0, 5.0, 9.0]).unwrap();
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.q1(), 3.0);
        assert_eq!(s.q3(), 7.0);
        assert_eq!(s.iqr(), 4.0);
    }

    #[test]
    fn constant_batch_has_zero_iqr() {
        let s = Summary::compute(&[4.0; 10]).unwrap();
        assert_eq!(s.iqr(), 0.0);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), s.max());
    }
}
