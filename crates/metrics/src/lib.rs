//! # `metrics` — streaming statistics and report tables
//!
//! Small self-contained statistics toolkit used by the scheduler and the
//! experiment harness:
//!
//! * [`OnlineStats`] — Welford's single-pass mean/variance (numerically
//!   stable, mergeable across threads/seeds).
//! * [`Summary`] — exact small-sample summaries (quartiles, min/max).
//! * [`series::Series`] — a named `x → y` curve, the unit the figure
//!   harness aggregates.
//! * [`table`] — markdown and CSV emitters so every experiment prints the
//!   same rows the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod online;
pub mod percentile;
pub mod series;
pub mod summary;
pub mod svg;
pub mod table;

pub use online::{OnlineStats, Tally};
pub use series::Series;
pub use summary::Summary;
pub use table::Table;
