//! Exact percentile computation over owned samples.

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of `xs` using linear
/// interpolation between closest ranks (type-7, the R/NumPy default).
///
/// Returns `None` for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    Some(quantile_sorted(&v, q))
}

/// Same as [`quantile`] but assumes `xs` is already sorted ascending.
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    let n = xs.len();
    if n == 1 {
        return xs[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let frac = pos - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    }
}

/// Median (50th percentile), `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile(&[7.0], 1.0), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn extremes_are_min_max() {
        let xs = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(9.0));
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25).unwrap() - 1.75).abs() < 1e-12);
        // numpy.percentile([1,2,3,4,5], 90) == 4.6
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.9).unwrap() - 4.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn q_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }
}
