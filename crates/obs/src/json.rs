//! A minimal recursive-descent JSON parser.
//!
//! Exists so the exporters can be validated round-trip (in tests and
//! the CI smoke step) without pulling a serde stack into an offline
//! workspace. It parses standard JSON into a [`Value`] tree; numbers
//! are `f64`, objects keep insertion order. It is a validator first —
//! performance is a non-goal.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|c| *c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|c| *c as char),
            *pos
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (JSON strings are UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("valid");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse("\"\\u00e9A\"").expect("valid");
        assert_eq!(v.as_str(), Some("\u{e9}A"));
        let raw = parse(r#""éA""#).expect("raw UTF-8 is fine too");
        assert_eq!(raw.as_str(), Some("éA"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }
}
