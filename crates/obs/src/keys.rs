//! The static metric keys and histogram bucket bounds the RMS hooks
//! use — one shared vocabulary so exporters, dashboards and tests
//! never drift apart on spelling.

/// Total admission decisions (accepted + rejected + queued).
pub const DECISIONS: &str = "rms_decisions_total";
/// Decisions that admitted the job immediately.
pub const ACCEPTED: &str = "rms_accepted_total";
/// Decisions that turned the job away at submit.
pub const REJECTED: &str = "rms_rejected_total";
/// Decisions that parked the job in a wait queue.
pub const QUEUED: &str = "rms_queued_total";
/// Jobs that reached a terminal outcome.
pub const RESOLVED: &str = "rms_resolved_total";
/// Completions that met their deadline.
pub const FULFILLED: &str = "rms_fulfilled_total";
/// Completions that missed their deadline.
pub const OVERDUE: &str = "rms_overdue_total";
/// Jobs killed by node failure.
pub const KILLED: &str = "rms_killed_total";
/// Node failures applied from the fault plan.
pub const NODE_DOWN: &str = "rms_node_down_total";
/// Node repairs applied from the fault plan.
pub const NODE_UP: &str = "rms_node_up_total";

/// Projection-kernel executions across all decisions (LibraRisk family).
pub const PROJECTIONS_RUN_TOTAL: &str = "librarisk_projections_run_total";
/// Node evaluations settled *without* running the projection kernel —
/// dominance screen, equivalence-class replay or exact candidate memo.
pub const PROJECTIONS_AVOIDED_TOTAL: &str = "librarisk_projections_avoided_total";
/// Distinct `(load class, speed)` profiles that needed a projection,
/// summed over decisions (divide by [`DECISIONS`] for classes/decision).
pub const DECISION_CLASSES_TOTAL: &str = "librarisk_decision_classes_total";
/// Node evaluations proven zero-risk by the pre-kernel dominance screen.
pub const SCREENED_ZERO_RISK_TOTAL: &str = "librarisk_screened_zero_risk_total";

/// Mean utilization of up capacity so far (gauge).
pub const UTILIZATION: &str = "rms_utilization";
/// Jobs currently resident or queued (gauge).
pub const IN_FLIGHT: &str = "rms_in_flight";

/// Wall-clock decide latency histogram, nanoseconds.
pub const DECIDE_LATENCY: &str = "rms_decide_latency_ns";
/// Bucket bounds for [`DECIDE_LATENCY`].
pub const DECIDE_LATENCY_BOUNDS: &[f64] = &[
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
];

/// Post-decision share-sum distribution (Libra family).
pub const SHARE_DIST: &str = "libra_peak_share_dist";
/// Bucket bounds for [`SHARE_DIST`] — shares live in `[0, 1]`.
pub const SHARE_BOUNDS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Post-decision cluster-risk distribution (LibraRisk family);
/// the measure is a mean delay-to-deadline ratio, 1.0 = on time.
pub const RISK_DIST: &str = "librarisk_cluster_risk_dist";
/// Bucket bounds for [`RISK_DIST`].
pub const RISK_BOUNDS: &[f64] = &[0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0];

/// Bucket bounds for the phase profiler's per-flush duration
/// histograms (`phase_*_ns`), nanoseconds. Spans sub-microsecond lap
/// slivers up to quarter-second stalls (a blocked mailbox send).
pub const PHASE_NS_BOUNDS: &[f64] = &[
    250.0,
    1_000.0,
    5_000.0,
    25_000.0,
    100_000.0,
    500_000.0,
    2_000_000.0,
    10_000_000.0,
    50_000_000.0,
    250_000_000.0,
];

/// Bucket bounds for [`crate::phase::MAILBOX_DEPTH_KEY`] — queued
/// chunks at send time; the router caps mailboxes at 8 chunks, so the
/// overflow bucket should stay empty.
pub const MAILBOX_DEPTH_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0];

/// Last-observed mailbox depth at send time (gauge, chunks).
pub const MAILBOX_DEPTH_LAST: &str = "router_mailbox_depth_last";

/// Histogram key + bounds for a policy audit-gauge key, when the
/// gauge has a meaningful distribution to track.
pub fn gauge_histogram(gauge_key: &str) -> Option<(&'static str, &'static [f64])> {
    match gauge_key {
        "peak_share" => Some((SHARE_DIST, SHARE_BOUNDS)),
        "cluster_risk" => Some((RISK_DIST, RISK_BOUNDS)),
        _ => None,
    }
}

/// Resolves a serialized key name back to its canonical `&'static str`
/// — the inverse a checkpoint restore needs, since [`crate::Registry`]
/// and [`crate::GaugeDelta`] key on interned statics. The vocabulary is
/// closed (every key the RMS stack can emit is listed here or derived
/// from [`crate::RejectReason`]); `None` means the name is not ours —
/// a corrupt or foreign snapshot.
pub fn intern(name: &str) -> Option<&'static str> {
    const FIXED: &[&str] = &[
        DECISIONS,
        ACCEPTED,
        REJECTED,
        QUEUED,
        RESOLVED,
        FULFILLED,
        OVERDUE,
        KILLED,
        NODE_DOWN,
        NODE_UP,
        PROJECTIONS_RUN_TOTAL,
        PROJECTIONS_AVOIDED_TOTAL,
        DECISION_CLASSES_TOTAL,
        SCREENED_ZERO_RISK_TOTAL,
        UTILIZATION,
        IN_FLIGHT,
        DECIDE_LATENCY,
        SHARE_DIST,
        RISK_DIST,
        "obs_events_dropped_total",
        "rms_churn_node_failures_total",
        "rms_churn_node_restores_total",
        "rms_churn_kills_total",
        "rms_churn_requeues_total",
        "rms_churn_requeue_rejects_total",
        "rms_churn_requeued_fulfilled_pct",
        "peak_share",
        "cluster_risk",
        "queue_depth",
    ];
    if let Some(k) = FIXED.iter().find(|k| **k == name) {
        return Some(k);
    }
    if let Some(k) = crate::reason::RejectReason::ALL
        .iter()
        .map(|r| r.counter_key())
        .find(|k| *k == name)
    {
        return Some(k);
    }
    crate::phase::intern_key(name)
}

/// Resolves a serialized bucket-bound table back to the canonical
/// static it must alias — the histogram analogue of [`intern`].
pub fn intern_bounds(bounds: &[f64]) -> Option<&'static [f64]> {
    [
        DECIDE_LATENCY_BOUNDS,
        SHARE_BOUNDS,
        RISK_BOUNDS,
        PHASE_NS_BOUNDS,
        MAILBOX_DEPTH_BOUNDS,
    ]
    .into_iter()
    .find(|b| *b == bounds)
}

/// Scrape-page `# HELP` text for a metric key, when we have one.
/// Plain one-liners here; [`crate::Registry::to_prometheus`] escapes
/// backslashes and newlines per the exposition grammar on the way out.
pub fn help(key: &str) -> Option<&'static str> {
    let fixed = match key {
        _ if key == DECISIONS => "Total admission decisions (accepted + rejected + queued).",
        _ if key == ACCEPTED => "Decisions that admitted the job immediately.",
        _ if key == REJECTED => "Decisions that turned the job away at submit.",
        _ if key == QUEUED => "Decisions that parked the job in a wait queue.",
        _ if key == RESOLVED => "Jobs that reached a terminal outcome.",
        _ if key == FULFILLED => "Completions that met their deadline.",
        _ if key == OVERDUE => "Completions that missed their deadline.",
        _ if key == KILLED => "Jobs killed by node failure.",
        _ if key == NODE_DOWN => "Node failures applied from the fault plan.",
        _ if key == NODE_UP => "Node repairs applied from the fault plan.",
        _ if key == UTILIZATION => "Mean utilization of up capacity so far.",
        _ if key == IN_FLIGHT => "Jobs currently resident or queued.",
        _ if key == DECIDE_LATENCY => "Wall-clock decide latency, nanoseconds.",
        _ if key == SHARE_DIST => "Post-decision share-sum distribution (Libra family).",
        _ if key == RISK_DIST => "Post-decision cluster-risk distribution (LibraRisk family).",
        _ if key == MAILBOX_DEPTH_LAST => "Last-observed mailbox depth at send time, chunks.",
        "obs_events_dropped_total" => "Ring-buffer events dropped (oldest-first) on overflow.",
        _ => "",
    };
    if !fixed.is_empty() {
        return Some(fixed);
    }
    crate::phase::help_key(key)
}
