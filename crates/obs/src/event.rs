//! Structured trace events.
//!
//! Every event carries plain scalars (ids, seconds, counts) rather
//! than core types: this crate sits below the simulation core in the
//! dependency graph, so the core converts at the hook site. Simulated
//! instants are `f64` seconds since simulation start — the same axis
//! `sim::SimTime` wraps.

use crate::reason::RejectReason;

/// The verdict half of a decision audit record — mirrors the core's
/// `Decision` enum without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted and started immediately.
    Accepted,
    /// Turned away, with the machine-readable cause.
    Rejected(RejectReason),
    /// Parked in a wait queue; the verdict arrives later as an event.
    Queued,
}

impl Verdict {
    /// Stable label ("accepted", "rejected", "queued").
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Accepted => "accepted",
            Verdict::Rejected(_) => "rejected",
            Verdict::Queued => "queued",
        }
    }
}

/// How a resolved job left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedKind {
    /// Rejected (at submit, dispatch or requeue).
    Rejected(RejectReason),
    /// Ran to completion.
    Completed,
    /// Died with its node under a `Kill` recovery policy.
    Killed,
}

impl ResolvedKind {
    /// Stable label ("rejected", "completed", "killed").
    pub fn label(self) -> &'static str {
        match self {
            ResolvedKind::Rejected(_) => "rejected",
            ResolvedKind::Completed => "completed",
            ResolvedKind::Killed => "killed",
        }
    }
}

/// A policy gauge sampled immediately before and after one admission —
/// Libra's peak share sum, LibraRisk's cluster risk, a queue depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaugeDelta {
    /// Static gauge key (also a [`crate::Registry`] key).
    pub key: &'static str,
    /// Value at the decision instant, before the job was placed.
    pub before: f64,
    /// Value after placement (equals `before` on a rejection).
    pub after: f64,
}

/// Why a verdict came out the way it did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecisionAudit {
    /// First (best-fit) node of the chosen assignment, when accepted.
    pub best_fit_node: Option<u32>,
    /// Policy gauge before/after the decision, when the policy
    /// exposes one.
    pub gauge: Option<GaugeDelta>,
}

/// One structured trace event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A job arrived at the facade.
    Submit {
        /// Submission sequence number.
        seq: u64,
        /// Workload job id.
        job: u64,
        /// Processors requested.
        procs: u32,
        /// User runtime estimate, seconds.
        estimate_secs: f64,
        /// Absolute deadline, seconds since simulation start.
        deadline_secs: f64,
    },
    /// An admission verdict, with its audit record.
    Decision {
        /// Submission sequence number.
        seq: u64,
        /// Workload job id.
        job: u64,
        /// The verdict.
        verdict: Verdict,
        /// Why — best-fit node, gauge before/after.
        audit: DecisionAudit,
        /// Wall-clock cost of the decision, nanoseconds.
        latency_ns: u64,
    },
    /// A job reached its terminal outcome.
    JobResolved {
        /// Submission sequence number.
        seq: u64,
        /// Workload job id.
        job: u64,
        /// How it left the system.
        outcome: ResolvedKind,
    },
    /// A node failed.
    NodeDown {
        /// The failed node.
        node: u32,
    },
    /// A node came back.
    NodeUp {
        /// The restored node.
        node: u32,
    },
    /// One `advance(to)` call: the span covered and how many job
    /// events it streamed.
    AdvanceSpan {
        /// Span start, seconds.
        start_secs: f64,
        /// Span end, seconds.
        end_secs: f64,
        /// Job events streamed by the span.
        events: u64,
    },
}

impl Event {
    /// Stable event-type label ("submit", "decision", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Event::Submit { .. } => "submit",
            Event::Decision { .. } => "decision",
            Event::JobResolved { .. } => "job_resolved",
            Event::NodeDown { .. } => "node_down",
            Event::NodeUp { .. } => "node_up",
            Event::AdvanceSpan { .. } => "advance",
        }
    }
}

/// An [`Event`] with its two timestamps: the simulated instant it
/// describes and the wall-clock nanosecond (relative to the recorder's
/// epoch) at which it was recorded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedEvent {
    /// Simulated instant, seconds since simulation start.
    pub sim_secs: f64,
    /// Wall-clock offset from the recorder's creation, nanoseconds.
    pub wall_ns: u64,
    /// The event.
    pub event: Event,
}
