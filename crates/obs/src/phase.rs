//! Hot-path phase profiler: named wall-clock phases over the engine's
//! advance and decide paths, plus counters for the cache machinery the
//! decision path leans on.
//!
//! The profiler is process-global and **off by default**. Every hook
//! site first reads one relaxed [`AtomicBool`]; disabled, a hook is a
//! single load and a predictable branch — no clock read, no TLS access,
//! nothing observable. Enabled, hot phases accumulate into plain
//! thread-local [`Cell`]s (no atomics on the hot path) which flush into
//! global atomics when [`flush`] runs or the thread exits — the latter
//! is what makes the router's scoped worker threads "just work": each
//! worker's counts fold into the global view when its scope ends.
//!
//! Two recording disciplines coexist:
//!
//! 1. **Lap timing** for the advance path. Consecutive phases share
//!    boundary timestamps ([`lap_mark`] attributes the time since the
//!    previous mark and becomes the next boundary), so a fully-marked
//!    stretch is tiled: one `Instant::now()` per phase transition, and
//!    the marked phases sum to the stretch's wall clock minus only the
//!    unmarked slivers. [`advance_span`] brackets the whole stretch
//!    (reentrancy-counted, so nested engine advances don't double
//!    count) and anchors the coverage ratio the `experiments profile`
//!    subcommand reports.
//! 2. **Span guards** ([`span`]) for independent, possibly-nested
//!    phases: the decide-path breakdown and the router's blocking waits.
//!    A span is two clock reads; it does not touch the lap clock.
//!
//! Both hot disciplines are **stride-sampled** ([`SAMPLE_STRIDE`]):
//! only 1-in-N advance stretches arm the lap clock, and the engine
//! gates its per-decision fine spans on [`decision_sampled`]. A hook on
//! an unarmed stretch is a TLS load and a branch — no clock read — so
//! the enabled profiler stays inside a few percent of plain throughput
//! (the bench's `profiler_overhead` probe gates this at 10%). Sampling
//! is unbiased for every *ratio* the profiler exists to report (phase
//! shares, the advance-coverage anchor, per-call means); absolute
//! `_ns_total` values cover the sampled subset only. The rare blocking
//! spans (router merge, mailbox waits) are never sampled — their
//! per-event distributions are the point and their rate is low.
//!
//! Like the [`crate::Recorder`] contract, profiling is behaviourally
//! inert: nothing in any decision or advance path reads profiler state.
//! The core pins this with a profiler-on bitwise-identity proptest.

use crate::registry::{Histogram, Registry};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of named phases (see [`Phase::ALL`]).
pub const N_PHASES: usize = 12;
/// Number of cache-machinery counters (see [`Counter::ALL`]).
pub const N_COUNTERS: usize = 8;

/// A named hot-path phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// `next_event_time` queries driving the catch-up loop.
    EventHeapPop = 0,
    /// The ordered progress sweep inside `advance_into` (busy
    /// integrals, completion/re-arm detection, fused share totals).
    ProgressPass = 1,
    /// Rate recomputation (`recompute_pass2` / `recompute_rates`).
    RecomputeSweep = 2,
    /// Turning engine completions into streamed job events.
    CompletionEmit = 3,
    /// The whole engine-advance stretch (catch-up + arrival-instant
    /// advance); the denominator of the coverage ratio.
    AdvanceTotal = 4,
    /// The decide-path walk over candidate nodes.
    CandidateScan = 5,
    /// Equivalence-class refresh + signature classification.
    EquivClassify = 6,
    /// Risk-projection verdict kernel executions.
    VerdictKernel = 7,
    /// Router submit (route + shard decide) on the caller's thread.
    RouterSubmit = 8,
    /// The k-way merge of shard mailbox streams.
    RouterMerge = 9,
    /// Producer-side backpressure: a worker blocked on a full mailbox.
    MailboxSendWait = 10,
    /// Consumer-side merge lag: the merge blocked on an empty mailbox.
    MailboxRecvWait = 11,
}

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::EventHeapPop,
        Phase::ProgressPass,
        Phase::RecomputeSweep,
        Phase::CompletionEmit,
        Phase::AdvanceTotal,
        Phase::CandidateScan,
        Phase::EquivClassify,
        Phase::VerdictKernel,
        Phase::RouterSubmit,
        Phase::RouterMerge,
        Phase::MailboxSendWait,
        Phase::MailboxRecvWait,
    ];

    /// Human-readable phase name (table/CSV rows).
    pub fn name(self) -> &'static str {
        PHASE_META[self as usize].name
    }

    /// Registry counter key for total nanoseconds in this phase.
    pub fn ns_key(self) -> &'static str {
        PHASE_META[self as usize].ns_key
    }

    /// Registry counter key for entries into this phase.
    pub fn calls_key(self) -> &'static str {
        PHASE_META[self as usize].calls_key
    }

    /// Registry histogram key for the per-flush duration distribution.
    pub fn hist_key(self) -> &'static str {
        PHASE_META[self as usize].hist_key
    }
}

struct PhaseMeta {
    name: &'static str,
    ns_key: &'static str,
    calls_key: &'static str,
    hist_key: &'static str,
}

macro_rules! phase_meta {
    ($name:literal, $stem:literal) => {
        PhaseMeta {
            name: $name,
            ns_key: concat!("phase_", $stem, "_ns_total"),
            calls_key: concat!("phase_", $stem, "_calls_total"),
            hist_key: concat!("phase_", $stem, "_ns"),
        }
    };
}

const PHASE_META: [PhaseMeta; N_PHASES] = [
    phase_meta!("event-heap pop", "event_heap_pop"),
    phase_meta!("progress pass", "progress_pass"),
    phase_meta!("recompute sweep", "recompute_sweep"),
    phase_meta!("completion emit", "completion_emit"),
    phase_meta!("advance total", "advance_total"),
    phase_meta!("candidate scan", "candidate_scan"),
    phase_meta!("equivalence classify", "equiv_classify"),
    phase_meta!("verdict kernel", "verdict_kernel"),
    phase_meta!("router submit", "router_submit"),
    phase_meta!("router k-way merge", "router_merge"),
    phase_meta!("mailbox send wait", "mailbox_send_wait"),
    phase_meta!("mailbox recv wait", "mailbox_recv_wait"),
];

/// A cache-machinery event counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Node evaluations answered by equivalence-class replay.
    EquivClassHits = 0,
    /// Distinct class profiles that had to run the kernel.
    EquivClassMisses = 1,
    /// Whole decisions answered by the exact replay memo.
    ReplayMemoHits = 2,
    /// Node evaluations settled by the zero-risk dominance screen.
    DominanceScreens = 3,
    /// Node evaluations answered by cross-decision pairing replay.
    PairingHits = 4,
    /// Node evaluations answered by the per-node candidate memo.
    CandidateMemoHits = 5,
    /// Verdict-kernel runs that bailed at the first σ certification.
    KernelBails = 6,
    /// Projection-kernel executions.
    ProjectionsRun = 7,
}

impl Counter {
    /// Every counter, in discriminant order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::EquivClassHits,
        Counter::EquivClassMisses,
        Counter::ReplayMemoHits,
        Counter::DominanceScreens,
        Counter::PairingHits,
        Counter::CandidateMemoHits,
        Counter::KernelBails,
        Counter::ProjectionsRun,
    ];

    /// Registry key for this counter.
    pub fn key(self) -> &'static str {
        COUNTER_KEYS[self as usize]
    }
}

const COUNTER_KEYS: [&str; N_COUNTERS] = [
    "phase_equiv_class_hits_total",
    "phase_equiv_class_misses_total",
    "phase_replay_memo_hits_total",
    "phase_dominance_screens_total",
    "phase_pairing_hits_total",
    "phase_candidate_memo_hits_total",
    "phase_kernel_bails_total",
    "phase_projections_run_total",
];

/// Registry histogram key for per-send mailbox depth (chunks queued).
pub const MAILBOX_DEPTH_KEY: &str = "router_mailbox_depth_chunks";

/// 1-in-N stride for the hot sampled disciplines: armed advance
/// stretches and [`decision_sampled`] fine spans.
pub const SAMPLE_STRIDE: u64 = 8;

const N_BUCKETS: usize = crate::keys::PHASE_NS_BOUNDS.len() + 1;
const N_DEPTH_BUCKETS: usize = crate::keys::MAILBOX_DEPTH_BOUNDS.len() + 1;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct GlobalPhase {
    ns: AtomicU64,
    calls: AtomicU64,
    /// Per-flush duration distribution: for lap/flushed phases one
    /// observation per flush (≈ per advance); for direct spans one per
    /// span. `ns` doubles as the histogram sum.
    buckets: [AtomicU64; N_BUCKETS],
    flushes: AtomicU64,
}

static GLOBALS: [GlobalPhase; N_PHASES] = [const {
    GlobalPhase {
        ns: AtomicU64::new(0),
        calls: AtomicU64::new(0),
        buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
        flushes: AtomicU64::new(0),
    }
}; N_PHASES];

static COUNTERS: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];

static DEPTH_BUCKETS: [AtomicU64; N_DEPTH_BUCKETS] = [const { AtomicU64::new(0) }; N_DEPTH_BUCKETS];
static DEPTH_SUM: AtomicU64 = AtomicU64::new(0);
static DEPTH_COUNT: AtomicU64 = AtomicU64::new(0);
static DEPTH_LAST: AtomicU64 = AtomicU64::new(0);

struct Local {
    ns: [Cell<u64>; N_PHASES],
    calls: [Cell<u64>; N_PHASES],
    counters: [Cell<u64>; N_COUNTERS],
    /// The lap clock: the boundary instant the next [`lap_mark`]
    /// attributes from. `None` outside any *armed* stretch — and lap
    /// marks never start a boundary themselves, so tiles accumulate in
    /// lockstep with the sampled `AdvanceTotal` brackets.
    lap: Cell<Option<Instant>>,
    /// Reentrancy depth of [`advance_span`] on this thread.
    advance_depth: Cell<u32>,
    /// Outermost advance stretches seen (drives the sampling stride).
    advance_tick: Cell<u64>,
    /// Decisions seen by [`decision_sampled`] (same stride).
    decision_tick: Cell<u64>,
}

impl Local {
    const fn new() -> Self {
        Local {
            ns: [const { Cell::new(0) }; N_PHASES],
            calls: [const { Cell::new(0) }; N_PHASES],
            counters: [const { Cell::new(0) }; N_COUNTERS],
            lap: Cell::new(None),
            advance_depth: Cell::new(0),
            advance_tick: Cell::new(0),
            decision_tick: Cell::new(0),
        }
    }

    fn flush(&self) {
        for (i, g) in GLOBALS.iter().enumerate() {
            let ns = self.ns[i].take();
            let calls = self.calls[i].take();
            if ns == 0 && calls == 0 {
                continue;
            }
            g.ns.fetch_add(ns, Ordering::Relaxed);
            g.calls.fetch_add(calls, Ordering::Relaxed);
            let b = bucket_of(crate::keys::PHASE_NS_BOUNDS, ns as f64);
            g.buckets[b].fetch_add(1, Ordering::Relaxed);
            g.flushes.fetch_add(1, Ordering::Relaxed);
        }
        for (i, g) in COUNTERS.iter().enumerate() {
            let n = self.counters[i].take();
            if n != 0 {
                g.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// Flush-on-thread-exit wrapper: a router worker dying at the end of
/// its `thread::scope` folds its counts into the global view without
/// anyone having to remember to call [`flush`] on that thread.
struct LocalOwner(Local);

impl Drop for LocalOwner {
    fn drop(&mut self) {
        self.0.flush();
    }
}

thread_local! {
    static LOCAL: LocalOwner = const { LocalOwner(Local::new()) };
}

fn bucket_of(bounds: &[f64], v: f64) -> usize {
    bounds.partition_point(|b| *b < v)
}

/// Whether the profiler is currently recording. One relaxed load —
/// this is the entire cost of every hook site while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the profiler on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes every global aggregate and the calling thread's local state.
/// (Other live threads' unflushed locals are not reachable; flush or
/// join them first — scoped router workers always have been.)
pub fn reset() {
    LOCAL.with(|l| {
        for c in &l.0.ns {
            c.set(0);
        }
        for c in &l.0.calls {
            c.set(0);
        }
        for c in &l.0.counters {
            c.set(0);
        }
        l.0.lap.set(None);
        l.0.advance_depth.set(0);
        l.0.advance_tick.set(0);
        l.0.decision_tick.set(0);
    });
    for g in &GLOBALS {
        g.ns.store(0, Ordering::Relaxed);
        g.calls.store(0, Ordering::Relaxed);
        g.flushes.store(0, Ordering::Relaxed);
        for b in &g.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for b in &DEPTH_BUCKETS {
        b.store(0, Ordering::Relaxed);
    }
    DEPTH_SUM.store(0, Ordering::Relaxed);
    DEPTH_COUNT.store(0, Ordering::Relaxed);
    DEPTH_LAST.store(0, Ordering::Relaxed);
}

/// Flushes the calling thread's local accumulators into the globals.
/// Call at a natural boundary (end of an advance, end of a bench
/// round); [`snapshot`] does it implicitly for the calling thread.
pub fn flush() {
    if enabled() {
        LOCAL.with(|l| l.0.flush());
    }
}

/// Adds `n` to a cache-machinery counter (thread-local; folded into
/// the global on flush).
#[inline]
pub fn add(c: Counter, n: u64) {
    if enabled() && n != 0 {
        LOCAL.with(|l| {
            let cell = &l.0.counters[c as usize];
            cell.set(cell.get() + n);
        });
    }
}

/// Observes the queue depth of a router mailbox at send time, and
/// remembers it as the last-seen depth gauge.
#[inline]
pub fn observe_mailbox_depth(chunks: usize) {
    if !enabled() {
        return;
    }
    let b = bucket_of(crate::keys::MAILBOX_DEPTH_BOUNDS, chunks as f64);
    DEPTH_BUCKETS[b].fetch_add(1, Ordering::Relaxed);
    DEPTH_SUM.fetch_add(chunks as u64, Ordering::Relaxed);
    DEPTH_COUNT.fetch_add(1, Ordering::Relaxed);
    DEPTH_LAST.store(chunks as u64, Ordering::Relaxed);
}

/// Restarts an *armed* lap clock at "now" without attributing anything
/// — the boundary the next [`lap_mark`] measures from. On an unarmed
/// stretch (no sampled [`advance_span`] open) this is a branch, not a
/// clock read.
#[inline]
pub fn lap_resync() {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        if l.0.lap.get().is_some() {
            l.0.lap.set(Some(Instant::now()));
        }
    });
}

/// Attributes the time since the previous lap boundary to `p` and
/// becomes the next boundary. With no armed boundary (unsampled
/// stretch) nothing happens — not even a clock read — so tiles only
/// ever accumulate inside sampled `AdvanceTotal` brackets and the
/// coverage ratio compares like with like.
#[inline]
pub fn lap_mark(p: Phase) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let Some(prev) = l.0.lap.get() else { return };
        let now = Instant::now();
        let i = p as usize;
        let cell = &l.0.ns[i];
        cell.set(cell.get() + (now - prev).as_nanos() as u64);
        let calls = &l.0.calls[i];
        calls.set(calls.get() + 1);
        l.0.lap.set(Some(now));
    });
}

/// Ticks the per-thread decision counter and reports whether this
/// decision is in the 1-in-[`SAMPLE_STRIDE`] sample that should record
/// fine-grained decide-path spans. Call once per decision.
#[inline]
pub fn decision_sampled() -> bool {
    if !enabled() {
        return false;
    }
    LOCAL.with(|l| {
        let t = l.0.decision_tick.get();
        l.0.decision_tick.set(t.wrapping_add(1));
        t % SAMPLE_STRIDE == 0
    })
}

/// An RAII span over one phase: records entry-to-drop wall time.
/// Independent of the lap clock; spans may nest freely (each records
/// its own elapsed time).
pub struct SpanGuard {
    phase: Phase,
    start: Option<Instant>,
}

/// Opens a span over `p`. Disabled, the guard is inert (no clock read).
#[inline]
pub fn span(p: Phase) -> SpanGuard {
    SpanGuard {
        phase: p,
        start: enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(t0) = self.start else { return };
        let ns = t0.elapsed().as_nanos() as u64;
        // Rare/blocking phases go straight to the globals with a
        // per-span histogram observation (their cost is irrelevant and
        // per-event distributions are the point); hot decide-path spans
        // stay in TLS and take the per-flush distribution.
        match self.phase {
            Phase::RouterMerge
            | Phase::MailboxSendWait
            | Phase::MailboxRecvWait
            | Phase::RouterSubmit => {
                let g = &GLOBALS[self.phase as usize];
                g.ns.fetch_add(ns, Ordering::Relaxed);
                g.calls.fetch_add(1, Ordering::Relaxed);
                let b = bucket_of(crate::keys::PHASE_NS_BOUNDS, ns as f64);
                g.buckets[b].fetch_add(1, Ordering::Relaxed);
                g.flushes.fetch_add(1, Ordering::Relaxed);
            }
            p => LOCAL.with(|l| {
                let i = p as usize;
                let cell = &l.0.ns[i];
                cell.set(cell.get() + ns);
                let calls = &l.0.calls[i];
                calls.set(calls.get() + 1);
            }),
        }
    }
}

/// An RAII bracket over one engine-advance stretch. The outermost
/// guard on a thread arms the lap clock for 1-in-[`SAMPLE_STRIDE`]
/// stretches and, at drop, records the armed stretch under
/// [`Phase::AdvanceTotal`] and stops the lap clock; nested guards (an
/// advance inside an advance) and unsampled stretches are free no-ops,
/// so `AdvanceTotal` never double-counts and unsampled advances pay no
/// clock reads at all.
pub struct AdvanceGuard {
    start: Option<Instant>,
}

/// Opens an advance stretch (see [`AdvanceGuard`]).
#[inline]
pub fn advance_span() -> AdvanceGuard {
    if !enabled() {
        return AdvanceGuard { start: None };
    }
    LOCAL.with(|l| {
        let depth = l.0.advance_depth.get();
        l.0.advance_depth.set(depth + 1);
        if depth == 0 {
            let tick = l.0.advance_tick.get();
            l.0.advance_tick.set(tick.wrapping_add(1));
            if tick % SAMPLE_STRIDE == 0 {
                let now = Instant::now();
                l.0.lap.set(Some(now));
                return AdvanceGuard { start: Some(now) };
            }
        }
        AdvanceGuard { start: None }
    })
}

impl Drop for AdvanceGuard {
    fn drop(&mut self) {
        // Depth bookkeeping must happen even when this guard did not
        // arm (nested case); the armed flag rides on `start`.
        if !enabled() && self.start.is_none() {
            return;
        }
        LOCAL.with(|l| {
            let depth = l.0.advance_depth.get().saturating_sub(1);
            l.0.advance_depth.set(depth);
            if let Some(t0) = self.start {
                let ns = t0.elapsed().as_nanos() as u64;
                let i = Phase::AdvanceTotal as usize;
                let cell = &l.0.ns[i];
                cell.set(cell.get() + ns);
                let calls = &l.0.calls[i];
                calls.set(calls.get() + 1);
                l.0.lap.set(None);
                l.0.flush();
            }
        });
    }
}

/// One phase's aggregate view inside a [`PhaseSnapshot`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStat {
    /// Total nanoseconds attributed to the phase.
    pub ns: u64,
    /// Entries (lap marks or span drops) into the phase.
    pub calls: u64,
    /// Histogram observations (flushes or direct spans).
    pub flushes: u64,
    /// Per-bucket observation counts over
    /// [`crate::keys::PHASE_NS_BOUNDS`] (+ overflow).
    pub buckets: [u64; N_BUCKETS],
}

/// A point-in-time copy of every profiler aggregate.
#[derive(Clone, Debug)]
pub struct PhaseSnapshot {
    phases: [PhaseStat; N_PHASES],
    counters: [u64; N_COUNTERS],
    depth_buckets: [u64; N_DEPTH_BUCKETS],
    depth_sum: u64,
    depth_count: u64,
    depth_last: u64,
}

/// Captures the current global aggregates (flushing the calling
/// thread's locals first).
pub fn snapshot() -> PhaseSnapshot {
    LOCAL.with(|l| l.0.flush());
    let mut phases = [PhaseStat::default(); N_PHASES];
    for (stat, g) in phases.iter_mut().zip(&GLOBALS) {
        stat.ns = g.ns.load(Ordering::Relaxed);
        stat.calls = g.calls.load(Ordering::Relaxed);
        stat.flushes = g.flushes.load(Ordering::Relaxed);
        for (dst, src) in stat.buckets.iter_mut().zip(&g.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
    }
    let mut counters = [0u64; N_COUNTERS];
    for (dst, src) in counters.iter_mut().zip(&COUNTERS) {
        *dst = src.load(Ordering::Relaxed);
    }
    let mut depth_buckets = [0u64; N_DEPTH_BUCKETS];
    for (dst, src) in depth_buckets.iter_mut().zip(&DEPTH_BUCKETS) {
        *dst = src.load(Ordering::Relaxed);
    }
    PhaseSnapshot {
        phases,
        counters,
        depth_buckets,
        depth_sum: DEPTH_SUM.load(Ordering::Relaxed),
        depth_count: DEPTH_COUNT.load(Ordering::Relaxed),
        depth_last: DEPTH_LAST.load(Ordering::Relaxed),
    }
}

impl PhaseSnapshot {
    /// This phase's aggregate.
    pub fn stat(&self, p: Phase) -> PhaseStat {
        self.phases[p as usize]
    }

    /// Total nanoseconds attributed to `p`.
    pub fn ns(&self, p: Phase) -> u64 {
        self.phases[p as usize].ns
    }

    /// Entries into `p`.
    pub fn calls(&self, p: Phase) -> u64 {
        self.phases[p as usize].calls
    }

    /// Current value of a cache-machinery counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Mailbox depth observations (sends seen by the depth probe).
    pub fn mailbox_depth_count(&self) -> u64 {
        self.depth_count
    }

    /// An upper-bound estimate of the `q`-quantile of `p`'s per-flush
    /// duration distribution, in nanoseconds (0 when empty).
    pub fn quantile_ns(&self, p: Phase, q: f64) -> f64 {
        bucket_quantile(
            crate::keys::PHASE_NS_BOUNDS,
            &self.phases[p as usize].buckets,
            q,
        )
    }

    /// Exports every aggregate into `reg` under the `phase_*` /
    /// `router_mailbox_*` key vocabulary. The registry is additive
    /// ([`Registry::merge`]-clean with recorder registries); call on a
    /// fresh registry for absolute values.
    pub fn export_into(&self, reg: &mut Registry) {
        for (p, stat) in Phase::ALL.into_iter().zip(&self.phases) {
            if stat.calls == 0 && stat.ns == 0 {
                continue;
            }
            reg.add(p.ns_key(), stat.ns);
            reg.add(p.calls_key(), stat.calls);
            let h = Histogram::from_parts(
                crate::keys::PHASE_NS_BOUNDS,
                stat.buckets.to_vec(),
                stat.ns as f64,
                stat.flushes,
            )
            .expect("phase bucket table matches its bounds");
            reg.restore_histogram(p.hist_key(), h);
        }
        for (c, v) in Counter::ALL.into_iter().zip(&self.counters) {
            if *v != 0 {
                reg.add(c.key(), *v);
            }
        }
        if self.depth_count != 0 {
            let h = Histogram::from_parts(
                crate::keys::MAILBOX_DEPTH_BOUNDS,
                self.depth_buckets.to_vec(),
                self.depth_sum as f64,
                self.depth_count,
            )
            .expect("depth bucket table matches its bounds");
            reg.restore_histogram(MAILBOX_DEPTH_KEY, h);
            reg.set_gauge(crate::keys::MAILBOX_DEPTH_LAST, self.depth_last as f64);
        }
    }
}

/// Upper-bound quantile estimate over cumulative fixed buckets: the
/// upper bound of the bucket the quantile lands in (the last finite
/// bound for the overflow bucket).
fn bucket_quantile(bounds: &[f64], buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        cum += n;
        if cum >= target {
            return bounds.get(i).copied().unwrap_or_else(|| {
                // Overflow bucket: the distribution's tail exceeds the
                // table; report the last finite bound as a floor.
                bounds.last().copied().unwrap_or(0.0)
            });
        }
    }
    bounds.last().copied().unwrap_or(0.0)
}

/// Resolves a profiler metric name back to its canonical static key
/// (the [`crate::keys::intern`] extension for the phase vocabulary).
pub fn intern_key(name: &str) -> Option<&'static str> {
    for m in &PHASE_META {
        for k in [m.ns_key, m.calls_key, m.hist_key] {
            if k == name {
                return Some(k);
            }
        }
    }
    for k in COUNTER_KEYS {
        if k == name {
            return Some(k);
        }
    }
    [MAILBOX_DEPTH_KEY, crate::keys::MAILBOX_DEPTH_LAST]
        .into_iter()
        .find(|k| *k == name)
}

/// Scrape-page HELP text for a profiler metric key (the
/// [`crate::keys::help`] extension for the phase vocabulary).
pub fn help_key(name: &str) -> Option<&'static str> {
    for m in &PHASE_META {
        if m.ns_key == name {
            return Some("Total nanoseconds attributed to this hot-path phase.");
        }
        if m.calls_key == name {
            return Some("Entries into this hot-path phase.");
        }
        if m.hist_key == name {
            return Some("Per-flush duration distribution for this phase, nanoseconds.");
        }
    }
    if COUNTER_KEYS.contains(&name) {
        return Some("Cache-machinery events on the decision path.");
    }
    (name == MAILBOX_DEPTH_KEY).then_some("Router mailbox depth at send time, chunks.")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global profiler state is shared across the test binary's
    /// threads, so every test that toggles it runs under this lock.
    fn with_profiler(f: impl FnOnce()) {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        set_enabled(true);
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        // No with_profiler: the default state is off.
        assert!(!enabled());
        lap_resync();
        lap_mark(Phase::ProgressPass);
        add(Counter::ReplayMemoHits, 3);
        let _s = span(Phase::VerdictKernel);
        drop(_s);
        let snap = snapshot();
        for p in Phase::ALL {
            assert_eq!(snap.ns(p), 0);
            assert_eq!(snap.calls(p), 0);
        }
        assert_eq!(snap.counter(Counter::ReplayMemoHits), 0);
    }

    #[test]
    fn lap_marks_tile_a_stretch_and_flush_to_globals() {
        with_profiler(|| {
            {
                let _g = advance_span();
                busy(50);
                lap_mark(Phase::EventHeapPop);
                busy(50);
                lap_mark(Phase::ProgressPass);
                busy(50);
                lap_mark(Phase::RecomputeSweep);
            }
            let snap = snapshot();
            let total = snap.ns(Phase::AdvanceTotal);
            let parts = snap.ns(Phase::EventHeapPop)
                + snap.ns(Phase::ProgressPass)
                + snap.ns(Phase::RecomputeSweep);
            assert!(total > 0, "advance stretch was timed");
            assert!(parts <= total, "tiles cannot exceed the bracket");
            assert!(
                parts as f64 >= total as f64 * 0.5,
                "tiles cover most of the bracket ({parts} of {total})"
            );
            assert_eq!(snap.calls(Phase::AdvanceTotal), 1);
            assert_eq!(snap.calls(Phase::ProgressPass), 1);
        });
    }

    #[test]
    fn nested_advance_spans_count_once() {
        with_profiler(|| {
            {
                let _outer = advance_span();
                let _inner = advance_span();
                busy(20);
            }
            let snap = snapshot();
            assert_eq!(snap.calls(Phase::AdvanceTotal), 1, "no double count");
        });
    }

    #[test]
    fn spans_counters_and_depth_aggregate() {
        with_profiler(|| {
            {
                let _s = span(Phase::VerdictKernel);
                busy(20);
            }
            {
                let _s = span(Phase::MailboxSendWait);
                busy(20);
            }
            add(Counter::DominanceScreens, 7);
            add(Counter::ReplayMemoHits, 2);
            observe_mailbox_depth(3);
            observe_mailbox_depth(8);
            let snap = snapshot();
            assert!(snap.ns(Phase::VerdictKernel) > 0);
            assert_eq!(snap.calls(Phase::VerdictKernel), 1);
            assert!(snap.ns(Phase::MailboxSendWait) > 0);
            assert_eq!(snap.counter(Counter::DominanceScreens), 7);
            assert_eq!(snap.counter(Counter::ReplayMemoHits), 2);
            assert_eq!(snap.mailbox_depth_count(), 2);
            assert!(snap.quantile_ns(Phase::MailboxSendWait, 0.99) > 0.0);
        });
    }

    #[test]
    fn worker_thread_flushes_on_exit() {
        with_profiler(|| {
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = span(Phase::CandidateScan);
                    busy(30);
                    // No explicit flush: thread exit must fold the
                    // span into the globals.
                });
            });
            let snap = snapshot();
            assert_eq!(snap.calls(Phase::CandidateScan), 1);
            assert!(snap.ns(Phase::CandidateScan) > 0);
        });
    }

    #[test]
    fn export_round_trips_through_the_registry() {
        with_profiler(|| {
            {
                let _g = advance_span();
                busy(30);
                lap_mark(Phase::ProgressPass);
            }
            add(Counter::ProjectionsRun, 5);
            observe_mailbox_depth(2);
            let snap = snapshot();
            let mut reg = Registry::new();
            snap.export_into(&mut reg);
            assert_eq!(
                reg.counter(Phase::ProgressPass.ns_key()),
                snap.ns(Phase::ProgressPass)
            );
            assert_eq!(reg.counter(Counter::ProjectionsRun.key()), 5);
            let h = reg
                .histogram(Phase::AdvanceTotal.hist_key())
                .expect("advance histogram exported");
            assert_eq!(h.count(), 1);
            assert!(reg.histogram(MAILBOX_DEPTH_KEY).is_some());
            assert_eq!(reg.gauge(crate::keys::MAILBOX_DEPTH_LAST), Some(2.0));
            // Every exported key is in the closed intern vocabulary.
            for (k, _) in reg.counters() {
                assert!(crate::keys::intern(k).is_some(), "unknown key {k}");
            }
            let text = reg.to_prometheus();
            assert!(text.contains("phase_progress_pass_ns_total"));
        });
    }

    #[test]
    fn bucket_quantile_is_an_upper_bound() {
        let bounds = &[10.0, 100.0, 1000.0];
        // 9 observations ≤ 10, one in (100, 1000].
        assert_eq!(bucket_quantile(bounds, &[9, 0, 1, 0], 0.50), 10.0);
        assert_eq!(bucket_quantile(bounds, &[9, 0, 1, 0], 0.99), 1000.0);
        // Overflow bucket reports the last finite bound.
        assert_eq!(bucket_quantile(bounds, &[0, 0, 0, 4], 0.5), 1000.0);
        assert_eq!(bucket_quantile(bounds, &[0, 0, 0, 0], 0.5), 0.0);
    }

    /// Spins for roughly `us` microseconds of wall clock.
    fn busy(us: u64) {
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < u128::from(us) {
            std::hint::spin_loop();
        }
    }
}
