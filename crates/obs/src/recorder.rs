//! The recorder hook trait and its two implementations.

use crate::event::{Event, TimedEvent};
use crate::registry::Registry;
use std::collections::VecDeque;
use std::time::Instant;

/// The hook the RMS calls at every observable instant.
///
/// Implementations must be *passive*: a recorder may be arbitrarily
/// expensive or cheap, but it never influences a decision — the core
/// pins this contract with a bitwise-identity property test. Hook
/// sites gate all event construction on [`Recorder::enabled`], so a
/// disabled recorder costs one branch per site.
pub trait Recorder {
    /// `false` lets hook sites skip event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event at simulated instant `sim_secs`.
    fn record(&mut self, sim_secs: f64, event: Event);

    /// The metrics registry fed by this recorder, if it keeps one.
    fn registry_mut(&mut self) -> Option<&mut Registry> {
        None
    }

    /// Whether hook sites should sample *policy audit gauges* (Libra's
    /// peak share sum, LibraRisk's cluster risk) around every decision.
    ///
    /// These are the one hook with a real price: sampling LibraRisk's
    /// cluster risk re-projects every occupied node, which costs a
    /// double-digit percentage of end-to-end replay throughput. All
    /// other decision audit fields (verdict, rejection reason, best-fit
    /// node, queue depth) are near-free and always gathered. Defaults
    /// to `false`; recorders built for deep decision forensics opt in.
    fn wants_audit_gauges(&self) -> bool {
        false
    }

    /// The ring's canonical state, if this recorder keeps one — lets a
    /// checkpointing caller snapshot an *attached* (hence mutably
    /// borrowed) recorder through the hook trait. Defaults to `None`
    /// (nothing to checkpoint).
    fn ring_snapshot(&self) -> Option<RingSnapshot> {
        None
    }

    /// An owned copy of the recorder's registry, if it keeps one —
    /// the checkpoint companion of [`Recorder::ring_snapshot`].
    fn registry_snapshot(&self) -> Option<Registry> {
        None
    }
}

/// The default recorder: records nothing, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _sim_secs: f64, _event: Event) {}
}

/// A bounded ring-buffer recorder with an owned metrics registry.
///
/// On overflow the *oldest* events are dropped (the tail of a run is
/// usually what a post-mortem needs) and counted in
/// [`TraceRecorder::dropped`]. Wall-clock stamps are nanoseconds since
/// the recorder's construction, so traces from one run share an epoch.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    buf: VecDeque<TimedEvent>,
    dropped: u64,
    registry: Registry,
    epoch: Instant,
    audit_gauges: bool,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(64 * 1024)),
            dropped: 0,
            registry: Registry::new(),
            epoch: Instant::now(),
            audit_gauges: false,
        }
    }

    /// Opts into per-decision policy audit gauges (see
    /// [`Recorder::wants_audit_gauges`] for the cost trade-off).
    pub fn with_audit_gauges(mut self) -> Self {
        self.audit_gauges = true;
        self
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by ring overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The owned registry, read-only.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Removes and returns every retained event, stably sorted by
    /// simulated timestamp.
    ///
    /// The ring holds events in *recording* order, which is not
    /// globally time-sorted: span-level events are stamped at their
    /// span's end instant but recorded before the resolutions inside
    /// the span. The stable sort keeps equal-timestamp events in
    /// recording order, so one drained ring is a valid input stream for
    /// [`merge_traces`]. The drop counter and the registry are left
    /// untouched; the ring is empty afterwards.
    pub fn drain_sorted(&mut self) -> Vec<TimedEvent> {
        let mut events: Vec<TimedEvent> = self.buf.drain(..).collect();
        events.sort_by(|a, b| a.sim_secs.total_cmp(&b.sim_secs));
        events
    }

    /// Extracts the ring's canonical state for checkpointing. The
    /// registry travels separately (see [`TraceRecorder::registry`]).
    pub fn snapshot(&self) -> RingSnapshot {
        RingSnapshot {
            capacity: self.capacity,
            dropped: self.dropped,
            audit_gauges: self.audit_gauges,
            events: self.buf.iter().copied().collect(),
        }
    }

    /// Rebuilds a recorder from a snapshot plus its deserialized
    /// registry. The wall-clock epoch restarts at the restore instant —
    /// restored events keep their recorded `wall_ns`, new events stamp
    /// from the new epoch, so wall offsets are only comparable within
    /// one process lifetime (simulated stamps are unaffected).
    pub fn from_snapshot(snap: RingSnapshot, registry: Registry) -> Result<Self, String> {
        if snap.capacity == 0 {
            return Err("ring capacity must be at least 1".into());
        }
        if snap.events.len() > snap.capacity {
            return Err(format!(
                "{} events exceed ring capacity {}",
                snap.events.len(),
                snap.capacity
            ));
        }
        Ok(TraceRecorder {
            capacity: snap.capacity,
            buf: snap.events.into(),
            dropped: snap.dropped,
            registry,
            epoch: Instant::now(),
            audit_gauges: snap.audit_gauges,
        })
    }

    /// Serialises the retained events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        crate::export::jsonl(self.events())
    }

    /// Serialises the retained events as Chrome `trace_event` JSON.
    pub fn to_chrome_trace(&self) -> String {
        crate::export::chrome_trace(self.events())
    }
}

impl Recorder for TraceRecorder {
    fn record(&mut self, sim_secs: f64, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
            self.registry.inc("obs_events_dropped_total");
        }
        self.buf.push_back(TimedEvent {
            sim_secs,
            wall_ns: self.epoch.elapsed().as_nanos() as u64,
            event,
        });
    }

    fn registry_mut(&mut self) -> Option<&mut Registry> {
        Some(&mut self.registry)
    }

    fn wants_audit_gauges(&self) -> bool {
        self.audit_gauges
    }

    fn ring_snapshot(&self) -> Option<RingSnapshot> {
        Some(self.snapshot())
    }

    fn registry_snapshot(&self) -> Option<Registry> {
        Some(self.registry.clone())
    }
}

/// Canonical state of a [`TraceRecorder`] ring: everything a restore
/// needs except the registry, which is snapshotted separately.
#[derive(Clone, Debug, PartialEq)]
pub struct RingSnapshot {
    /// Maximum events retained.
    pub capacity: usize,
    /// Events evicted by overflow so far.
    pub dropped: u64,
    /// Whether per-decision audit gauges were sampled.
    pub audit_gauges: bool,
    /// Retained events, oldest first.
    pub events: Vec<TimedEvent>,
}

/// One merged view over N per-shard recorder rings.
#[derive(Debug, Default)]
pub struct MergedTrace {
    /// The union of every ring's events, in simulated-timestamp order
    /// (ties keep the lower source index first, and each source's own
    /// order within a tie).
    pub events: Vec<TimedEvent>,
    /// Exact combined overflow accounting: the sum of every source
    /// ring's [`TraceRecorder::dropped`]. The merged event list is
    /// complete except for exactly this many evictions.
    pub dropped: u64,
    /// Every source's metrics registry folded together via
    /// [`Registry::merge`].
    pub registry: Registry,
}

/// K-way merges per-shard recorder rings into one timestamp-ordered
/// trace — the fleet view of a sharded run.
///
/// Each ring is drained via [`TraceRecorder::drain_sorted`] and the
/// sorted streams merge by comparing current heads only (each stream is
/// nondecreasing after the sort, so the result is globally ordered).
/// Drop accounting is exact: `dropped` is the sum over sources, and the
/// merged registry's `obs_events_dropped_total` counter agrees because
/// counters merge additively.
pub fn merge_traces(recorders: impl IntoIterator<Item = TraceRecorder>) -> MergedTrace {
    let mut streams: Vec<std::iter::Peekable<std::vec::IntoIter<TimedEvent>>> = Vec::new();
    let mut dropped = 0u64;
    let mut registry = Registry::new();
    let mut total = 0usize;
    for mut rec in recorders {
        dropped += rec.dropped();
        registry.merge(rec.registry());
        let events = rec.drain_sorted();
        total += events.len();
        streams.push(events.into_iter().peekable());
    }
    let mut events = Vec::with_capacity(total);
    loop {
        let mut best: Option<(f64, usize)> = None;
        for (i, stream) in streams.iter_mut().enumerate() {
            if let Some(head) = stream.peek() {
                // Strict less-than: an equal later head never displaces
                // an earlier source, which is what makes ties stable.
                let better = match best {
                    None => true,
                    Some((key, _)) => head.sim_secs.total_cmp(&key).is_lt(),
                };
                if better {
                    best = Some((head.sim_secs, i));
                }
            }
        }
        match best {
            Some((_, i)) => events.push(streams[i].next().expect("peeked head exists")),
            None => break,
        }
    }
    MergedTrace {
        events,
        dropped,
        registry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_down(n: u32) -> Event {
        Event::NodeDown { node: n }
    }

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(1.0, node_down(0));
        assert!(r.registry_mut().is_none());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRecorder::new(3);
        for n in 0..7u32 {
            r.record(n as f64, node_down(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.registry().counter("obs_events_dropped_total"), 4);
        let kept: Vec<u32> = r
            .events()
            .map(|te| match te.event {
                Event::NodeDown { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![4, 5, 6], "oldest events are the ones dropped");
    }

    #[test]
    fn wall_stamps_are_monotone() {
        let mut r = TraceRecorder::new(16);
        for n in 0..5u32 {
            r.record(0.0, node_down(n));
        }
        let stamps: Vec<u64> = r.events().map(|te| te.wall_ns).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn audit_gauges_are_opt_in() {
        assert!(!TraceRecorder::new(4).wants_audit_gauges());
        assert!(TraceRecorder::new(4)
            .with_audit_gauges()
            .wants_audit_gauges());
        assert!(!NoopRecorder.wants_audit_gauges());
    }

    #[test]
    fn drain_sorted_time_orders_span_stamped_events() {
        let mut r = TraceRecorder::new(8);
        // Recording order is not time order: a span-end event lands
        // before the resolutions inside the span.
        for s in [5.0, 1.0, 3.0, 1.0] {
            r.record(s, node_down(s as u32));
        }
        let drained = r.drain_sorted();
        let stamps: Vec<f64> = drained.iter().map(|e| e.sim_secs).collect();
        assert_eq!(stamps, vec![1.0, 1.0, 3.0, 5.0]);
        assert!(r.is_empty(), "drained");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn merge_traces_interleaves_overlapping_ranges_with_exact_drops() {
        // Overlapping timestamp ranges: a covers [0,6], b covers [1,7].
        let mut a = TraceRecorder::new(2);
        for s in [0.0, 2.0, 4.0, 6.0] {
            a.record(s, node_down(0));
        }
        let mut b = TraceRecorder::new(8);
        for s in [1.0, 3.0, 5.0, 7.0] {
            b.record(s, node_down(1));
        }
        assert_eq!(a.dropped(), 2, "ring of 2 evicted the oldest two");
        let merged = merge_traces([a, b]);
        let stamps: Vec<f64> = merged.events.iter().map(|e| e.sim_secs).collect();
        assert_eq!(stamps, vec![1.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(merged.dropped, 2, "combined drop accounting is exact");
        assert_eq!(merged.registry.counter("obs_events_dropped_total"), 2);
    }

    #[test]
    fn merge_traces_breaks_timestamp_ties_by_source_order() {
        let mk = |node: u32| {
            let mut r = TraceRecorder::new(8);
            r.record(1.0, node_down(node));
            r.record(1.0, node_down(node + 10));
            r
        };
        let merged = merge_traces([mk(0), mk(1)]);
        let nodes: Vec<u32> = merged
            .events
            .iter()
            .map(|te| match te.event {
                Event::NodeDown { node } => node,
                _ => unreachable!(),
            })
            .collect();
        // Source 0's pair first (in its own order), then source 1's.
        assert_eq!(nodes, vec![0, 10, 1, 11]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRecorder::new(0);
        r.record(0.0, node_down(1));
        r.record(1.0, node_down(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
