//! The recorder hook trait and its two implementations.

use crate::event::{Event, TimedEvent};
use crate::registry::Registry;
use std::collections::VecDeque;
use std::time::Instant;

/// The hook the RMS calls at every observable instant.
///
/// Implementations must be *passive*: a recorder may be arbitrarily
/// expensive or cheap, but it never influences a decision — the core
/// pins this contract with a bitwise-identity property test. Hook
/// sites gate all event construction on [`Recorder::enabled`], so a
/// disabled recorder costs one branch per site.
pub trait Recorder {
    /// `false` lets hook sites skip event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event at simulated instant `sim_secs`.
    fn record(&mut self, sim_secs: f64, event: Event);

    /// The metrics registry fed by this recorder, if it keeps one.
    fn registry_mut(&mut self) -> Option<&mut Registry> {
        None
    }

    /// Whether hook sites should sample *policy audit gauges* (Libra's
    /// peak share sum, LibraRisk's cluster risk) around every decision.
    ///
    /// These are the one hook with a real price: sampling LibraRisk's
    /// cluster risk re-projects every occupied node, which costs a
    /// double-digit percentage of end-to-end replay throughput. All
    /// other decision audit fields (verdict, rejection reason, best-fit
    /// node, queue depth) are near-free and always gathered. Defaults
    /// to `false`; recorders built for deep decision forensics opt in.
    fn wants_audit_gauges(&self) -> bool {
        false
    }
}

/// The default recorder: records nothing, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _sim_secs: f64, _event: Event) {}
}

/// A bounded ring-buffer recorder with an owned metrics registry.
///
/// On overflow the *oldest* events are dropped (the tail of a run is
/// usually what a post-mortem needs) and counted in
/// [`TraceRecorder::dropped`]. Wall-clock stamps are nanoseconds since
/// the recorder's construction, so traces from one run share an epoch.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    buf: VecDeque<TimedEvent>,
    dropped: u64,
    registry: Registry,
    epoch: Instant,
    audit_gauges: bool,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(64 * 1024)),
            dropped: 0,
            registry: Registry::new(),
            epoch: Instant::now(),
            audit_gauges: false,
        }
    }

    /// Opts into per-decision policy audit gauges (see
    /// [`Recorder::wants_audit_gauges`] for the cost trade-off).
    pub fn with_audit_gauges(mut self) -> Self {
        self.audit_gauges = true;
        self
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by ring overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The owned registry, read-only.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Serialises the retained events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        crate::export::jsonl(self.events())
    }

    /// Serialises the retained events as Chrome `trace_event` JSON.
    pub fn to_chrome_trace(&self) -> String {
        crate::export::chrome_trace(self.events())
    }
}

impl Recorder for TraceRecorder {
    fn record(&mut self, sim_secs: f64, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
            self.registry.inc("obs_events_dropped_total");
        }
        self.buf.push_back(TimedEvent {
            sim_secs,
            wall_ns: self.epoch.elapsed().as_nanos() as u64,
            event,
        });
    }

    fn registry_mut(&mut self) -> Option<&mut Registry> {
        Some(&mut self.registry)
    }

    fn wants_audit_gauges(&self) -> bool {
        self.audit_gauges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_down(n: u32) -> Event {
        Event::NodeDown { node: n }
    }

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(1.0, node_down(0));
        assert!(r.registry_mut().is_none());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRecorder::new(3);
        for n in 0..7u32 {
            r.record(n as f64, node_down(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.registry().counter("obs_events_dropped_total"), 4);
        let kept: Vec<u32> = r
            .events()
            .map(|te| match te.event {
                Event::NodeDown { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![4, 5, 6], "oldest events are the ones dropped");
    }

    #[test]
    fn wall_stamps_are_monotone() {
        let mut r = TraceRecorder::new(16);
        for n in 0..5u32 {
            r.record(0.0, node_down(n));
        }
        let stamps: Vec<u64> = r.events().map(|te| te.wall_ns).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn audit_gauges_are_opt_in() {
        assert!(!TraceRecorder::new(4).wants_audit_gauges());
        assert!(TraceRecorder::new(4)
            .with_audit_gauges()
            .wants_audit_gauges());
        assert!(!NoopRecorder.wants_audit_gauges());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRecorder::new(0);
        r.record(0.0, node_down(1));
        r.record(1.0, node_down(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
