//! Event-log exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both formats are hand-rolled (no serde in the workspace). Every
//! value is a scalar, so serialisation is a handful of `format!`
//! calls; [`crate::json`] parses the output back for round-trip
//! validation in tests and the CI smoke step.

use crate::event::{DecisionAudit, Event, ResolvedKind, TimedEvent, Verdict};
use std::fmt::Write as _;

/// A JSON number literal: finite floats verbatim (Rust's `Display`
/// never emits exponent notation), non-finite values as `null`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn audit_fields(audit: &DecisionAudit, out: &mut String) {
    if let Some(node) = audit.best_fit_node {
        let _ = write!(out, ",\"best_fit_node\":{node}");
    }
    if let Some(g) = audit.gauge {
        let _ = write!(
            out,
            ",\"gauge\":\"{}\",\"before\":{},\"after\":{}",
            g.key,
            num(g.before),
            num(g.after)
        );
    }
}

/// The event's payload as JSON object fields (no braces), shared by
/// both exporters.
fn payload(event: &Event) -> String {
    let mut out = String::new();
    match event {
        Event::Submit {
            seq,
            job,
            procs,
            estimate_secs,
            deadline_secs,
        } => {
            let _ = write!(
                out,
                "\"seq\":{seq},\"job\":{job},\"procs\":{procs},\"estimate_secs\":{},\"deadline_secs\":{}",
                num(*estimate_secs),
                num(*deadline_secs)
            );
        }
        Event::Decision {
            seq,
            job,
            verdict,
            audit,
            latency_ns,
        } => {
            let _ = write!(
                out,
                "\"seq\":{seq},\"job\":{job},\"verdict\":\"{}\"",
                verdict.label()
            );
            if let Verdict::Rejected(reason) = verdict {
                let _ = write!(out, ",\"reason\":\"{}\"", reason.code());
            }
            audit_fields(audit, &mut out);
            let _ = write!(out, ",\"latency_ns\":{latency_ns}");
        }
        Event::JobResolved { seq, job, outcome } => {
            let _ = write!(
                out,
                "\"seq\":{seq},\"job\":{job},\"outcome\":\"{}\"",
                outcome.label()
            );
            if let ResolvedKind::Rejected(reason) = outcome {
                let _ = write!(out, ",\"reason\":\"{}\"", reason.code());
            }
        }
        Event::NodeDown { node } | Event::NodeUp { node } => {
            let _ = write!(out, "\"node\":{node}");
        }
        Event::AdvanceSpan {
            start_secs,
            end_secs,
            events,
        } => {
            let _ = write!(
                out,
                "\"start_secs\":{},\"end_secs\":{},\"events\":{events}",
                num(*start_secs),
                num(*end_secs)
            );
        }
    }
    out
}

/// One event per line, each a self-contained JSON object:
/// `{"type":..., "sim_secs":..., "wall_ns":..., <payload fields>}`.
pub fn jsonl<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> String {
    let mut out = String::new();
    for te in events {
        let _ = writeln!(
            out,
            "{{\"type\":\"{}\",\"sim_secs\":{},\"wall_ns\":{},{}}}",
            te.event.label(),
            num(te.sim_secs),
            te.wall_ns,
            payload(&te.event)
        );
    }
    out
}

/// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object
/// format), viewable in `about:tracing` or Perfetto.
///
/// Timestamps are the *simulated* clock mapped to microseconds, so the
/// viewer shows the run on the simulation's own time axis.
/// [`Event::AdvanceSpan`]s become complete (`"X"`) slices; everything
/// else becomes an instant (`"i"`) event. Node up/down events land on
/// their own track (`tid` 2) so churn reads as a separate lane.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a TimedEvent>) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for te in events {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = num(te.sim_secs * 1e6);
        match te.event {
            Event::AdvanceSpan {
                start_secs,
                end_secs,
                ..
            } => {
                let dur = num(((end_secs - start_secs) * 1e6).max(0.0));
                let _ = write!(
                    out,
                    "{{\"name\":\"advance\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{dur},\"args\":{{{}}}}}",
                    num(start_secs * 1e6),
                    payload(&te.event)
                );
            }
            Event::NodeDown { .. } | Event::NodeUp { .. } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":2,\"ts\":{ts},\"args\":{{{}}}}}",
                    te.event.label(),
                    payload(&te.event)
                );
            }
            _ => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":{ts},\"args\":{{{}}}}}",
                    te.event.label(),
                    payload(&te.event)
                );
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GaugeDelta;
    use crate::json::{self, Value};
    use crate::reason::RejectReason;

    fn sample() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                sim_secs: 0.0,
                wall_ns: 10,
                event: Event::Submit {
                    seq: 0,
                    job: 7,
                    procs: 4,
                    estimate_secs: 120.0,
                    deadline_secs: 600.0,
                },
            },
            TimedEvent {
                sim_secs: 0.0,
                wall_ns: 20,
                event: Event::Decision {
                    seq: 0,
                    job: 7,
                    verdict: Verdict::Rejected(RejectReason::OverRisk),
                    audit: DecisionAudit {
                        best_fit_node: None,
                        gauge: Some(GaugeDelta {
                            key: "cluster_risk",
                            before: 0.8,
                            after: 0.8,
                        }),
                    },
                    latency_ns: 512,
                },
            },
            TimedEvent {
                sim_secs: 5.0,
                wall_ns: 30,
                event: Event::AdvanceSpan {
                    start_secs: 0.0,
                    end_secs: 5.0,
                    events: 1,
                },
            },
            TimedEvent {
                sim_secs: 5.0,
                wall_ns: 40,
                event: Event::NodeDown { node: 3 },
            },
        ]
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip_fields() {
        let text = jsonl(sample().iter());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let v = json::parse(lines[1]).expect("valid JSON");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("decision"));
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("rejected"));
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("over-risk"));
        assert_eq!(v.get("gauge").and_then(Value::as_str), Some("cluster_risk"));
        assert_eq!(v.get("latency_ns").and_then(Value::as_f64), Some(512.0));
    }

    #[test]
    fn chrome_trace_parses_and_spans_have_duration() {
        let text = chrome_trace(sample().iter());
        let v = json::parse(&text).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 4);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one complete event");
        assert_eq!(span.get("dur").and_then(Value::as_f64), Some(5e6));
        let churn = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("node_down"))
            .expect("node_down instant");
        assert_eq!(churn.get("tid").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn empty_input_is_still_valid() {
        let none = std::iter::empty::<&TimedEvent>();
        assert_eq!(jsonl(none), "");
        let none = std::iter::empty::<&TimedEvent>();
        let v = json::parse(&chrome_trace(none)).expect("valid JSON");
        assert_eq!(
            v.get("traceEvents")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(0.5), "0.5");
    }
}
