//! Stable machine-readable rejection causes.

/// Why an admission control turned a job away.
///
/// The set is closed and ordered: dashboards, the audit log and
/// `SimulationReport` breakdowns all key off [`RejectReason::code`],
/// which is a stable identifier — renaming a variant must not change
/// its code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The job failed submit-time validation (non-positive runtime,
    /// zero width, malformed deadline) and never reached a policy.
    InvalidJob,
    /// The job wants more processors than the cluster has in total; no
    /// amount of waiting or repair can ever place it.
    Width,
    /// The job fits the full machine but not the capacity that is
    /// currently up — a transient refusal caused by node failures.
    NodeDown,
    /// No node assignment satisfies the resource constraint (Libra's
    /// share test, or no best-fit candidate survived).
    NoFit,
    /// Admitting the job would push the policy's risk or
    /// schedulability measure past its bound (LibraRisk, QoPS).
    OverRisk,
    /// The job cannot meet its deadline even if started immediately —
    /// judged at dispatch (queued backends) or at requeue after a
    /// failure ate too much of the deadline window.
    Deadline,
}

impl RejectReason {
    /// Every reason, in stable report order.
    pub const ALL: [RejectReason; 6] = [
        RejectReason::InvalidJob,
        RejectReason::Width,
        RejectReason::NodeDown,
        RejectReason::NoFit,
        RejectReason::OverRisk,
        RejectReason::Deadline,
    ];

    /// Stable machine-readable code (used in JSONL, Prometheus labels
    /// and CSV columns).
    pub fn code(self) -> &'static str {
        match self {
            RejectReason::InvalidJob => "invalid-job",
            RejectReason::Width => "width",
            RejectReason::NodeDown => "node-down",
            RejectReason::NoFit => "no-fit",
            RejectReason::OverRisk => "over-risk",
            RejectReason::Deadline => "deadline",
        }
    }

    /// Position in [`RejectReason::ALL`] — index for fixed-size count
    /// arrays.
    pub fn index(self) -> usize {
        match self {
            RejectReason::InvalidJob => 0,
            RejectReason::Width => 1,
            RejectReason::NodeDown => 2,
            RejectReason::NoFit => 3,
            RejectReason::OverRisk => 4,
            RejectReason::Deadline => 5,
        }
    }

    /// Static registry counter key for this reason.
    pub fn counter_key(self) -> &'static str {
        match self {
            RejectReason::InvalidJob => "rms_rejected_invalid_job_total",
            RejectReason::Width => "rms_rejected_width_total",
            RejectReason::NodeDown => "rms_rejected_node_down_total",
            RejectReason::NoFit => "rms_rejected_no_fit_total",
            RejectReason::OverRisk => "rms_rejected_over_risk_total",
            RejectReason::Deadline => "rms_rejected_deadline_total",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = RejectReason::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), RejectReason::ALL.len());
    }
}
