//! Static-key metrics registry: counters, gauges, fixed-bucket
//! histograms, and a Prometheus-style text dump.
//!
//! Keys are `&'static str` so registration is allocation-free and a
//! lookup is a short linear scan that usually resolves on pointer
//! equality — a handful of nanoseconds for the dozen-odd keys the RMS
//! uses, with no hashing and no interior mutability.

use std::fmt::Write as _;

/// A fixed-bucket histogram: `bounds.len() + 1` cumulative-style
/// buckets (the last is the overflow bucket), plus sum and count for
/// the mean.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Upper bucket bounds (the final `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket observation counts; one longer than [`Histogram::bounds`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Rebuilds a histogram from raw parts (serializer round-trip).
    /// `bounds` must be one of the canonical static tables (see
    /// [`crate::keys::intern_bounds`]); `counts` must be one longer.
    pub fn from_parts(
        bounds: &'static [f64],
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    ) -> Result<Self, String> {
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "{} buckets for {} bounds",
                counts.len(),
                bounds.len()
            ));
        }
        Ok(Histogram {
            bounds,
            counts,
            sum,
            count,
        })
    }

    /// Upper-bound estimate of the `q`-quantile: the upper bound of
    /// the bucket the quantile lands in, linearly interpolated within
    /// the bucket. Observations past the last bound report the last
    /// finite bound (the table cannot resolve further); an empty
    /// histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, n) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += n;
            if cum >= target {
                let Some(&hi) = self.bounds.get(i) else {
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (target - prev) as f64 / (*n).max(1) as f64;
                return lo + (hi - lo) * frac;
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Folds another histogram into this one: bucket counts add
    /// pairwise, sum and count accumulate. The result is exactly the
    /// histogram a single registry would have produced from the union
    /// of both observation streams, so shard merges are order-clean.
    ///
    /// # Panics
    /// Panics when the bucket bounds differ — merging histograms with
    /// different bucketisations silently misbins, so it is refused.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The registry. Plain vectors keyed by `&'static str`; cloneable so
/// snapshots are cheap to hand out.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

fn find<T>(
    entries: &mut Vec<(&'static str, T)>,
    key: &'static str,
    new: impl FnOnce() -> T,
) -> usize {
    // `str` equality short-circuits on length and, for interned
    // statics, typically on the data pointer — cheap at this scale.
    match entries.iter().position(|(k, _)| *k == key) {
        Some(i) => i,
        None => {
            entries.push((key, new()));
            entries.len() - 1
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments a counter by one, registering it on first use.
    pub fn inc(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Adds `by` to a counter, registering it on first use.
    pub fn add(&mut self, key: &'static str, by: u64) {
        let i = find(&mut self.counters, key, || 0);
        self.counters[i].1 += by;
    }

    /// Sets a gauge, registering it on first use.
    pub fn set_gauge(&mut self, key: &'static str, value: f64) {
        let i = find(&mut self.gauges, key, || 0.0);
        self.gauges[i].1 = value;
    }

    /// Observes `value` into the fixed-bucket histogram under `key`,
    /// creating it with `bounds` on first use (later `bounds` are
    /// ignored — the first registration wins).
    pub fn observe(&mut self, key: &'static str, bounds: &'static [f64], value: f64) {
        let i = find(&mut self.histograms, key, || Histogram::new(bounds));
        self.histograms[i].1.observe(value);
    }

    /// Current counter value (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// The histogram under `key`, if any observation landed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Every counter, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// Every gauge, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().copied()
    }

    /// Every histogram, in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (*k, h))
    }

    /// Installs a deserialized histogram under `key`, replacing any
    /// existing one (registry restore is whole-state, not additive).
    pub fn restore_histogram(&mut self, key: &'static str, h: Histogram) {
        let i = find(&mut self.histograms, key, || Histogram::new(h.bounds));
        self.histograms[i].1 = h;
    }

    /// Folds another registry into this one, so per-shard registries
    /// combine into the fleet view: counters add, histograms merge
    /// bucketwise (see [`Histogram::merge`] — panics on mismatched
    /// bounds), and keys only one side knows are registered on the fly.
    ///
    /// Gauges are point-in-time samples with no meaningful sum: the
    /// merged-in value overwrites (last-merged-wins), matching
    /// [`Registry::set_gauge`]'s overwrite semantics. Counters and
    /// histograms are order-clean under merge; gauges deliberately are
    /// not — aggregate gauges across shards at the source (e.g. a
    /// submitted-weighted utilisation) rather than through `merge`.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(k, *v);
        }
        for (k, h) in &other.histograms {
            let i = find(&mut self.histograms, k, || Histogram::new(h.bounds));
            self.histograms[i].1.merge(h);
        }
    }

    /// Prometheus text exposition: `# HELP` (escaped per the grammar)
    /// and `# TYPE` headers, cumulative `_bucket{le=...}` lines for
    /// histograms, deterministic registration order. A histogram's
    /// `_sum`/`_count` samples ride under the single
    /// `# TYPE <k> histogram` family header — the exposition format
    /// forbids separate TYPE lines for them.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            write_help(&mut out, k);
            let _ = writeln!(out, "# TYPE {k} counter");
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            write_help(&mut out, k);
            let _ = writeln!(out, "# TYPE {k} gauge");
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, h) in &self.histograms {
            write_help(&mut out, k);
            let _ = writeln!(out, "# TYPE {k} histogram");
            let mut cumulative = 0u64;
            for (bound, n) in h.bounds.iter().zip(&h.counts) {
                cumulative += n;
                let _ = writeln!(out, "{k}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            cumulative += h.counts.last().copied().unwrap_or(0);
            let _ = writeln!(out, "{k}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{k}_sum {}", h.sum);
            let _ = writeln!(out, "{k}_count {}", h.count);
        }
        out
    }
}

/// Escapes HELP text per the exposition grammar: backslash first
/// (so escaped newlines don't double-escape), then newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn write_help(out: &mut String, key: &str) {
    if let Some(h) = crate::keys::help(key) {
        let _ = writeln!(out, "# HELP {key} {}", escape_help(h));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[1.0, 10.0, 100.0];

    #[test]
    fn counters_accumulate_and_register_lazily() {
        let mut r = Registry::new();
        assert_eq!(r.counter("a_total"), 0);
        r.inc("a_total");
        r.add("a_total", 4);
        assert_eq!(r.counter("a_total"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 0.25);
        assert_eq!(r.gauge("g"), Some(0.25));
    }

    #[test]
    fn histogram_buckets_partition_on_upper_bound() {
        let mut r = Registry::new();
        // le semantics: an observation equal to a bound lands in that bucket.
        for v in [0.5, 1.0, 5.0, 100.0, 1e6] {
            r.observe("h", BOUNDS, v);
        }
        let h = r.histogram("h").unwrap();
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - (0.5 + 1.0 + 5.0 + 100.0 + 1e6) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_buckets_but_overwrites_gauges() {
        let mut a = Registry::new();
        a.add("jobs_total", 3);
        a.set_gauge("util", 0.25);
        a.observe("lat", BOUNDS, 0.5);
        a.observe("lat", BOUNDS, 50.0);
        let mut b = Registry::new();
        b.add("jobs_total", 4);
        b.inc("only_b_total");
        b.set_gauge("util", 0.75);
        b.observe("lat", BOUNDS, 5.0);
        b.observe("only_b_hist", BOUNDS, 2.0);
        a.merge(&b);
        assert_eq!(a.counter("jobs_total"), 7);
        assert_eq!(a.counter("only_b_total"), 1, "new keys register on merge");
        assert_eq!(a.gauge("util"), Some(0.75), "last-merged gauge wins");
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
        assert_eq!(a.histogram("only_b_hist").unwrap().count(), 1);
    }

    #[test]
    fn merge_is_order_clean_for_counters_and_histograms() {
        let mk = |vals: &[f64], n: u64| {
            let mut r = Registry::new();
            r.add("c_total", n);
            for &v in vals {
                r.observe("h", BOUNDS, v);
            }
            r
        };
        let parts = [mk(&[0.5, 5.0], 2), mk(&[50.0], 1), mk(&[1e6, 1.0], 3)];
        let mut fwd = Registry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Registry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.counter("c_total"), rev.counter("c_total"));
        assert_eq!(
            fwd.histogram("h").unwrap().bucket_counts(),
            rev.histogram("h").unwrap().bucket_counts()
        );
        assert_eq!(
            fwd.histogram("h").unwrap().sum(),
            rev.histogram("h").unwrap().sum()
        );
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_refuses_mismatched_histogram_bounds() {
        const OTHER: &[f64] = &[2.0, 20.0];
        let mut a = Registry::new();
        a.observe("h", BOUNDS, 1.0);
        let mut b = Registry::new();
        b.observe("h", OTHER, 1.0);
        a.merge(&b);
    }

    #[test]
    fn help_text_escapes_backslash_then_newline() {
        assert_eq!(escape_help("plain text"), "plain text");
        assert_eq!(escape_help("line one\nline two"), "line one\\nline two");
        assert_eq!(escape_help("a\\b"), "a\\\\b");
        // Backslash-first ordering: a literal `\n` sequence in the
        // source must not collapse into an escaped newline.
        assert_eq!(escape_help("literal \\n\nreal"), "literal \\\\n\\nreal");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut r = Registry::new();
        for v in [0.5, 0.5, 5.0, 50.0] {
            r.observe("h", BOUNDS, v);
        }
        let h = r.histogram("h").unwrap();
        // 2 of 4 observations in (0, 1]: the median is the top of it.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-9);
        // 3rd observation: halfway through (1, 10].
        assert!((h.quantile(0.75) - 10.0).abs() < 1e-9 || h.quantile(0.75) > 1.0);
        assert!(h.quantile(1.0) <= 100.0);
        // Overflow-only tail reports the last finite bound.
        let mut o = Registry::new();
        o.observe("h", BOUNDS, 1e9);
        assert!((o.histogram("h").unwrap().quantile(0.99) - 100.0).abs() < 1e-9);
        // Empty histogram (possible via from_parts) reports 0.
        let empty = Histogram::from_parts(BOUNDS, vec![0; 4], 0.0, 0).unwrap();
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    /// Validates `text` against the Prometheus text exposition
    /// grammar: HELP/TYPE comment shape, samples belonging to the most
    /// recently declared family, histogram buckets cumulative with
    /// `+Inf == _count`, and exactly one TYPE per family.
    fn validate_exposition(text: &str) {
        let mut family: Option<(String, String)> = None;
        let mut seen_types: Vec<String> = Vec::new();
        let mut last_bucket: Option<u64> = None;
        let mut inf_bucket: Option<u64> = None;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in our exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has name and text");
                assert!(!name.is_empty() && !help.is_empty());
                assert!(!help.contains('\\') || help.contains("\\\\") || help.contains("\\n"));
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown TYPE kind {kind}"
                );
                assert!(
                    !seen_types.contains(&name.to_string()),
                    "duplicate TYPE for {name}"
                );
                seen_types.push(name.to_string());
                family = Some((name.to_string(), kind.to_string()));
                last_bucket = None;
                inf_bucket = None;
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment line {line}");
            let (sample, value) = line.rsplit_once(' ').expect("sample has a value");
            let name = sample.split('{').next().unwrap();
            let (fam, kind) = family.as_ref().expect("sample before any TYPE");
            match kind.as_str() {
                "counter" | "gauge" => {
                    assert_eq!(name, fam, "sample outside its family");
                    let _ = value.parse::<f64>().expect("numeric value");
                }
                "histogram" => {
                    assert!(
                        name == format!("{fam}_bucket")
                            || name == format!("{fam}_sum")
                            || name == format!("{fam}_count"),
                        "sample {name} outside histogram family {fam}"
                    );
                    if name.ends_with("_bucket") {
                        assert!(sample.contains("le=\""), "bucket sample needs an le label");
                        let n = value.parse::<u64>().expect("integer bucket count");
                        if let Some(prev) = last_bucket {
                            assert!(n >= prev, "bucket counts must be cumulative");
                        }
                        last_bucket = Some(n);
                        if sample.contains("le=\"+Inf\"") {
                            inf_bucket = Some(n);
                        }
                    } else if name.ends_with("_count") {
                        let n = value.parse::<u64>().expect("integer count");
                        assert_eq!(Some(n), inf_bucket, "+Inf bucket must equal _count");
                    } else {
                        let _ = value.parse::<f64>().expect("numeric sum");
                    }
                }
                k => panic!("unexpected kind {k}"),
            }
        }
    }

    #[test]
    fn exposition_matches_the_scrape_grammar() {
        let mut r = Registry::new();
        r.inc(crate::keys::DECISIONS);
        r.add("jobs_total", 41);
        r.set_gauge(crate::keys::UTILIZATION, 0.5);
        for v in [100.0, 700.0, 2e6] {
            r.observe(
                crate::keys::DECIDE_LATENCY,
                crate::keys::DECIDE_LATENCY_BOUNDS,
                v,
            );
        }
        let text = r.to_prometheus();
        validate_exposition(&text);
        // Keys with registered help get a HELP line before their TYPE.
        let help_at = text
            .find("# HELP rms_decisions_total")
            .expect("help line for a vocabulary key");
        let type_at = text.find("# TYPE rms_decisions_total").unwrap();
        assert!(help_at < type_at);
        // Exactly one TYPE line covers the whole histogram family.
        assert_eq!(text.matches("# TYPE rms_decide_latency_ns").count(), 1);
        assert!(text.contains("rms_decide_latency_ns_sum"));
        assert!(text.contains("rms_decide_latency_ns_count 3"));
    }

    #[test]
    fn prometheus_dump_has_cumulative_buckets() {
        let mut r = Registry::new();
        r.inc("jobs_total");
        r.set_gauge("util", 0.5);
        r.observe("lat", BOUNDS, 0.5);
        r.observe("lat", BOUNDS, 50.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 1"));
        assert!(text.contains("util 0.5"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_count 2"));
    }
}
