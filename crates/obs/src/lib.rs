//! Zero-dependency observability for the online RMS.
//!
//! The simulation core answers *what* happened (accepted, rejected,
//! fulfilled); this crate answers *why* and *when*, while traffic is
//! still flowing. It deliberately depends on nothing — not even the
//! workspace's own `sim` crate — so every layer of the stack can emit
//! events into it without dependency cycles, and so the whole thing
//! stays trivially auditable.
//!
//! Three pieces:
//!
//! 1. **[`Recorder`]** — the hook trait the RMS calls at every
//!    interesting instant. [`NoopRecorder`] (the default) compiles the
//!    hooks down to a single branch; [`TraceRecorder`] keeps a bounded
//!    ring of structured [`Event`]s, dropping the *oldest* entries on
//!    overflow and counting the drops.
//! 2. **[`Registry`]** — a static-key metrics registry (counters,
//!    gauges, fixed-bucket histograms) with a Prometheus-style text
//!    dump. The ring recorder owns one and feeds it from the event
//!    stream.
//! 3. **Exporters** ([`export`]) — JSONL event log and Chrome
//!    `trace_event` JSON (open in `about:tracing` / Perfetto), plus a
//!    tiny JSON parser ([`json`]) so exported output can be validated
//!    round-trip without serde.
//!
//! The contract with the core is strict: recording must be
//! *behaviourally inert*. A recorder observes decisions, it never
//! participates in them — the core pins this with a bitwise-identity
//! property test over every policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod keys;
pub mod phase;
pub mod reason;
pub mod recorder;
pub mod registry;
pub mod serve;

pub use event::{DecisionAudit, Event, GaugeDelta, ResolvedKind, TimedEvent, Verdict};
pub use reason::RejectReason;
pub use recorder::{
    merge_traces, MergedTrace, NoopRecorder, Recorder, RingSnapshot, TraceRecorder,
};
pub use registry::{Histogram, Registry};
pub use serve::{HealthReport, ShardHealth, TelemetryHub, TelemetryServer};
