//! Zero-dependency HTTP/1.1 telemetry server.
//!
//! A [`TelemetryHub`] is the shared mailbox between a driving loop and
//! the serving threads: the driver *publishes* (rendered metrics, a
//! health report, a ring snapshot) and *broadcasts* live event lines;
//! a [`TelemetryServer`] accepts scrape connections on a std
//! [`TcpListener`] and answers from whatever the hub holds. Nothing
//! here touches the engine — the server can only ever see what the
//! driver chose to publish, so telemetry stays behaviourally inert by
//! construction.
//!
//! Endpoints (all `GET`, `Connection: close`, one request per
//! connection):
//!
//! - `/metrics` — Prometheus text exposition
//!   ([`crate::Registry::to_prometheus`]).
//! - `/healthz` — JSON shard liveness + last-advance watermark; `503`
//!   until the driver publishes a healthy report.
//! - `/snapshot` — the recorder ring as JSONL
//!   ([`crate::TraceRecorder::to_jsonl`]).
//! - `/events` — a live JSONL stream over chunked transfer encoding,
//!   fed from [`TelemetryHub::broadcast`]; ends when the hub closes.
//! - `/shutdown` — closes the hub (stream ends, the driving loop's
//!   linger exits) and answers `200`.
//!
//! The request parser is a pure function over the accumulated bytes —
//! fragmented reads, oversized request heads and malformed lines are
//! all decided by [`parse_request`], which keeps it property-testable
//! without sockets.

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// Longest request head (request line + headers) we accept, bytes.
pub const MAX_REQUEST_BYTES: usize = 8_192;

/// A parsed request line — all this server routes on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `HEAD`, ...), as sent.
    pub method: String,
    /// Request target (`/metrics`, ...), as sent.
    pub target: String,
}

/// Why a request head was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpParseError {
    /// The head exceeded [`MAX_REQUEST_BYTES`] without terminating
    /// (answered `431 Request Header Fields Too Large`).
    RequestTooLarge,
    /// The request line is not `METHOD SP TARGET SP HTTP/x.y`
    /// (answered `400 Bad Request`).
    Malformed,
}

/// Incremental request-head parser. Call with everything read so far:
/// `Ok(None)` means "head not complete yet, keep reading";
/// `Ok(Some(_))` means the head terminated (`\r\n\r\n`, or bare
/// `\n\n` for lenient clients) and the request line parsed.
pub fn parse_request(buf: &[u8]) -> Result<Option<HttpRequest>, HttpParseError> {
    let head_end = find_head_end(buf);
    let Some(head_len) = head_end else {
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(HttpParseError::RequestTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_REQUEST_BYTES {
        return Err(HttpParseError::RequestTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len]).map_err(|_| HttpParseError::Malformed)?;
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpParseError::Malformed),
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpParseError::Malformed);
    }
    Ok(Some(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
    }))
}

/// Byte offset just past the head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Per-shard liveness as seen by the driving loop.
#[derive(Clone, Debug)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Jobs resident or queued on the shard.
    pub in_flight: u64,
    /// Jobs routed to the shard so far.
    pub submitted: u64,
    /// Seconds of simulated time since the shard last advanced
    /// relative to the fleet watermark (0 = at the watermark).
    pub lag_secs: f64,
}

/// What `/healthz` serves: fleet liveness + last-advance watermark.
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    /// Overall verdict; `false` serves as HTTP 503.
    pub ok: bool,
    /// The fleet's last-advance watermark (simulated hours).
    pub last_advance: f64,
    /// Per-shard detail.
    pub shards: Vec<ShardHealth>,
}

impl HealthReport {
    /// Hand-rolled JSON rendering (the crate has no serializer dep).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"ok\":{},\"last_advance\":{},\"shards\":[",
            self.ok,
            num(self.last_advance)
        );
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"in_flight\":{},\"submitted\":{},\"lag_secs\":{}}}",
                s.shard,
                s.in_flight,
                s.submitted,
                num(s.lag_secs)
            );
        }
        out.push_str("]}");
        out
    }
}

/// JSON number rendering: non-finite becomes `null` (JSON has no
/// NaN/Inf), matching the exporters in [`crate::export`].
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[derive(Default)]
struct HubState {
    metrics_text: String,
    health: Option<HealthReport>,
    snapshot_jsonl: String,
    subscribers: Vec<mpsc::Sender<String>>,
}

/// The shared publish/serve mailbox (see module docs). All methods
/// take `&self`; the hub is meant to live in an [`Arc`] shared between
/// the driving loop and the server threads.
#[derive(Default)]
pub struct TelemetryHub {
    state: Mutex<HubState>,
    closed: AtomicBool,
}

impl TelemetryHub {
    /// A fresh hub with nothing published.
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Renders `reg` and makes it the `/metrics` payload.
    pub fn publish_registry(&self, reg: &Registry) {
        let text = reg.to_prometheus();
        self.lock().metrics_text = text;
    }

    /// Current `/metrics` payload (empty until first publish).
    pub fn metrics_text(&self) -> String {
        self.lock().metrics_text.clone()
    }

    /// Makes `report` the `/healthz` payload.
    pub fn set_health(&self, report: HealthReport) {
        self.lock().health = Some(report);
    }

    /// Makes `jsonl` the `/snapshot` payload.
    pub fn publish_snapshot(&self, jsonl: String) {
        self.lock().snapshot_jsonl = jsonl;
    }

    /// Fans one event line out to every live `/events` subscriber;
    /// subscribers whose connection died are dropped here.
    pub fn broadcast(&self, line: &str) {
        let mut st = self.lock();
        st.subscribers
            .retain(|tx| tx.send(line.to_string()).is_ok());
    }

    /// Registers a `/events` subscriber.
    pub fn subscribe(&self) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        self.lock().subscribers.push(tx);
        rx
    }

    /// Closes the hub: `/events` streams end, [`TelemetryHub::closed`]
    /// turns true (the driving loop's linger watches it).
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.lock().subscribers.clear();
    }

    /// Whether [`TelemetryHub::close`] has run.
    pub fn closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// The listener thread + its stop signal.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hub: Arc<TelemetryHub>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on its own thread. Each connection is handled on a
    /// short-lived thread of its own, so a stalled or half-open client
    /// can never wedge the accept loop.
    pub fn bind(addr: &str, hub: Arc<TelemetryHub>) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_hub = Arc::clone(&hub);
        let accept_thread = std::thread::Builder::new()
            .name("telemetry-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let hub = Arc::clone(&accept_hub);
                    let _ = std::thread::Builder::new()
                        .name("telemetry-conn".into())
                        .spawn(move || handle_connection(stream, &hub));
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            hub,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes the hub, and joins the accept thread.
    /// In-flight connection threads finish their (short) responses on
    /// their own.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        self.hub.close();
        // `incoming()` blocks in accept: poke it awake so the stop
        // flag is observed.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_connection(mut stream: TcpStream, hub: &Arc<TelemetryHub>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let request = loop {
        match parse_request(&buf) {
            Ok(Some(req)) => break req,
            Ok(None) => {}
            Err(HttpParseError::RequestTooLarge) => {
                respond(&mut stream, 431, "text/plain", "request head too large\n");
                return;
            }
            Err(HttpParseError::Malformed) => {
                respond(&mut stream, 400, "text/plain", "malformed request\n");
                return;
            }
        }
        match stream.read(&mut chunk) {
            // EOF before a complete head: client went away; nothing
            // to answer.
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Read timeout or reset: drop the connection.
            Err(_) => return,
        }
    };
    if request.method != "GET" {
        respond(&mut stream, 405, "text/plain", "only GET is served\n");
        return;
    }
    match request.target.as_str() {
        "/metrics" => {
            let body = hub.metrics_text();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            let health = hub.lock().health.clone();
            let (status, body) = match health {
                Some(h) => (if h.ok { 200 } else { 503 }, h.to_json()),
                None => (503, HealthReport::default().to_json()),
            };
            respond(&mut stream, status, "application/json", &body);
        }
        "/snapshot" => {
            let body = hub.lock().snapshot_jsonl.clone();
            respond(&mut stream, 200, "application/x-ndjson", &body);
        }
        "/events" => stream_events(stream, hub),
        "/shutdown" => {
            respond(&mut stream, 200, "text/plain", "shutting down\n");
            hub.close();
        }
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// `/events`: chunked transfer encoding, one chunk per broadcast line,
/// until the hub closes or the client hangs up.
fn stream_events(mut stream: TcpStream, hub: &Arc<TelemetryHub>) {
    let rx = hub.subscribe();
    let head = "HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(line) => {
                let payload = format!("{line}\n");
                let chunk = format!("{:x}\r\n{payload}\r\n", payload.len());
                if stream.write_all(chunk.as_bytes()).is_err() || stream.flush().is_err() {
                    // Client went away; the hub drops our sender on
                    // its next broadcast.
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if hub.closed() {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    let _ = stream.write_all(b"0\r\n\r\n");
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_fragmented_reads() {
        let full = b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n";
        for cut in 0..full.len() {
            let got = parse_request(&full[..cut]).expect("prefix never malformed");
            assert!(got.is_none(), "incomplete head at {cut} bytes");
        }
        let req = parse_request(full).unwrap().expect("complete head");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
    }

    #[test]
    fn parser_accepts_bare_lf_terminators() {
        let req = parse_request(b"GET /healthz HTTP/1.0\n\n")
            .unwrap()
            .expect("lenient terminator");
        assert_eq!(req.target, "/healthz");
    }

    #[test]
    fn parser_rejects_oversized_and_malformed_heads() {
        let huge = vec![b'a'; MAX_REQUEST_BYTES + 1];
        assert_eq!(
            parse_request(&huge),
            Err(HttpParseError::RequestTooLarge),
            "unterminated head past the cap"
        );
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x FTP/1.1\r\n\r\n",
            b" /x HTTP/1.1\r\n\r\n",
            b"\xff\xfe /x HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(
                parse_request(bad),
                Err(HttpParseError::Malformed),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn health_report_renders_json() {
        let report = HealthReport {
            ok: true,
            last_advance: 12.5,
            shards: vec![
                ShardHealth {
                    shard: 0,
                    in_flight: 3,
                    submitted: 41,
                    lag_secs: 0.0,
                },
                ShardHealth {
                    shard: 1,
                    in_flight: 0,
                    submitted: 40,
                    lag_secs: f64::NAN,
                },
            ],
        };
        let json = report.to_json();
        let value = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(value.get("ok").and_then(|v| v.as_bool()), Some(true));
        let shards = value.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[0].get("submitted").and_then(|v| v.as_f64()),
            Some(41.0)
        );
        assert!(shards[1].get("lag_secs").unwrap().is_null());
    }

    #[test]
    fn hub_broadcast_drops_dead_subscribers() {
        let hub = TelemetryHub::new();
        let rx = hub.subscribe();
        let dead = hub.subscribe();
        drop(dead);
        hub.broadcast("{\"seq\":1}");
        assert_eq!(rx.recv().unwrap(), "{\"seq\":1}");
        assert_eq!(hub.lock().subscribers.len(), 1, "dead subscriber pruned");
        hub.close();
        assert!(hub.closed());
        assert!(rx.recv().is_err(), "close disconnects subscribers");
    }
}
