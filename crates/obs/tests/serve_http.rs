//! Robustness coverage for the telemetry server: the pure request
//! parser under property testing, and the socket plumbing under
//! adversarial clients (early disconnects, oversized heads, unknown
//! paths) — none of which may wedge the accept loop.

use obs::serve::{parse_request, HttpParseError, MAX_REQUEST_BYTES};
use obs::{HealthReport, Registry, ShardHealth, TelemetryHub, TelemetryServer};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Incrementality: a request delivered in arbitrary fragments must
    // say "incomplete" for every strict prefix and parse identically
    // to one-shot delivery once the terminator arrives.
    #[test]
    fn parser_is_fragmentation_invariant(
        path in "[a-z/]{0,24}",
        cuts in proptest::collection::vec(0usize..64, 0..6),
    ) {
        let target = format!("/{path}");
        let full = format!("GET {target} HTTP/1.1\r\nhost: t\r\n\r\n");
        let bytes = full.as_bytes();
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % bytes.len()).collect();
        boundaries.sort_unstable();
        let mut buf = Vec::new();
        let mut prev = 0;
        for b in boundaries {
            buf.extend_from_slice(&bytes[prev..b]);
            prev = b;
            if buf.len() < bytes.len() {
                prop_assert_eq!(parse_request(&buf), Ok(None), "prefix must be incomplete");
            }
        }
        buf.extend_from_slice(&bytes[prev..]);
        let fragmented = parse_request(&buf).expect("complete head").expect("parsed");
        let oneshot = parse_request(bytes).unwrap().unwrap();
        prop_assert_eq!(&fragmented, &oneshot);
        prop_assert_eq!(fragmented.target, target);
    }

    // Totality: arbitrary byte soup never panics and never fabricates
    // a request out of an unterminated head.
    #[test]
    fn parser_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match parse_request(&bytes) {
            Ok(Some(req)) => {
                prop_assert!(!req.method.is_empty());
                prop_assert!(!req.target.is_empty());
            }
            Ok(None) => prop_assert!(bytes.len() <= MAX_REQUEST_BYTES),
            Err(_) => {}
        }
    }

    // An unterminated head must flip to RequestTooLarge exactly when
    // it crosses the cap, no matter what the bytes look like.
    #[test]
    fn oversized_heads_are_rejected(extra in 1usize..64) {
        let junk = vec![b'x'; MAX_REQUEST_BYTES + extra];
        prop_assert_eq!(parse_request(&junk), Err(HttpParseError::RequestTooLarge));
    }
}

fn hub_with_payloads() -> Arc<TelemetryHub> {
    let hub = Arc::new(TelemetryHub::new());
    let mut reg = Registry::new();
    reg.add(obs::keys::DECISIONS, 7);
    hub.publish_registry(&reg);
    hub.set_health(HealthReport {
        ok: true,
        last_advance: 24.0,
        shards: vec![ShardHealth {
            shard: 0,
            in_flight: 1,
            submitted: 7,
            lag_secs: 0.0,
        }],
    });
    hub.publish_snapshot("{\"seq\":1}\n".to_string());
    hub
}

fn get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn endpoints_serve_and_survive_rude_clients() {
    let hub = hub_with_payloads();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.local_addr();

    // Rude clients first: if any of these wedged the accept loop, the
    // well-formed requests below would hang and the read timeout
    // would fail the test.
    // 1. Connect and vanish without sending a byte.
    drop(TcpStream::connect(addr).expect("connect"));
    // 2. Send half a request line, then hang up.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /met").unwrap();
    }
    // 3. An oversized head gets 431.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let junk = vec![b'a'; MAX_REQUEST_BYTES + 100];
        // The server may reset mid-write once it answers; that still
        // must not poison the listener.
        let _ = s.write_all(&junk);
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.is_empty() || out.starts_with("HTTP/1.1 431"), "{out}");
    }

    let metrics = get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    assert!(metrics.contains("rms_decisions_total 7"));

    let health = get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    let body = health.split("\r\n\r\n").nth(1).expect("body");
    let json = obs::json::parse(body).expect("healthz is valid JSON");
    assert_eq!(json.get("ok").and_then(|v| v.as_bool()), Some(true));

    let snapshot = get(addr, "/snapshot");
    assert!(snapshot.contains("{\"seq\":1}"));

    assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

    // Malformed request line and wrong method.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    server.shutdown();
    assert!(hub.closed(), "shutdown closes the hub");
}

#[test]
fn events_stream_is_chunked_and_ends_on_close() {
    let hub = hub_with_payloads();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET /events HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();

    // Broadcast until the subscriber is registered and a line lands —
    // subscription happens on the connection thread, so the first few
    // broadcasts may race past it harmlessly.
    let publisher = {
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || {
            for _ in 0..200 {
                hub.broadcast("{\"seq\":42,\"outcome\":\"fulfilled\"}");
                std::thread::sleep(Duration::from_millis(5));
                if hub.closed() {
                    break;
                }
            }
        })
    };

    let mut raw = Vec::new();
    let mut chunk = [0u8; 512];
    let text = loop {
        let n = stream.read(&mut chunk).expect("stream read");
        assert!(n > 0, "stream ended before a chunk arrived");
        raw.extend_from_slice(&chunk[..n]);
        let text = String::from_utf8_lossy(&raw).to_string();
        if text.contains("\"seq\":42") {
            break text;
        }
    };
    assert!(text.contains("transfer-encoding: chunked"), "{text}");
    // A chunk is `<hex len>\r\n<payload>\r\n`; the payload is one
    // JSONL line.
    let body = text.split("\r\n\r\n").nth(1).expect("chunked body");
    let size_line = body.split("\r\n").next().expect("chunk size line");
    let declared = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
    assert_eq!(declared, "{\"seq\":42,\"outcome\":\"fulfilled\"}\n".len());

    // Closing the hub must terminate the stream with the final chunk.
    hub.close();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain to end");
    raw.extend_from_slice(&rest);
    let full = String::from_utf8_lossy(&raw);
    assert!(full.ends_with("0\r\n\r\n"), "terminating chunk: {full}");
    publisher.join().unwrap();
    server.shutdown();
}
