//! Regression pin for the Chrome `trace_event` export through the
//! full recorder path: `AdvanceSpan` ring entries must come out as
//! complete-duration events (`"ph":"X"` with a `dur`), not instants,
//! so `about:tracing` / Perfetto draw real span widths. Validated
//! round-trip with the crate's own JSON parser — no serde.

use obs::json::{self, Value};
use obs::{Event, Recorder, TraceRecorder};

fn recorded() -> TraceRecorder {
    let mut rec = TraceRecorder::new(64);
    rec.record(
        0.0,
        Event::Submit {
            seq: 0,
            job: 1,
            procs: 2,
            estimate_secs: 60.0,
            deadline_secs: 600.0,
        },
    );
    // Two back-to-back advance spans with different widths, plus a
    // churn instant between them.
    rec.record(
        3_600.0,
        Event::AdvanceSpan {
            start_secs: 0.0,
            end_secs: 3_600.0,
            events: 1,
        },
    );
    rec.record(3_600.0, Event::NodeDown { node: 0 });
    rec.record(
        5_400.0,
        Event::AdvanceSpan {
            start_secs: 3_600.0,
            end_secs: 5_400.0,
            events: 0,
        },
    );
    rec
}

#[test]
fn advance_spans_round_trip_as_complete_events() {
    let rec = recorded();
    let text = rec.to_chrome_trace();
    let doc = json::parse(&text).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), 4);

    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert_eq!(spans.len(), 2, "every AdvanceSpan is a complete event");
    for span in &spans {
        assert_eq!(span.get("name").and_then(Value::as_str), Some("advance"));
        assert!(
            span.get("dur").and_then(Value::as_f64).unwrap_or(-1.0) > 0.0,
            "complete events carry a positive dur"
        );
        // ts + dur = the span's end: chrome traces are microseconds of
        // simulated time in this exporter.
        let ts = span.get("ts").and_then(Value::as_f64).unwrap();
        let dur = span.get("dur").and_then(Value::as_f64).unwrap();
        assert!(ts >= 0.0 && ts + dur <= 5_400.0 * 1e6 + 1.0);
    }
    // Widths reflect the simulated span, not a shared constant.
    let durs: Vec<f64> = spans
        .iter()
        .map(|s| s.get("dur").and_then(Value::as_f64).unwrap())
        .collect();
    assert!((durs[0] - 3_600.0 * 1e6).abs() < 1.0, "{durs:?}");
    assert!((durs[1] - 1_800.0 * 1e6).abs() < 1.0, "{durs:?}");

    // Instant events stay instants ("i"), on their own track.
    let down = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("node_down"))
        .expect("churn instant present");
    assert_eq!(down.get("ph").and_then(Value::as_str), Some("i"));
    assert!(down.get("dur").is_none());
}

#[test]
fn jsonl_and_chrome_trace_agree_on_span_count() {
    let rec = recorded();
    let jsonl = rec.to_jsonl();
    let advance_lines = jsonl
        .lines()
        .map(|l| json::parse(l).expect("valid JSONL line"))
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("advance"))
        .count();
    let chrome = json::parse(&rec.to_chrome_trace()).unwrap();
    let complete = chrome
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    assert_eq!(advance_lines, complete, "both exporters see every span");
}
