//! Robustness coverage for the zero-dep JSON parser and the metrics
//! registry's merge semantics.
//!
//! The parser feeds CI smoke steps and (via checkpoint manifests) crash
//! recovery, so it must be total: any byte soup yields `Ok` or a
//! structured `Err`, never a panic. The registry's merge has two
//! deliberate sharp edges — histogram bounds mismatches are *loud*
//! (panic rather than silently misbin) and gauges are last-write-wins —
//! pinned here from outside the crate.

use obs::json::{self, Value};
use obs::Registry;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Totality over JSON-flavoured character soup: whatever the input,
    // the parser returns a Result. `catch_unwind` turns any panic into
    // a test failure with the offending input attached.
    #[test]
    fn parser_never_panics_on_arbitrary_strings(
        input in "[\\[\\]{}:,\"\\\\eEuntfr0-9a-f.+ \t\n-]{0,96}",
    ) {
        let result = catch_unwind(AssertUnwindSafe(|| json::parse(&input)));
        prop_assert!(result.is_ok(), "parser panicked on {input:?}");
    }

    // Totality over arbitrary bytes squeezed through lossy UTF-8
    // conversion — covers invalid-UTF-8-adjacent shapes (replacement
    // chars, truncated multibyte runs) that `.*` rarely generates.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let input = String::from_utf8_lossy(&bytes);
        let result = catch_unwind(AssertUnwindSafe(|| json::parse(&input)));
        prop_assert!(result.is_ok(), "parser panicked on {input:?}");
    }

    // JSON-flavoured fragments: slice and splice a valid document at
    // arbitrary points so the parser walks deep into plausible
    // structure before hitting the corruption.
    #[test]
    fn parser_never_panics_on_spliced_documents(
        cut_a in 0usize..80,
        cut_b in 0usize..80,
        filler in "[\\[\\]{}:,\"\\\\eu0-9tfn. -]{0,12}",
    ) {
        // Pure ASCII so every byte index is a char boundary.
        let doc = r#"{"a": [1, -2.5e3, true], "b": {"c": null, "s": "x\nyz"}}"#;
        let a = cut_a.min(doc.len());
        let b = cut_b.min(doc.len());
        let mut input = String::new();
        input.push_str(&doc[..a.min(b)]);
        input.push_str(&filler);
        input.push_str(&doc[a.max(b)..]);
        let result = catch_unwind(AssertUnwindSafe(|| json::parse(&input)));
        prop_assert!(result.is_ok(), "parser panicked on {input:?}");
    }

    // Valid documents still parse after the fuzz shapes above are
    // ruled panic-free (guards against a parser that "never panics"
    // because it rejects everything).
    #[test]
    fn parser_accepts_roundtrippable_numbers(n in -1e12f64..1e12) {
        let doc = format!("{{\"v\": {n}}}");
        let v = json::parse(&doc).expect("valid document");
        let got = v.get("v").and_then(Value::as_f64).expect("number");
        prop_assert_eq!(got.to_bits(), n.to_bits());
    }
}

#[test]
fn merge_bounds_mismatch_is_loud_not_silent() {
    const A: &[f64] = &[1.0, 10.0];
    const B: &[f64] = &[2.0, 20.0];
    let mut left = Registry::new();
    left.observe("h", A, 5.0);
    let mut right = Registry::new();
    right.observe("h", B, 5.0);
    let err = catch_unwind(AssertUnwindSafe(|| left.merge(&right)))
        .expect_err("mismatched bounds must refuse to merge");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("different bucket bounds"),
        "panic message should name the cause, got {msg:?}"
    );
}

#[test]
fn merge_same_bounds_different_statics_is_fine() {
    // Two distinct statics with equal contents must merge (the check is
    // by value, not by pointer).
    const A: &[f64] = &[1.0, 10.0];
    const B: &[f64] = &[1.0, 10.0];
    let mut left = Registry::new();
    left.observe("h", A, 0.5);
    let mut right = Registry::new();
    right.observe("h", B, 5.0);
    left.merge(&right);
    assert_eq!(left.histogram("h").unwrap().count(), 2);
}

#[test]
fn gauge_merge_is_last_write_wins_across_a_chain() {
    let mk = |v: f64| {
        let mut r = Registry::new();
        r.set_gauge("util", v);
        r
    };
    let mut acc = mk(0.1);
    acc.merge(&mk(0.9));
    acc.merge(&mk(0.4));
    assert_eq!(
        acc.gauge("util"),
        Some(0.4),
        "the last merged-in gauge value wins, not the max or sum"
    );
    // A merge from a registry without the gauge leaves it untouched.
    acc.merge(&Registry::new());
    assert_eq!(acc.gauge("util"), Some(0.4));
}

#[test]
fn key_interning_roundtrips_the_closed_vocabulary() {
    for key in [
        obs::keys::DECISIONS,
        obs::keys::UTILIZATION,
        obs::keys::DECIDE_LATENCY,
        "obs_events_dropped_total",
        "queue_depth",
        "peak_share",
        "cluster_risk",
    ] {
        assert_eq!(obs::keys::intern(key), Some(key));
    }
    for reason in obs::RejectReason::ALL {
        assert_eq!(
            obs::keys::intern(reason.counter_key()),
            Some(reason.counter_key())
        );
    }
    assert_eq!(obs::keys::intern("not_one_of_ours"), None);
    assert_eq!(
        obs::keys::intern_bounds(obs::keys::SHARE_BOUNDS),
        Some(obs::keys::SHARE_BOUNDS)
    );
    assert_eq!(obs::keys::intern_bounds(&[12.5]), None);
}
