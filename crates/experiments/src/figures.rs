//! The paper's figures (and our ablations) as sweep definitions.
//!
//! Every figure produces four panels exactly as printed in the paper:
//! (a)/(b) % of jobs with deadlines fulfilled under accurate / trace
//! estimates, (c)/(d) average slowdown under accurate / trace estimates —
//! except Figure 4, whose panels contrast 20 % vs 80 % high-urgency jobs
//! across the inaccuracy axis.

use crate::scenario::{EstimateRegime, Scenario};
use crate::sweep::{default_threads, run_sweep, SweepOutcome};
use librisk::PolicyKind;
use metrics::{Series, Table};
use workload::params;

/// Shared knobs for regenerating a figure.
#[derive(Clone, Debug)]
pub struct FigureConfig {
    /// Jobs per trace (paper: 3000).
    pub jobs: usize,
    /// Seeds to average over (the paper uses the single real trace; we
    /// default to three seeds and report the mean).
    pub seeds: Vec<u64>,
    /// Worker threads.
    pub threads: usize,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            jobs: params::TRACE_JOBS,
            seeds: vec![1, 2, 3],
            threads: default_threads(),
        }
    }
}

impl FigureConfig {
    /// A fast configuration for smoke tests and benches.
    pub fn quick() -> Self {
        FigureConfig {
            jobs: 300,
            seeds: vec![1],
            threads: default_threads(),
        }
    }
}

/// One panel of a figure: a named metric over several policy curves.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Panel label, e.g. `(b) Actual runtime estimate from trace`.
    pub label: String,
    /// X-axis label.
    pub x_label: String,
    /// Metric name (y-axis).
    pub metric: String,
    /// One curve per policy.
    pub series: Vec<Series>,
}

impl Panel {
    /// Renders the panel as an ASCII chart (fixed 64×14 canvas).
    pub fn to_chart(&self) -> String {
        let refs: Vec<&Series> = self.series.iter().collect();
        metrics::chart::render(
            &format!("{} — {}", self.label, self.metric),
            &self.x_label,
            &refs,
            64,
            14,
            self.metric.contains('%'),
        )
    }

    /// Renders the panel as a standalone SVG figure.
    pub fn to_svg(&self) -> String {
        let refs: Vec<&Series> = self.series.iter().collect();
        metrics::svg::render(
            &refs,
            &metrics::svg::SvgOptions {
                title: self.label.clone(),
                x_label: self.x_label.clone(),
                y_label: self.metric.clone(),
                zero_based: self.metric.contains('%'),
                ..Default::default()
            },
        )
    }

    /// Renders the panel as a table: one row per abscissa, one column per
    /// policy.
    pub fn to_table(&self) -> Table {
        let mut headers: Vec<&str> = vec![self.x_label.as_str()];
        for s in &self.series {
            headers.push(s.name());
        }
        let mut table = Table::new(format!("{} — {}", self.label, self.metric), &headers);
        if let Some(first) = self.series.first() {
            for (x, _) in first.mean_points() {
                let mut row = vec![metrics::table::fmt_f(x, 2)];
                for s in &self.series {
                    let y = s.y_at(x).unwrap_or(f64::NAN);
                    row.push(metrics::table::fmt_f(y, 2));
                }
                table.push_row(row);
            }
        }
        table
    }
}

/// A figure: a set of panels.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier, e.g. `fig1`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The panels, in print order.
    pub panels: Vec<Panel>,
}

fn four_panels(
    x_label: &str,
    accurate: SweepOutcome,
    trace: SweepOutcome,
    regime_a: &str,
    regime_b: &str,
) -> Vec<Panel> {
    vec![
        Panel {
            label: format!("(a) {regime_a}"),
            x_label: x_label.to_string(),
            metric: "% of jobs with deadlines fulfilled".to_string(),
            series: accurate.fulfilled.clone(),
        },
        Panel {
            label: format!("(b) {regime_b}"),
            x_label: x_label.to_string(),
            metric: "% of jobs with deadlines fulfilled".to_string(),
            series: trace.fulfilled.clone(),
        },
        Panel {
            label: format!("(c) {regime_a}"),
            x_label: x_label.to_string(),
            metric: "average slowdown".to_string(),
            series: accurate.slowdown,
        },
        Panel {
            label: format!("(d) {regime_b}"),
            x_label: x_label.to_string(),
            metric: "average slowdown".to_string(),
            series: trace.slowdown,
        },
    ]
}

fn accurate_vs_trace_figure(
    id: &str,
    title: &str,
    x_label: &str,
    cfg: &FigureConfig,
    make_scenario: impl Fn(f64) -> Scenario,
    xs: &[f64],
) -> Figure {
    let build_points = |regime: EstimateRegime| -> Vec<(f64, Scenario)> {
        xs.iter()
            .map(|&x| {
                let mut s = make_scenario(x);
                s.jobs = cfg.jobs;
                s.estimates = regime;
                (x, s)
            })
            .collect()
    };
    let accurate = run_sweep(
        &build_points(EstimateRegime::Accurate),
        &PolicyKind::PAPER,
        &cfg.seeds,
        cfg.threads,
    );
    let trace = run_sweep(
        &build_points(EstimateRegime::Trace),
        &PolicyKind::PAPER,
        &cfg.seeds,
        cfg.threads,
    );
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        panels: four_panels(
            x_label,
            accurate,
            trace,
            "Accurate runtime estimate",
            "Actual runtime estimate from trace",
        ),
    }
}

/// Figure 1: impact of varying workload (arrival delay factor).
pub fn fig1(cfg: &FigureConfig) -> Figure {
    accurate_vs_trace_figure(
        "fig1",
        "Impact of varying workload",
        "Arrival Delay Factor",
        cfg,
        |x| Scenario {
            arrival_delay_factor: x,
            ..Default::default()
        },
        &params::FIG1_ARRIVAL_DELAY_FACTORS,
    )
}

/// Figure 2: impact of varying deadline high:low ratio.
pub fn fig2(cfg: &FigureConfig) -> Figure {
    accurate_vs_trace_figure(
        "fig2",
        "Impact of varying deadline high:low ratio",
        "Deadline High:Low Ratio",
        cfg,
        |x| Scenario {
            deadline_ratio: x,
            ..Default::default()
        },
        &params::FIG2_DEADLINE_RATIOS,
    )
}

/// Figure 3: impact of varying the proportion of high-urgency jobs.
pub fn fig3(cfg: &FigureConfig) -> Figure {
    accurate_vs_trace_figure(
        "fig3",
        "Impact of varying high urgency jobs",
        "% of High Urgency Jobs",
        cfg,
        |x| Scenario {
            high_urgency_pct: x,
            ..Default::default()
        },
        &params::FIG3_HIGH_URGENCY_PCTS,
    )
}

/// Figure 4: impact of varying inaccurate runtime estimates, contrasted at
/// 20 % and 80 % high-urgency jobs.
pub fn fig4(cfg: &FigureConfig) -> Figure {
    let sweep_at = |hu_pct: f64| -> SweepOutcome {
        let points: Vec<(f64, Scenario)> = params::FIG4_INACCURACY_PCTS
            .iter()
            .map(|&pct| {
                (
                    pct,
                    Scenario {
                        jobs: cfg.jobs,
                        high_urgency_pct: hu_pct,
                        estimates: EstimateRegime::Inaccuracy(pct),
                        ..Default::default()
                    },
                )
            })
            .collect();
        run_sweep(&points, &PolicyKind::PAPER, &cfg.seeds, cfg.threads)
    };
    let low = sweep_at(params::FIG4_HIGH_URGENCY_PCTS[0]);
    let high = sweep_at(params::FIG4_HIGH_URGENCY_PCTS[1]);
    Figure {
        id: "fig4".to_string(),
        title: "Impact of varying inaccurate runtime estimates".to_string(),
        panels: vec![
            Panel {
                label: "(a) 20% of high urgency jobs".to_string(),
                x_label: "% of Inaccuracy".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: low.fulfilled.clone(),
            },
            Panel {
                label: "(b) 80% of high urgency jobs".to_string(),
                x_label: "% of Inaccuracy".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: high.fulfilled.clone(),
            },
            Panel {
                label: "(c) 20% of high urgency jobs".to_string(),
                x_label: "% of Inaccuracy".to_string(),
                metric: "average slowdown".to_string(),
                series: low.slowdown,
            },
            Panel {
                label: "(d) 80% of high urgency jobs".to_string(),
                x_label: "% of Inaccuracy".to_string(),
                metric: "average slowdown".to_string(),
                series: high.slowdown,
            },
        ],
    }
}

/// Ablation study (ours, not in the paper): design-choice variants across
/// workload intensities, under trace estimates.
pub fn ablation(cfg: &FigureConfig) -> Figure {
    let policies = [
        PolicyKind::Libra,
        PolicyKind::LibraRisk,
        PolicyKind::LibraRiskStrict,
        PolicyKind::LibraRiskBestFit,
        PolicyKind::LibraRiskNaiveProjection,
        PolicyKind::LibraStrictShares,
        PolicyKind::LibraRiskStrictShares,
        PolicyKind::EdfNoAdmission,
        PolicyKind::Fcfs,
    ];
    let xs = [0.2, 0.6, 1.0];
    let points: Vec<(f64, Scenario)> = xs
        .iter()
        .map(|&x| {
            (
                x,
                Scenario {
                    jobs: cfg.jobs,
                    arrival_delay_factor: x,
                    estimates: EstimateRegime::Trace,
                    ..Default::default()
                },
            )
        })
        .collect();
    let out = run_sweep(&points, &policies, &cfg.seeds, cfg.threads);
    Figure {
        id: "ablation".to_string(),
        title: "Ablations: risk test, node ordering, share discipline".to_string(),
        panels: vec![
            Panel {
                label: "(a) Trace estimates".to_string(),
                x_label: "Arrival Delay Factor".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: out.fulfilled.clone(),
            },
            Panel {
                label: "(b) Trace estimates".to_string(),
                x_label: "Arrival Delay Factor".to_string(),
                metric: "average slowdown".to_string(),
                series: out.slowdown,
            },
        ],
    }
}

/// Robustness study (ours, not in the paper): rerun the Figure 3 sweep —
/// the paper's most striking result — under the Lublin–Feitelson workload
/// model instead of the SDSC-moment-matched generator, to show the
/// conclusion does not hinge on one synthetic workload.
pub fn robustness(cfg: &FigureConfig) -> Figure {
    use crate::scenario::TraceSource;
    let sweep_with = |source: TraceSource| -> SweepOutcome {
        let points: Vec<(f64, Scenario)> = params::FIG3_HIGH_URGENCY_PCTS
            .iter()
            .map(|&pct| {
                (
                    pct,
                    Scenario {
                        jobs: cfg.jobs,
                        high_urgency_pct: pct,
                        estimates: EstimateRegime::Trace,
                        source,
                        ..Default::default()
                    },
                )
            })
            .collect();
        run_sweep(&points, &PolicyKind::PAPER, &cfg.seeds, cfg.threads)
    };
    let sdsc = sweep_with(TraceSource::SyntheticSdsc);
    let lublin = sweep_with(TraceSource::Lublin);
    Figure {
        id: "robustness".to_string(),
        title: "Workload-model robustness of the Figure 3 result".to_string(),
        panels: vec![
            Panel {
                label: "(a) SDSC-moment-matched workload".to_string(),
                x_label: "% of High Urgency Jobs".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: sdsc.fulfilled.clone(),
            },
            Panel {
                label: "(b) Lublin-Feitelson workload".to_string(),
                x_label: "% of High Urgency Jobs".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: lublin.fulfilled.clone(),
            },
            Panel {
                label: "(c) SDSC-moment-matched workload".to_string(),
                x_label: "% of High Urgency Jobs".to_string(),
                metric: "average slowdown".to_string(),
                series: sdsc.slowdown,
            },
            Panel {
                label: "(d) Lublin-Feitelson workload".to_string(),
                x_label: "% of High Urgency Jobs".to_string(),
                metric: "average slowdown".to_string(),
                series: lublin.slowdown,
            },
        ],
    }
}

/// Heterogeneity study (ours): the paper notes runtimes "must be
/// translated to their equivalent value across heterogeneous nodes" but
/// evaluates on the homogeneous SP2. This sweep spreads node ratings
/// (mean capacity constant) and checks whether the admission controls'
/// ordering survives on a mixed machine.
pub fn heterogeneity(cfg: &FigureConfig) -> Figure {
    let spreads = [0.0, 0.2, 0.4, 0.6];
    let points: Vec<(f64, Scenario)> = spreads
        .iter()
        .map(|&s| {
            (
                s,
                Scenario {
                    jobs: cfg.jobs,
                    rating_spread: s,
                    estimates: EstimateRegime::Trace,
                    ..Default::default()
                },
            )
        })
        .collect();
    let out = run_sweep(&points, &PolicyKind::PAPER, &cfg.seeds, cfg.threads);
    Figure {
        id: "heterogeneity".to_string(),
        title: "Impact of node-rating heterogeneity (constant mean capacity)".to_string(),
        panels: vec![
            Panel {
                label: "(a) Trace estimates".to_string(),
                x_label: "Rating spread".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: out.fulfilled.clone(),
            },
            Panel {
                label: "(b) Trace estimates".to_string(),
                x_label: "Rating spread".to_string(),
                metric: "average slowdown".to_string(),
                series: out.slowdown,
            },
        ],
    }
}

/// Node-churn study (ours): rerun the default scenario under a seeded
/// exponential fault plan, sweeping the expected number of failures per
/// node over the trace span, once for each recovery policy. Kill shows
/// the raw SLA damage of losing resident jobs; Requeue shows how much of
/// it re-admission against the *remaining* deadline claws back.
pub fn churn(cfg: &FigureConfig) -> Figure {
    use cluster::RecoveryPolicy;
    // Expected trace span: jobs arrive ~every MEAN_INTER_ARRIVAL_SECS at
    // the default arrival delay factor, so `span / x` is the per-node
    // MTBF that yields ~x failures per node over the run.
    let span = cfg.jobs as f64 * params::MEAN_INTER_ARRIVAL_SECS;
    let failures_per_node = [0.5, 1.0, 2.0, 4.0];
    let sweep_with = |recovery: RecoveryPolicy| -> SweepOutcome {
        let points: Vec<(f64, Scenario)> = failures_per_node
            .iter()
            .map(|&x| {
                let mtbf = span / x;
                (
                    x,
                    Scenario {
                        jobs: cfg.jobs,
                        estimates: EstimateRegime::Trace,
                        node_mtbf: mtbf,
                        node_mttr: mtbf / 10.0,
                        recovery,
                        ..Default::default()
                    },
                )
            })
            .collect();
        run_sweep(&points, &PolicyKind::PAPER, &cfg.seeds, cfg.threads)
    };
    let kill = sweep_with(RecoveryPolicy::Kill);
    let requeue = sweep_with(RecoveryPolicy::Requeue);
    Figure {
        id: "churn".to_string(),
        title: "Impact of node churn under Kill vs Requeue recovery".to_string(),
        panels: vec![
            Panel {
                label: "(a) Kill recovery".to_string(),
                x_label: "Expected failures per node".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: kill.fulfilled.clone(),
            },
            Panel {
                label: "(b) Requeue recovery".to_string(),
                x_label: "Expected failures per node".to_string(),
                metric: "% of jobs with deadlines fulfilled".to_string(),
                series: requeue.fulfilled.clone(),
            },
            Panel {
                label: "(c) Kill recovery".to_string(),
                x_label: "Expected failures per node".to_string(),
                metric: "average slowdown".to_string(),
                series: kill.slowdown,
            },
            Panel {
                label: "(d) Requeue recovery".to_string(),
                x_label: "Expected failures per node".to_string(),
                metric: "average slowdown".to_string(),
                series: requeue.slowdown,
            },
        ],
    }
}

/// Computation-at-Risk profile of the paper's policies at the default
/// scenario: the related work's own lens (§2, Kleban & Clearwater) —
/// 95 % value-at-risk and expected shortfall of the expansion factor and
/// the realised deadline-delay metric.
pub fn risk_profile_table(cfg: &FigureConfig) -> Table {
    use librisk::{computation_at_risk, CarMeasure};
    let mut t = Table::new(
        "Computation-at-Risk profile (default scenario, trace estimates, level 0.95)",
        &["policy", "measure", "mean", "VaR(95%)", "shortfall", "jobs"],
    );
    let f = metrics::table::fmt_f;
    for policy in PolicyKind::PAPER {
        for measure in [CarMeasure::ExpansionFactor, CarMeasure::DeadlineDelay] {
            let mut mean = metrics::OnlineStats::new();
            let mut var = metrics::OnlineStats::new();
            let mut shortfall = metrics::OnlineStats::new();
            let mut jobs = metrics::OnlineStats::new();
            for &seed in &cfg.seeds {
                let scenario = Scenario {
                    jobs: cfg.jobs,
                    seed,
                    ..Default::default()
                };
                let report = scenario.run(policy);
                if let Some(car) = computation_at_risk(&report, measure, 0.95) {
                    mean.push(car.mean);
                    var.push(car.value_at_risk);
                    shortfall.push(car.expected_shortfall);
                    jobs.push(car.jobs as f64);
                }
            }
            t.push_row(vec![
                policy.name().to_string(),
                format!("{measure:?}"),
                f(mean.mean(), 2),
                f(var.mean(), 2),
                f(shortfall.mean(), 2),
                f(jobs.mean(), 0),
            ]);
        }
    }
    t
}

/// Seed-sensitivity check: the default scenario across many seeds, with
/// mean ± 95 % CI per policy. The paper runs a single real trace; this
/// table shows how much of our measured gaps is workload noise (spoiler:
/// the LibraRisk−Libra gap is an order of magnitude wider than the CI).
pub fn convergence_table(cfg: &FigureConfig) -> Table {
    use crate::scenario::Scenario;
    // At least 5 seeds regardless of the configured set.
    let seeds: Vec<u64> = if cfg.seeds.len() >= 5 {
        cfg.seeds.clone()
    } else {
        (1..=5).collect()
    };
    let mut t = Table::new(
        format!(
            "Seed sensitivity at the default scenario ({} seeds, trace estimates)",
            seeds.len()
        ),
        &[
            "policy",
            "fulfilled % (mean)",
            "± CI95",
            "slowdown (mean)",
            "± CI95 ",
        ],
    );
    let f = metrics::table::fmt_f;
    for policy in PolicyKind::PAPER {
        let mut fulfilled = metrics::OnlineStats::new();
        let mut slowdown = metrics::OnlineStats::new();
        for &seed in &seeds {
            let report = Scenario {
                jobs: cfg.jobs,
                seed,
                ..Default::default()
            }
            .run(policy);
            fulfilled.push(report.fulfilled_pct());
            slowdown.push(report.avg_slowdown());
        }
        t.push_row(vec![
            policy.name().to_string(),
            f(fulfilled.mean(), 2),
            f(fulfilled.ci95_halfwidth(), 2),
            f(slowdown.mean(), 3),
            f(slowdown.ci95_halfwidth(), 3),
        ]);
    }
    t
}

/// Detailed workload breakdowns accompanying the §4 statistics table:
/// runtime / inter-arrival / processor histograms and the
/// estimate-accuracy classes.
pub fn trace_analysis_tables(cfg: &FigureConfig) -> Vec<Table> {
    let scenario = Scenario {
        jobs: cfg.jobs,
        ..Default::default()
    };
    let trace = scenario.build_trace();
    let analysis = workload::analysis::analyze(&trace);
    let f = metrics::table::fmt_f;

    let hist_table = |title: &str, hist: &workload::analysis::LogHistogram, unit: &str| {
        let mut t = Table::new(title, &["bucket", "count", "share %"]);
        let total = hist.total().max(1) as f64;
        if hist.underflow > 0 {
            t.push_row(vec![
                format!("< {} {unit}", f(hist.first_edge, 0)),
                hist.underflow.to_string(),
                f(100.0 * hist.underflow as f64 / total, 1),
            ]);
        }
        for (lo, hi, count) in hist.buckets() {
            if count == 0 {
                continue;
            }
            t.push_row(vec![
                format!("{}–{} {unit}", f(lo, 0), f(hi, 0)),
                count.to_string(),
                f(100.0 * count as f64 / total, 1),
            ]);
        }
        t
    };

    let mut classes = Table::new("Estimate accuracy classes", &["class", "jobs", "share %"]);
    let n = trace.len().max(1) as f64;
    for (class, count) in analysis.estimate_classes {
        classes.push_row(vec![
            format!("{class:?}"),
            count.to_string(),
            f(100.0 * count as f64 / n, 1),
        ]);
    }

    vec![
        hist_table("Runtime distribution", &analysis.runtime_hist, "s"),
        hist_table(
            "Inter-arrival distribution",
            &analysis.inter_arrival_hist,
            "s",
        ),
        hist_table(
            "Processor-request distribution",
            &analysis.procs_hist,
            "procs",
        ),
        classes,
    ]
}

/// Budget-gated admission (the economic half of the original Libra
/// system, ref [14] of the paper): revenue and fulfilment when every job
/// carries a budget against Libra's published cost function. Shows that
/// the risk-aware deadline test also earns more — it wastes less of the
/// budget-feasible demand.
pub fn budget_table(cfg: &FigureConfig) -> Table {
    use cluster::proportional::ProportionalConfig;
    use librisk::{
        drive_trace, BudgetModel, ClusterRms, Libra, LibraBudget, LibraRisk, OnlineReport,
        PricingModel,
    };

    let mut t = Table::new(
        "Budget-gated admission (Libra economy, trace estimates)",
        &[
            "policy",
            "fulfilled %",
            "accepted",
            "budget-rejected",
            "revenue (k)",
        ],
    );
    let f = metrics::table::fmt_f;
    enum Inner {
        Libra,
        LibraRisk,
    }
    for (label, inner) in [
        ("Libra+Budget", Inner::Libra),
        ("LibraRisk+Budget", Inner::LibraRisk),
    ] {
        let mut fulfilled = metrics::OnlineStats::new();
        let mut accepted = metrics::OnlineStats::new();
        let mut budget_rejected = metrics::OnlineStats::new();
        let mut revenue = metrics::OnlineStats::new();
        for &seed in &cfg.seeds {
            let scenario = Scenario {
                jobs: cfg.jobs,
                seed,
                ..Default::default()
            };
            let trace = scenario.build_trace();
            let budgets = BudgetModel::default()
                .assign(&mut sim::Rng64::new(seed).split("budgets"), trace.jobs());
            let cluster = scenario.cluster();
            let cfg_engine = ProportionalConfig::default();
            // Stream through the RMS facade with a *borrowed* policy so
            // the accumulated economy (revenue, budget rejections) stays
            // readable after the run.
            let stream = |policy: &mut (dyn librisk::ShareAdmission + Send)| {
                let mut rms = ClusterRms::proportional(cluster.clone(), cfg_engine, policy);
                let mut sink = OnlineReport::new();
                drive_trace(&mut rms, &trace, &mut sink);
                sink
            };
            let (report, rev, brej) = match inner {
                Inner::Libra => {
                    let mut p = LibraBudget::new(Libra::new(), PricingModel::default(), budgets);
                    let r = stream(&mut p);
                    (r, p.revenue(), p.budget_rejections())
                }
                Inner::LibraRisk => {
                    let mut p =
                        LibraBudget::new(LibraRisk::paper(), PricingModel::default(), budgets);
                    let r = stream(&mut p);
                    (r, p.revenue(), p.budget_rejections())
                }
            };
            fulfilled.push(report.fulfilled_pct());
            accepted.push(report.accepted() as f64);
            budget_rejected.push(brej as f64);
            revenue.push(rev / 1000.0);
        }
        t.push_row(vec![
            label.to_string(),
            f(fulfilled.mean(), 1),
            f(accepted.mean(), 0),
            f(budget_rejected.mean(), 0),
            f(revenue.mean(), 0),
        ]);
    }
    t
}

/// A summary table over the *whole* policy catalogue at the default
/// scenario (trace estimates): the quick-reference comparison the paper's
/// prose makes across sections, plus our extensions.
pub fn policy_summary_table(cfg: &FigureConfig) -> Table {
    use crate::scenario::Scenario;
    let policies = [
        PolicyKind::Fcfs,
        PolicyKind::EdfNoAdmission,
        PolicyKind::Edf,
        PolicyKind::EdfBackfill,
        PolicyKind::Qops,
        PolicyKind::QopsHard,
        PolicyKind::Libra,
        PolicyKind::LibraRisk,
    ];
    let mut t = Table::new(
        "Policy catalogue at the default scenario (trace estimates)",
        &[
            "policy",
            "fulfilled %",
            "high-urgency %",
            "low-urgency %",
            "avg slowdown",
            "rejected",
            "utilization",
        ],
    );
    let f = metrics::table::fmt_f;
    for policy in policies {
        let mut fulfilled = metrics::OnlineStats::new();
        let mut high = metrics::OnlineStats::new();
        let mut low = metrics::OnlineStats::new();
        let mut slowdown = metrics::OnlineStats::new();
        let mut rejected = metrics::OnlineStats::new();
        let mut util = metrics::OnlineStats::new();
        for &seed in &cfg.seeds {
            let scenario = Scenario {
                jobs: cfg.jobs,
                seed,
                ..Default::default()
            };
            let r = scenario.run(policy);
            fulfilled.push(r.fulfilled_pct());
            high.push(r.fulfilled_pct_of(workload::Urgency::High));
            low.push(r.fulfilled_pct_of(workload::Urgency::Low));
            slowdown.push(r.avg_slowdown());
            rejected.push(r.rejected() as f64);
            util.push(r.utilization);
        }
        t.push_row(vec![
            policy.name().to_string(),
            f(fulfilled.mean(), 1),
            f(high.mean(), 1),
            f(low.mean(), 1),
            f(slowdown.mean(), 2),
            f(rejected.mean(), 0),
            f(util.mean(), 2),
        ]);
    }
    t
}

/// The §4 trace-statistics table: paper-reported vs generated values.
pub fn trace_stats_table(cfg: &FigureConfig) -> Table {
    let scenario = Scenario {
        jobs: cfg.jobs,
        ..Default::default()
    };
    let trace = scenario.build_trace();
    let stats = trace.stats(scenario.nodes);
    let mut t = Table::new(
        "SDSC SP2 subset statistics (paper §4 vs synthetic trace)",
        &["statistic", "paper", "synthetic"],
    );
    let f = |x: f64, d: usize| metrics::table::fmt_f(x, d);
    t.push_row(vec!["jobs".into(), "3000".into(), stats.jobs.to_string()]);
    t.push_row(vec![
        "mean inter-arrival (s)".into(),
        "2131".into(),
        f(stats.mean_inter_arrival, 0),
    ]);
    t.push_row(vec![
        "mean runtime (s)".into(),
        "9720 (2.7 h)".into(),
        f(stats.mean_runtime, 0),
    ]);
    t.push_row(vec![
        "mean processors".into(),
        "17".into(),
        f(stats.mean_procs, 1),
    ]);
    t.push_row(vec![
        "over-estimated jobs (%)".into(),
        "\"often over estimated\"".into(),
        f(100.0 * stats.overestimated_fraction, 1),
    ]);
    t.push_row(vec![
        "mean estimate/runtime".into(),
        "\u{2014}".into(),
        f(stats.mean_estimate_factor, 2),
    ]);
    t.push_row(vec![
        "offered load".into(),
        "\u{2014}".into(),
        f(stats.offered_load, 2),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> FigureConfig {
        FigureConfig {
            jobs: 50,
            seeds: vec![1],
            threads: 2,
        }
    }

    #[test]
    fn fig1_has_four_panels_with_three_policies() {
        let cfg = FigureConfig {
            jobs: 40,
            seeds: vec![1],
            threads: 2,
        };
        // Restrict the sweep cost by reusing the public API on a tiny
        // trace; the grid is still the paper's 10 points.
        let fig = fig1(&cfg);
        assert_eq!(fig.panels.len(), 4);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 3);
            assert_eq!(p.series[0].len(), 10);
        }
        let table = fig.panels[0].to_table();
        assert_eq!(table.row_count(), 10);
    }

    #[test]
    fn trace_stats_table_has_expected_rows() {
        let t = trace_stats_table(&tiny_cfg());
        assert_eq!(t.row_count(), 7);
        assert!(t.to_markdown().contains("mean runtime"));
    }

    #[test]
    fn trace_analysis_tables_cover_all_views() {
        let tables = trace_analysis_tables(&tiny_cfg());
        assert_eq!(tables.len(), 4);
        assert!(tables[0].title().contains("Runtime"));
        assert!(tables[3].to_markdown().contains("GrossOver"));
    }

    #[test]
    fn budget_table_reports_both_policies() {
        let t = budget_table(&tiny_cfg());
        assert_eq!(t.row_count(), 2);
        let md = t.to_markdown();
        assert!(md.contains("Libra+Budget"));
        assert!(md.contains("LibraRisk+Budget"));
    }

    #[test]
    fn risk_profile_table_covers_policies_and_measures() {
        let t = risk_profile_table(&tiny_cfg());
        assert_eq!(t.row_count(), 6); // 3 policies × 2 measures
        assert!(t.to_markdown().contains("ExpansionFactor"));
    }

    #[test]
    fn convergence_table_reports_cis() {
        let t = convergence_table(&FigureConfig {
            jobs: 60,
            seeds: vec![1, 2, 3, 4, 5],
            threads: 2,
        });
        assert_eq!(t.row_count(), 3);
        assert!(t.to_markdown().contains("5 seeds"));
    }

    #[test]
    fn heterogeneity_figure_has_two_panels() {
        let fig = heterogeneity(&tiny_cfg());
        assert_eq!(fig.panels.len(), 2);
        assert_eq!(fig.panels[0].series.len(), 3);
        assert_eq!(fig.panels[0].series[0].len(), 4);
    }

    #[test]
    fn churn_figure_has_four_panels_over_the_mtbf_grid() {
        let fig = churn(&tiny_cfg());
        assert_eq!(fig.panels.len(), 4);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 3, "one line per paper policy");
            assert_eq!(p.series[0].len(), 4, "one point per MTBF level");
        }
        // The Kill fulfilled panel must not silently equal the Requeue
        // one: the sweeps really ran under different recovery policies.
        let means = |panel: &Panel| -> Vec<(f64, f64)> {
            panel.series.iter().flat_map(|s| s.mean_points()).collect()
        };
        assert_ne!(means(&fig.panels[0]), means(&fig.panels[1]));
    }
}
