//! CLI regenerating the paper's figures and tables.
//!
//! ```text
//! experiments <fig1|fig2|fig3|fig4|ablation|trace-stats|all>
//!             [--jobs N] [--seeds 1,2,3] [--threads N] [--out DIR] [--quick]
//! ```

use experiments::figures::{self, FigureConfig};
use experiments::report;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    cfg: FigureConfig,
    out: Option<PathBuf>,
    charts: bool,
    /// `serve`: shards behind the router.
    shards: usize,
    /// `serve`: seconds to keep serving after the drive (cut short by
    /// `GET /shutdown`).
    for_secs: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut cfg = FigureConfig::default();
    let mut out = None;
    let mut charts = false;
    let mut shards = 4usize;
    let mut for_secs = 30.0f64;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => {
                let quick = FigureConfig::quick();
                cfg.jobs = quick.jobs;
                cfg.seeds = quick.seeds;
            }
            "--jobs" => {
                cfg.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seeds" => {
                let list = args.next().ok_or("--seeds needs a value")?;
                cfg.seeds = list
                    .split(',')
                    .map(|s| s.trim().parse::<u64>().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                if cfg.seeds.is_empty() {
                    return Err("--seeds needs at least one seed".into());
                }
            }
            "--threads" => {
                cfg.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--charts" => charts = true,
            "--shards" => {
                shards = args
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--for-secs" => {
                for_secs = args
                    .next()
                    .ok_or("--for-secs needs a value")?
                    .parse()
                    .map_err(|e| format!("--for-secs: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        cfg,
        out,
        charts,
        shards,
        for_secs,
    })
}

fn usage() -> String {
    "usage: experiments <fig1|fig2|fig3|fig4|ablation|robustness|heterogeneity|churn|\
     budget|risk-profile|convergence|summary|trace-stats|timeline|trace|kernel-volume|\
     shard-scaling|checkpoint|profile|serve|all> \
     [--jobs N] [--seeds 1,2,3] [--threads N] [--out DIR] [--charts] [--quick]\n\
     serve only: [--shards N] [--for-secs S]\n\
     profile always replays the committed 2000-job bench workload"
        .to_string()
}

fn emit_figure(fig: &figures::Figure, out: &Option<PathBuf>, charts: bool) {
    if charts {
        print!("{}", report::figure_to_markdown_with_charts(fig));
    } else {
        print!("{}", report::figure_to_markdown(fig));
    }
    if let Some(dir) = out {
        match report::write_figure_csv(fig, dir) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("cannot write CSVs: {e}"),
        }
        match report::write_figure_svg(fig, dir) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("cannot write SVGs: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = &args.cfg;
    let start = std::time::Instant::now();
    let run = |which: &str| {
        match which {
            "trace-stats" => {
                let t = figures::trace_stats_table(cfg);
                print!("{}", t.to_markdown());
                if args.charts {
                    for table in figures::trace_analysis_tables(cfg) {
                        println!();
                        print!("{}", table.to_markdown());
                    }
                }
                if let Some(dir) = &args.out {
                    let path = dir.join("trace_stats.csv");
                    if let Err(e) = report::write_table_csv(&t, &path) {
                        eprintln!("cannot write CSV: {e}");
                    } else {
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
            "summary" => {
                let t = figures::policy_summary_table(cfg);
                print!("{}", t.to_markdown());
                if let Some(dir) = &args.out {
                    let path = dir.join("policy_summary.csv");
                    if let Err(e) = report::write_table_csv(&t, &path) {
                        eprintln!("cannot write CSV: {e}");
                    } else {
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
            "fig1" => emit_figure(&figures::fig1(cfg), &args.out, args.charts),
            "fig2" => emit_figure(&figures::fig2(cfg), &args.out, args.charts),
            "fig3" => emit_figure(&figures::fig3(cfg), &args.out, args.charts),
            "fig4" => emit_figure(&figures::fig4(cfg), &args.out, args.charts),
            "ablation" => emit_figure(&figures::ablation(cfg), &args.out, args.charts),
            "robustness" => emit_figure(&figures::robustness(cfg), &args.out, args.charts),
            "heterogeneity" => emit_figure(&figures::heterogeneity(cfg), &args.out, args.charts),
            "churn" => emit_figure(&figures::churn(cfg), &args.out, args.charts),
            "convergence" => {
                let t = figures::convergence_table(cfg);
                print!("{}", t.to_markdown());
                if let Some(dir) = &args.out {
                    let path = dir.join("convergence.csv");
                    if let Err(e) = report::write_table_csv(&t, &path) {
                        eprintln!("cannot write CSV: {e}");
                    } else {
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
            "budget" => {
                let t = figures::budget_table(cfg);
                print!("{}", t.to_markdown());
                if let Some(dir) = &args.out {
                    let path = dir.join("budget.csv");
                    if let Err(e) = report::write_table_csv(&t, &path) {
                        eprintln!("cannot write CSV: {e}");
                    } else {
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
            "timeline" => {
                use experiments::obs_run;
                let policy = librisk::PolicyKind::LibraRisk;
                let scenario = obs_run::obs_scenario(cfg);
                let t = obs_run::timeline(&scenario, policy);
                println!(
                    "# Gauge timeline — {policy:?} under churn, {} jobs\n",
                    t.jobs
                );
                println!("| curve | points |");
                println!("| --- | --- |");
                println!("| utilization | {} |", t.utilization.len());
                println!("| in-flight / nodes | {} |", t.in_flight.len());
                if let Some(g) = &t.gauge {
                    println!("| {} | {} |", g.name(), g.len());
                }
                if let Some(dir) = &args.out {
                    let path = dir.join("timeline.svg");
                    match std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&path, t.to_svg(policy)))
                    {
                        Ok(()) => eprintln!("wrote {}", path.display()),
                        Err(e) => eprintln!("cannot write SVG: {e}"),
                    }
                }
            }
            "trace" => {
                use experiments::obs_run;
                let policy = librisk::PolicyKind::LibraRisk;
                let scenario = obs_run::obs_scenario(cfg);
                let (rec, report) = obs_run::trace_run(&scenario, policy, 1 << 16);
                if let Err(e) = obs_run::validate_exports(&rec) {
                    eprintln!("export validation failed: {e}");
                    std::process::exit(1);
                }
                println!("# Decision trace — {policy:?} under churn\n");
                println!("| metric | value |");
                println!("| --- | --- |");
                println!("| events retained | {} |", rec.len());
                println!("| events dropped | {} |", rec.dropped());
                println!("| submitted | {} |", report.submitted());
                println!("| fulfilled | {} |", report.fulfilled());
                println!("| rejected | {} |", report.rejected());
                println!(
                    "| decisions counted | {} |",
                    rec.registry().counter(obs::keys::DECISIONS)
                );
                if let Some(dir) = &args.out {
                    let write = |name: &str, body: String| {
                        let path = dir.join(name);
                        match std::fs::write(&path, body) {
                            Ok(()) => eprintln!("wrote {}", path.display()),
                            Err(e) => eprintln!("cannot write {name}: {e}"),
                        }
                    };
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                    } else {
                        write("events.jsonl", rec.to_jsonl());
                        write("trace.json", rec.to_chrome_trace());
                        write("metrics.prom", rec.registry().to_prometheus());
                    }
                }
            }
            "kernel-volume" => {
                use experiments::obs_run;
                let rows = obs_run::kernel_volume(cfg);
                println!("# Projection-kernel volume — classifier off vs on\n");
                println!(
                    "| classifier | jobs | decisions | projections run | avoided | \
                     profiles/decision | avoided ratio | fulfilled |"
                );
                println!("| --- | --- | --- | --- | --- | --- | --- | --- |");
                for r in &rows {
                    println!(
                        "| {} | {} | {} | {} | {} | {:.2} | {:.1}% | {} |",
                        if r.classifier { "on" } else { "off" },
                        r.jobs,
                        r.decisions,
                        r.projections_run,
                        r.projections_avoided,
                        r.profiles_per_decision(),
                        r.avoided_ratio() * 100.0,
                        r.fulfilled,
                    );
                }
                if let Some(dir) = &args.out {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                    } else {
                        for (name, body) in [
                            ("kernel_volume.csv", obs_run::kernel_volume_csv(&rows)),
                            ("kernel_volume.svg", obs_run::kernel_volume_svg(&rows)),
                        ] {
                            let path = dir.join(name);
                            match std::fs::write(&path, body) {
                                Ok(()) => eprintln!("wrote {}", path.display()),
                                Err(e) => eprintln!("cannot write {name}: {e}"),
                            }
                        }
                    }
                }
            }
            "shard-scaling" => {
                use experiments::shard_scaling;
                let rows = shard_scaling::shard_scaling(cfg);
                println!("# Sharded router — throughput vs shard count\n");
                println!("| shards | jobs | jobs/s | fulfilled | oracle fulfilled | identity |");
                println!("| --- | --- | --- | --- | --- | --- |");
                for r in &rows {
                    println!(
                        "| {} | {} | {:.0} | {} | {} | {} |",
                        r.shards,
                        r.jobs,
                        r.jobs_per_sec,
                        r.fulfilled,
                        r.oracle_fulfilled,
                        if r.identity_ok() { "ok" } else { "MISMATCH" },
                    );
                }
                if let Some(dir) = &args.out {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                    } else {
                        for (name, body) in [
                            ("shard_scaling.csv", shard_scaling::shard_scaling_csv(&rows)),
                            ("shard_scaling.svg", shard_scaling::shard_scaling_svg(&rows)),
                        ] {
                            let path = dir.join(name);
                            match std::fs::write(&path, body) {
                                Ok(()) => eprintln!("wrote {}", path.display()),
                                Err(e) => eprintln!("cannot write {name}: {e}"),
                            }
                        }
                    }
                }
            }
            "checkpoint" => {
                use experiments::checkpoint_run;
                let probe = checkpoint_run::checkpoint_probe(cfg);
                println!("# Checkpoint/restore — LibraRisk under churn\n");
                println!("| metric | value |");
                println!("| --- | --- |");
                println!("| jobs (snapshot at) | {} ({}) |", probe.jobs, probe.cut);
                println!("| snapshot size | {} bytes |", probe.snapshot_bytes);
                println!("| save latency | {:.1} µs |", probe.save_us);
                println!("| load latency | {:.1} µs |", probe.load_us);
                println!("| restore latency | {:.1} µs |", probe.restore_us);
                println!(
                    "| resumed == unbroken | ok ({} fulfilled) |",
                    probe.fulfilled
                );
                println!(
                    "| corruption detected | {} |",
                    if probe.corruption_detected {
                        "ok"
                    } else {
                        "MISSED"
                    }
                );
                if let Some(dir) = &args.out {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                    } else {
                        let path = dir.join("checkpoint.csv");
                        match std::fs::write(&path, probe.to_csv()) {
                            Ok(()) => eprintln!("wrote {}", path.display()),
                            Err(e) => eprintln!("cannot write checkpoint.csv: {e}"),
                        }
                    }
                }
            }
            "profile" => {
                use experiments::telemetry_run::{self, ADVANCE_TILES};
                let report = telemetry_run::profile_probe(telemetry_run::GOLDEN_JOBS);
                println!("# Hot-path phase profile — LibraRisk, committed bench workload\n");
                println!("| metric | value |");
                println!("| --- | --- |");
                println!("| jobs | {} |", report.jobs);
                println!("| fulfilled | {} |", report.fulfilled);
                println!("| wall clock | {:.2} s |", report.wall_secs);
                println!(
                    "| advance bracket (sampled 1-in-{}) | {:.1} ms |",
                    obs::phase::SAMPLE_STRIDE,
                    report.advance_ns as f64 / 1e6
                );
                println!(
                    "| phase coverage of advance | {:.1}% |",
                    report.coverage * 100.0
                );
                println!();
                println!("| phase | total | calls | share of advance | p99 |");
                println!("| --- | --- | --- | --- | --- |");
                for r in &report.rows {
                    let tiled = ADVANCE_TILES.contains(&r.phase);
                    println!(
                        "| {} | {:.2} ms | {} | {} | {:.0} µs |",
                        r.phase.name(),
                        r.ns as f64 / 1e6,
                        r.calls,
                        if tiled {
                            format!("{:.1}%", r.share_of_advance * 100.0)
                        } else {
                            "—".to_string()
                        },
                        r.p99_ns / 1e3,
                    );
                }
                if !report.counters.is_empty() {
                    println!();
                    println!("| decision counter | value |");
                    println!("| --- | --- |");
                    for (k, v) in &report.counters {
                        println!("| {k} | {v} |");
                    }
                }
                if let Some(dir) = &args.out {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                    } else {
                        for (name, body) in [
                            ("profile.csv", report.to_csv()),
                            ("profile_counters.csv", report.counters_csv()),
                            ("profile.svg", report.to_svg()),
                        ] {
                            let path = dir.join(name);
                            match std::fs::write(&path, body) {
                                Ok(()) => eprintln!("wrote {}", path.display()),
                                Err(e) => eprintln!("cannot write {name}: {e}"),
                            }
                        }
                    }
                }
            }
            "serve" => {
                use experiments::telemetry_run::{self, ServeOptions};
                let opts = ServeOptions {
                    jobs: cfg.jobs.min(20_000),
                    shards: args.shards,
                    linger_secs: args.for_secs,
                    seed: cfg.seeds.first().copied().unwrap_or(1),
                };
                match telemetry_run::serve(&opts) {
                    Ok(s) => {
                        println!("# Telemetry serve — {} shards\n", opts.shards);
                        println!("| metric | value |");
                        println!("| --- | --- |");
                        println!("| submitted | {} |", s.submitted);
                        println!("| fulfilled | {} |", s.fulfilled);
                        println!("| publish rounds | {} |", s.publishes);
                        println!(
                            "| ended by | {} |",
                            if s.shut_down_remotely {
                                "GET /shutdown"
                            } else {
                                "--for-secs timeout"
                            }
                        );
                    }
                    Err(e) => {
                        eprintln!("serve failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "risk-profile" => {
                let t = figures::risk_profile_table(cfg);
                print!("{}", t.to_markdown());
                if let Some(dir) = &args.out {
                    let path = dir.join("risk_profile.csv");
                    if let Err(e) = report::write_table_csv(&t, &path) {
                        eprintln!("cannot write CSV: {e}");
                    } else {
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
            _ => unreachable!("validated below"),
        }
        eprintln!("[{which} done at {:.1}s]", start.elapsed().as_secs_f64());
    };
    match args.command.as_str() {
        "all" => {
            for which in [
                "trace-stats",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "ablation",
                "robustness",
                "heterogeneity",
                "churn",
                "budget",
                "risk-profile",
                "convergence",
                "summary",
            ] {
                run(which);
            }
        }
        cmd @ ("trace-stats" | "fig1" | "fig2" | "fig3" | "fig4" | "ablation" | "robustness"
        | "heterogeneity" | "churn" | "budget" | "risk-profile" | "convergence"
        | "summary" | "timeline" | "trace" | "kernel-volume" | "shard-scaling"
        | "checkpoint" | "profile" | "serve") => run(cmd),
        other => {
            eprintln!("unknown command {other}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
