//! A fully-specified simulation scenario (§4's methodology as data).

use cluster::{Cluster, FaultPlan, RecoveryPolicy};
use librisk::{drive_trace, OnlineReport, PolicyKind, SimulationReport};
use sim::{Rng64, SimTime};
use workload::deadlines::DeadlineModel;
use workload::estimates;
use workload::lublin::LublinModel;
use workload::synthetic::SyntheticSdscSp2;
use workload::{params, Trace};

/// Which generator produces the base trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceSource {
    /// The SDSC-SP2-moment-matched generator (the paper's workload).
    SyntheticSdsc,
    /// The Lublin–Feitelson-style model (daily cycle, hyper-gamma
    /// runtimes) — used by the robustness study.
    Lublin,
}

/// Which runtime estimates the admission controls see.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimateRegime {
    /// `estimate = runtime` — the idealised case (paper: "accurate
    /// runtime estimate").
    Accurate,
    /// The inaccurate, mostly over-estimated estimates carried by the
    /// trace (paper: "actual runtime estimate from trace").
    Trace,
    /// Interpolation: 0 % = accurate, 100 % = trace (Figure 4's knob).
    Inaccuracy(f64),
}

impl EstimateRegime {
    /// Short label used in panel titles.
    pub fn label(&self) -> String {
        match self {
            EstimateRegime::Accurate => "accurate estimates".to_string(),
            EstimateRegime::Trace => "trace estimates".to_string(),
            EstimateRegime::Inaccuracy(p) => format!("{p:.0}% inaccuracy"),
        }
    }
}

/// Everything needed to reproduce one simulation run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Jobs in the trace (paper: 3000).
    pub jobs: usize,
    /// Master seed; every random stage derives a named stream from it.
    pub seed: u64,
    /// Arrival delay factor (Fig. 1's knob; 1 = trace arrival process).
    pub arrival_delay_factor: f64,
    /// Deadline high:low ratio (Fig. 2's knob).
    pub deadline_ratio: f64,
    /// Percentage of high-urgency jobs (Fig. 3's knob).
    pub high_urgency_pct: f64,
    /// Estimate regime (Fig. 4's knob).
    pub estimates: EstimateRegime,
    /// Cluster size (paper: 128 nodes).
    pub nodes: usize,
    /// Which workload generator builds the base trace.
    pub source: TraceSource,
    /// Node-rating spread for heterogeneity studies: 0 = homogeneous (the
    /// paper's machine); `s > 0` assigns ratings `168·(1−s)`, `168`,
    /// `168·(1+s)` round-robin, keeping mean capacity constant.
    pub rating_spread: f64,
    /// Per-node mean time between failures in simulated seconds for the
    /// churn studies; 0 disables fault injection entirely (the run is
    /// bitwise identical to one without a fault plan).
    pub node_mtbf: f64,
    /// Per-node mean time to repair in simulated seconds.
    pub node_mttr: f64,
    /// What happens to jobs resident on a failed node.
    pub recovery: RecoveryPolicy,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            jobs: params::TRACE_JOBS,
            seed: 1,
            arrival_delay_factor: params::DEFAULT_ARRIVAL_DELAY_FACTOR,
            deadline_ratio: params::DEFAULT_DEADLINE_HIGH_LOW_RATIO,
            high_urgency_pct: 100.0 * params::DEFAULT_HIGH_URGENCY_FRACTION,
            estimates: EstimateRegime::Trace,
            nodes: params::SDSC_SP2_NODES,
            source: TraceSource::SyntheticSdsc,
            rating_spread: 0.0,
            node_mtbf: 0.0,
            node_mttr: 0.0,
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl Scenario {
    /// The scenario with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The cluster this scenario runs on.
    pub fn cluster(&self) -> Cluster {
        assert!(
            (0.0..1.0).contains(&self.rating_spread),
            "rating spread must be in [0,1), got {}",
            self.rating_spread
        );
        if self.rating_spread == 0.0 {
            return Cluster::homogeneous(self.nodes, params::SDSC_SP2_SPEC_RATING);
        }
        let reference = params::SDSC_SP2_SPEC_RATING;
        let tiers = [
            reference * (1.0 - self.rating_spread),
            reference,
            reference * (1.0 + self.rating_spread),
        ];
        let nodes = (0..self.nodes)
            .map(|i| cluster::Node::new(cluster::NodeId(i as u32), tiers[i % 3]))
            .collect();
        Cluster::new(nodes, reference)
    }

    /// Materialises the trace: synthetic SDSC-SP2-like base, deadline
    /// model, estimate regime, arrival scaling.
    pub fn build_trace(&self) -> Trace {
        let mut trace = match self.source {
            TraceSource::SyntheticSdsc => SyntheticSdscSp2 {
                jobs: self.jobs,
                ..Default::default()
            }
            .generate(self.seed),
            TraceSource::Lublin => LublinModel {
                jobs: self.jobs,
                ..Default::default()
            }
            .generate(self.seed),
        };
        let mut deadline_rng = Rng64::new(self.seed).split("deadline-model");
        DeadlineModel::default()
            .with_high_urgency_pct(self.high_urgency_pct)
            .with_ratio(self.deadline_ratio)
            .assign(&mut deadline_rng, trace.jobs_mut());
        match self.estimates {
            EstimateRegime::Accurate => estimates::make_accurate(trace.jobs_mut()),
            EstimateRegime::Trace => {} // generator already produced them
            EstimateRegime::Inaccuracy(pct) => estimates::apply_inaccuracy(trace.jobs_mut(), pct),
        }
        trace.scale_arrivals(self.arrival_delay_factor);
        trace
    }

    /// The seeded churn plan covering the whole trace span (plus a tail
    /// for jobs still running after the last arrival). Empty when
    /// `node_mtbf` is 0.
    pub fn fault_plan(&self, trace: &workload::Trace) -> FaultPlan {
        if self.node_mtbf <= 0.0 {
            return FaultPlan::empty();
        }
        let last_arrival = trace
            .jobs()
            .last()
            .map(|j| j.submit.as_secs())
            .unwrap_or(0.0);
        let horizon = SimTime::from_secs(last_arrival * 1.1 + self.node_mttr * 4.0);
        FaultPlan::exponential(
            self.nodes,
            self.node_mtbf,
            self.node_mttr.max(1.0),
            horizon,
            Rng64::new(self.seed).split("fault-plan").next_u64(),
        )
    }

    /// Builds the trace and runs one policy over it.
    pub fn run(&self, policy: PolicyKind) -> SimulationReport {
        let trace = self.build_trace();
        policy
            .rms(&self.cluster())
            .with_faults(self.fault_plan(&trace), self.recovery)
            .run_to_report(&trace)
    }

    /// Builds the trace and streams one policy over it into O(1) online
    /// aggregates — no per-job record vector. The sweep harness uses
    /// this: a cell only ever reads scalar summaries, so there is no
    /// reason to materialise (and then drop) thousands of `JobRecord`s
    /// per cell.
    pub fn run_online(&self, policy: PolicyKind) -> OnlineReport {
        let trace = self.build_trace();
        let mut rms = policy
            .rms(&self.cluster())
            .with_faults(self.fault_plan(&trace), self.recovery);
        let mut sink = OnlineReport::new();
        drive_trace(&mut rms, &trace, &mut sink);
        sink.set_utilization(rms.utilization());
        sink.set_churn(*rms.churn());
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Urgency;

    fn small() -> Scenario {
        Scenario {
            jobs: 150,
            ..Default::default()
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = small().build_trace();
        let b = small().build_trace();
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn accurate_regime_zeroes_estimate_error() {
        let s = Scenario {
            estimates: EstimateRegime::Accurate,
            ..small()
        };
        let t = s.build_trace();
        assert!(t.jobs().iter().all(|j| j.estimate == j.runtime));
    }

    #[test]
    fn inaccuracy_zero_equals_accurate_and_hundred_equals_trace() {
        let zero = Scenario {
            estimates: EstimateRegime::Inaccuracy(0.0),
            ..small()
        }
        .build_trace();
        assert!(zero.jobs().iter().all(|j| j.estimate == j.runtime));
        let hundred = Scenario {
            estimates: EstimateRegime::Inaccuracy(100.0),
            ..small()
        }
        .build_trace();
        let trace = small().build_trace();
        for (a, b) in hundred.jobs().iter().zip(trace.jobs()) {
            assert!((a.estimate.as_secs() - b.estimate.as_secs()).abs() < 1e-9);
        }
    }

    #[test]
    fn urgency_mix_follows_knob() {
        let s = Scenario {
            jobs: 4000,
            high_urgency_pct: 80.0,
            ..Default::default()
        };
        let t = s.build_trace();
        let high = t
            .jobs()
            .iter()
            .filter(|j| j.urgency == Urgency::High)
            .count();
        let frac = high as f64 / t.len() as f64;
        assert!((frac - 0.8).abs() < 0.03, "high fraction {frac}");
    }

    #[test]
    fn arrival_delay_factor_compresses_span() {
        let base = small().build_trace();
        let compressed = Scenario {
            arrival_delay_factor: 0.5,
            ..small()
        }
        .build_trace();
        let span = |t: &Trace| t.stats(128).span;
        assert!((span(&compressed) - span(&base) * 0.5).abs() < 1e-6);
    }

    #[test]
    fn run_produces_full_report() {
        let report = small().run(PolicyKind::LibraRisk);
        assert_eq!(report.submitted(), 150);
        assert_eq!(report.accepted() + report.rejected(), 150);
    }

    #[test]
    fn run_online_matches_batch_aggregates() {
        let s = small();
        for policy in [PolicyKind::LibraRisk, PolicyKind::Edf] {
            let batch = s.run(policy);
            let online = s.run_online(policy);
            assert_eq!(online.submitted(), batch.submitted() as u64);
            assert_eq!(online.fulfilled(), batch.fulfilled() as u64);
            assert_eq!(online.rejected(), batch.rejected() as u64);
            assert!((online.fulfilled_pct() - batch.fulfilled_pct()).abs() < 1e-9);
            assert!((online.avg_slowdown() - batch.avg_slowdown()).abs() < 1e-9);
            assert_eq!(online.utilization(), batch.utilization);
        }
    }

    #[test]
    fn zero_mtbf_disables_fault_injection_bitwise() {
        let plain = small().run(PolicyKind::LibraRisk);
        let gated = Scenario {
            node_mtbf: 0.0,
            node_mttr: 0.0,
            recovery: cluster::RecoveryPolicy::Requeue,
            ..small()
        }
        .run(PolicyKind::LibraRisk);
        assert_eq!(plain.records, gated.records);
        assert!(gated.churn.is_empty());
    }

    #[test]
    fn churn_scenario_injects_faults_and_reports_them() {
        let span = 150.0 * params::MEAN_INTER_ARRIVAL_SECS;
        let s = Scenario {
            node_mtbf: span / 4.0,
            node_mttr: span / 40.0,
            recovery: cluster::RecoveryPolicy::Requeue,
            ..small()
        };
        let batch = s.run(PolicyKind::LibraRisk);
        assert!(batch.churn.node_failures > 0, "plan actually fired");
        let online = s.run_online(PolicyKind::LibraRisk);
        assert_eq!(online.churn(), &batch.churn, "online sink carries churn");
        assert_eq!(online.fulfilled(), batch.fulfilled() as u64);
        // Deterministic: the plan is derived from the scenario seed.
        assert_eq!(s.run(PolicyKind::LibraRisk).records, batch.records);
    }

    #[test]
    fn heterogeneous_cluster_keeps_mean_capacity() {
        let s = Scenario {
            nodes: 12,
            rating_spread: 0.5,
            ..Default::default()
        };
        let c = s.cluster();
        assert!(!c.is_homogeneous());
        let mean: f64 = c.nodes().iter().map(|n| n.rating).sum::<f64>() / c.len() as f64;
        assert!((mean - 168.0).abs() < 1e-9);
        // Fast nodes process reference work faster.
        assert!(c.speed_factor(cluster::NodeId(2)) > 1.0);
        assert!(c.speed_factor(cluster::NodeId(0)) < 1.0);
        // A run over it completes normally.
        let report = Scenario {
            jobs: 100,
            rating_spread: 0.5,
            ..Default::default()
        }
        .run(PolicyKind::LibraRisk);
        assert_eq!(report.submitted(), 100);
    }

    #[test]
    fn lublin_source_builds_and_runs() {
        let s = Scenario {
            jobs: 120,
            source: TraceSource::Lublin,
            ..Default::default()
        };
        let t = s.build_trace();
        assert_eq!(t.len(), 120);
        // The two generators must actually differ.
        let sdsc = Scenario {
            jobs: 120,
            ..Default::default()
        }
        .build_trace();
        assert_ne!(t.jobs(), sdsc.jobs());
        let report = s.run(PolicyKind::LibraRisk);
        assert_eq!(report.submitted(), 120);
    }

    #[test]
    fn regime_labels() {
        assert_eq!(EstimateRegime::Accurate.label(), "accurate estimates");
        assert_eq!(EstimateRegime::Trace.label(), "trace estimates");
        assert_eq!(EstimateRegime::Inaccuracy(40.0).label(), "40% inaccuracy");
    }
}
