//! Parallel execution of parameter sweeps.
//!
//! A sweep is the cross product of (sweep point × policy × seed); each
//! cell is an independent full simulation, so cells are farmed out to a
//! scoped thread pool and aggregated into per-policy
//! [`metrics::Series`] curves (mean ± CI across seeds at each point).

use crate::scenario::Scenario;
use librisk::PolicyKind;
use metrics::Series;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One cell's result.
#[derive(Clone, Debug)]
struct Cell {
    order: usize,
    policy: PolicyKind,
    x: f64,
    fulfilled_pct: f64,
    avg_slowdown: f64,
    utilization: f64,
}

/// Aggregated sweep output: one fulfilled-% curve and one slowdown curve
/// per policy.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// % of jobs with deadlines fulfilled, per policy.
    pub fulfilled: Vec<Series>,
    /// Average slowdown (fulfilled jobs only), per policy.
    pub slowdown: Vec<Series>,
    /// Mean cluster utilisation, per policy.
    pub utilization: Vec<Series>,
}

impl SweepOutcome {
    /// The fulfilled-% curve of a policy.
    pub fn fulfilled_of(&self, policy: PolicyKind) -> &Series {
        self.fulfilled
            .iter()
            .find(|s| s.name() == policy.name())
            .expect("policy was part of the sweep")
    }

    /// The slowdown curve of a policy.
    pub fn slowdown_of(&self, policy: PolicyKind) -> &Series {
        self.slowdown
            .iter()
            .find(|s| s.name() == policy.name())
            .expect("policy was part of the sweep")
    }
}

/// Runs every (point × policy × seed) cell, in parallel, and aggregates.
///
/// `points` pairs an abscissa with the scenario to simulate there (the
/// scenario's own seed field is overridden by each seed in `seeds`).
pub fn run_sweep(
    points: &[(f64, Scenario)],
    policies: &[PolicyKind],
    seeds: &[u64],
    threads: usize,
) -> SweepOutcome {
    assert!(!points.is_empty() && !policies.is_empty() && !seeds.is_empty());
    let threads = threads.max(1);
    // Materialise the cell list.
    let work: Vec<(f64, Scenario, PolicyKind)> = points
        .iter()
        .flat_map(|(x, sc)| {
            policies.iter().flat_map(move |p| {
                seeds
                    .iter()
                    .map(move |seed| (*x, sc.clone().with_seed(*seed), *p))
            })
        })
        .collect();

    // Work is claimed via a shared counter, but each worker collects its
    // cells into a thread-local vector — no lock contention on the hot
    // path; the buckets are merged once, after the scope joins.
    let next = AtomicUsize::new(0);
    let workers = threads.min(work.len());
    let mut buckets: Vec<Vec<Cell>> = (0..workers).map(|_| Vec::new()).collect();
    std::thread::scope(|scope| {
        for bucket in buckets.iter_mut() {
            let next = &next;
            let work = &work;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let (x, scenario, policy) = &work[i];
                // Stream into online aggregates: a cell only keeps three
                // scalars, never a per-job record vector.
                let report = scenario.run_online(*policy);
                bucket.push(Cell {
                    order: i,
                    policy: *policy,
                    x: *x,
                    fulfilled_pct: report.fulfilled_pct(),
                    avg_slowdown: report.avg_slowdown(),
                    utilization: report.utilization(),
                });
            });
        }
    });

    // Deterministic aggregation order regardless of which worker ran
    // which cell.
    let mut cells: Vec<Cell> = buckets.into_iter().flatten().collect();
    cells.sort_by_key(|c| c.order);

    let mut outcome = SweepOutcome {
        fulfilled: policies.iter().map(|p| Series::new(p.name())).collect(),
        slowdown: policies.iter().map(|p| Series::new(p.name())).collect(),
        utilization: policies.iter().map(|p| Series::new(p.name())).collect(),
    };
    for cell in &cells {
        let idx = policies
            .iter()
            .position(|p| *p == cell.policy)
            .expect("cell policy from input set");
        outcome.fulfilled[idx].observe(cell.x, cell.fulfilled_pct);
        outcome.slowdown[idx].observe(cell.x, cell.avg_slowdown);
        outcome.utilization[idx].observe(cell.x, cell.utilization);
    }
    outcome
}

/// Default worker count: available parallelism minus one, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EstimateRegime;

    fn tiny(x: f64) -> (f64, Scenario) {
        (
            x,
            Scenario {
                jobs: 60,
                arrival_delay_factor: x,
                estimates: EstimateRegime::Trace,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sweep_produces_one_point_per_x_per_policy() {
        let points = vec![tiny(0.5), tiny(1.0)];
        let policies = [PolicyKind::Libra, PolicyKind::LibraRisk];
        let out = run_sweep(&points, &policies, &[1, 2], 2);
        assert_eq!(out.fulfilled.len(), 2);
        for s in &out.fulfilled {
            assert_eq!(s.len(), 2, "two abscissae");
        }
        // Accessors find the curves.
        assert_eq!(out.fulfilled_of(PolicyKind::Libra).name(), "Libra");
        assert_eq!(out.slowdown_of(PolicyKind::LibraRisk).name(), "LibraRisk");
    }

    #[test]
    fn parallel_and_serial_agree() {
        let points = vec![tiny(0.8)];
        let policies = [PolicyKind::LibraRisk];
        let par = run_sweep(&points, &policies, &[1, 2, 3], 3);
        let ser = run_sweep(&points, &policies, &[1, 2, 3], 1);
        let a = par.fulfilled_of(PolicyKind::LibraRisk).ci_points();
        let b = ser.fulfilled_of(PolicyKind::LibraRisk).ci_points();
        assert_eq!(a, b, "thread count must not change results");
    }

    #[test]
    #[should_panic]
    fn empty_sweep_panics() {
        run_sweep(&[], &[PolicyKind::Libra], &[1], 1);
    }
}
