//! The `shard-scaling` experiment: aggregate throughput of the
//! [`librisk::ShardedRms`] router as the 128-node machine is split into
//! ever more (and ever smaller) LibraRisk shards.
//!
//! Every cell replays the *identical* tiled workload (arrivals capped at
//! 2 procs so they fit the smallest shard of the sweep) under
//! [`librisk::RouteBy::JobHash`] placement, so the curve isolates the
//! router: per-shard admission state shrinks with the shard, mailbox
//! fan-out/merge cost grows with the count. Because hash placement
//! depends only on the job id and the Libra economy is per-cluster, each
//! cell must resolve *bit-for-bit* the same outcomes as the union of
//! `shards` independent unsharded runs over the same hash partition —
//! the runner re-derives that oracle and refuses to report a row whose
//! fulfilled count diverges (for one shard, the oracle literally *is*
//! the unsharded run).

use crate::figures::FigureConfig;
use cluster::Cluster;
use librisk::report::ReportSink;
use librisk::{job_hash_shard, OnlineReport, PolicyKind, RouteBy, ShardedRms};
use metrics::svg::{self, SvgOptions};
use metrics::Series;
use sim::{Rng64, SimDuration};
use std::time::Instant;
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;
use workload::{Job, JobId};

/// The shard counts swept — the same ladder as the committed
/// `sharded_driver` benchmark baseline.
pub const SHARD_LADDER: [usize; 4] = [1, 4, 16, 64];

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ShardScalingRow {
    /// Shards behind the router (the 128 nodes split evenly).
    pub shards: usize,
    /// Jobs replayed end to end.
    pub jobs: u64,
    /// Aggregate admission throughput (submit + advance + drain).
    pub jobs_per_sec: f64,
    /// Deadline-fulfilled completions reported by the router run.
    pub fulfilled: u64,
    /// Fulfilled completions summed over `shards` independent unsharded
    /// runs of the same hash partition — must equal [`Self::fulfilled`].
    pub oracle_fulfilled: u64,
}

impl ShardScalingRow {
    /// Whether the router matched the union-of-unsharded-runs oracle.
    pub fn identity_ok(&self) -> bool {
        self.fulfilled == self.oracle_fulfilled
    }
}

/// Builds the tiled workload: the standard synthetic SDSC-SP2 arrival
/// process (procs capped at 2 so every job fits a 2-node shard), tiled
/// end to end until `total` jobs by shifting submit times by whole base
/// spans. Ids stay globally unique so hash placement is well defined.
fn tiled_workload(base_jobs: usize, total: u64, seed: u64) -> Vec<Job> {
    let mut trace = SyntheticSdscSp2 {
        jobs: base_jobs,
        max_procs: 2,
        ..Default::default()
    }
    .generate(seed);
    DeadlineModel::default().assign(&mut Rng64::new(seed ^ 0x9e37), trace.jobs_mut());
    let base = trace.jobs();
    let last = base.last().map(|j| j.submit.as_secs()).unwrap_or(0.0);
    let span = last + (last / base.len().max(1) as f64).max(1.0);
    (0..total)
        .map(|i| {
            let b = &base[(i % base.len() as u64) as usize];
            let mut j = b.clone();
            j.id = JobId(i);
            j.submit = b.submit + SimDuration::from_secs(span * (i / base.len() as u64) as f64);
            j
        })
        .collect()
}

/// Runs the sweep. Cells replay `25 ×` the configured trace size (so
/// even `--quick` drives a few thousand jobs per cell); each cell is
/// timed through the router, then checked against the unsharded oracle.
///
/// # Panics
///
/// If any cell's fulfilled count diverges from its oracle — a routing or
/// merge bug, never a tuning matter — so the subcommand exits non-zero
/// rather than plotting a wrong curve.
pub fn shard_scaling(cfg: &FigureConfig) -> Vec<ShardScalingRow> {
    let seed = cfg.seeds.first().copied().unwrap_or(1);
    let base_jobs = cfg.jobs.max(300);
    let total = base_jobs as u64 * 25;
    let workload = tiled_workload(base_jobs, total, seed);
    let mut rows = Vec::new();
    for shards in SHARD_LADDER {
        let nodes = (Cluster::sdsc_sp2().len() / shards).max(1);
        let sub = Cluster::homogeneous(nodes, 168.0);

        // Timed router run: advances chunked once per workload tile (the
        // facade's equivalence contract keeps chunked advancing
        // outcome-identical; rare fan-outs amortise the thread scope).
        let mut router = ShardedRms::new(
            (0..shards)
                .map(|_| PolicyKind::LibraRisk.rms(&sub))
                .collect(),
            RouteBy::JobHash,
        )
        .expect("shard ladder never builds an empty router");
        let mut sink = OnlineReport::new();
        let t0 = Instant::now();
        for (i, job) in workload.iter().enumerate() {
            let now = job.submit;
            router.submit(job.clone(), now);
            if (i + 1) % base_jobs == 0 {
                router
                    .advance_with(now, |e| sink.record(e.seq, e.record))
                    .expect("no shard panics in the scaling sweep");
            }
        }
        router
            .drain_with(|e| sink.record(e.seq, e.record))
            .expect("no shard panics in the scaling sweep");
        let jobs_per_sec = total as f64 / t0.elapsed().as_secs_f64();

        // Oracle: one plain (unsharded) run per hash class over the same
        // sub-cluster, summed.
        let mut oracle_fulfilled = 0;
        for s in 0..shards {
            let mut rms = PolicyKind::LibraRisk.rms(&sub);
            let mut oracle = OnlineReport::new();
            for job in workload.iter() {
                if job_hash_shard(job.id, shards) == s {
                    rms.submit(job.clone(), job.submit);
                }
            }
            for e in rms.drain() {
                oracle.record(e.seq, e.record);
            }
            oracle_fulfilled += oracle.fulfilled();
        }

        let row = ShardScalingRow {
            shards,
            jobs: total,
            jobs_per_sec,
            fulfilled: sink.fulfilled(),
            oracle_fulfilled,
        };
        assert!(
            row.identity_ok(),
            "shard-scaling identity check failed at {} shards: router fulfilled {} \
             vs union-of-unsharded-runs {}",
            row.shards,
            row.fulfilled,
            row.oracle_fulfilled,
        );
        rows.push(row);
    }
    rows
}

/// Renders the throughput-vs-shards curve as one standalone SVG.
pub fn shard_scaling_svg(rows: &[ShardScalingRow]) -> String {
    let mut s = Series::new("aggregate throughput (jobs/s)");
    for r in rows {
        s.observe(r.shards as f64, r.jobs_per_sec);
    }
    svg::render(
        &[&s],
        &SvgOptions {
            title: "Sharded router: aggregate admission throughput".into(),
            x_label: "shards (128 nodes split evenly)".into(),
            y_label: "jobs / second".into(),
            ..Default::default()
        },
    )
}

/// The sweep rows as CSV.
pub fn shard_scaling_csv(rows: &[ShardScalingRow]) -> String {
    let mut out = String::from("shards,jobs,jobs_per_sec,fulfilled,oracle_fulfilled,identity\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.0},{},{},{}\n",
            r.shards,
            r.jobs,
            r.jobs_per_sec,
            r.fulfilled,
            r.oracle_fulfilled,
            if r.identity_ok() { "ok" } else { "MISMATCH" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_holds_identity_and_renders() {
        let cfg = FigureConfig::quick();
        let rows = shard_scaling(&cfg);
        assert_eq!(rows.len(), SHARD_LADDER.len());
        for r in &rows {
            assert!(r.identity_ok());
            assert!(r.jobs_per_sec > 0.0);
        }
        // Every cell replays the identical workload, so the total
        // resolved volume matches across cells even though placement
        // differs; the 1-shard cell is the literal unsharded run.
        assert_eq!(rows[0].shards, 1);
        let csv = shard_scaling_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.contains(",ok"));
        let svg_doc = shard_scaling_svg(&rows);
        assert!(svg_doc.starts_with("<svg") || svg_doc.contains("<svg"));
    }
}
