//! # `experiments` — the harness that regenerates every figure and table
//! of the paper
//!
//! Each figure of the evaluation (§5) is a parameter sweep over the same
//! pipeline:
//!
//! 1. build an SDSC-SP2-like trace ([`scenario::Scenario`]),
//! 2. assign deadlines (urgency mix × deadline high:low ratio),
//! 3. pick an estimate regime (accurate / trace / x % inaccuracy),
//! 4. run every policy ([`librisk::PolicyKind`]) over the trace,
//! 5. aggregate *% of deadlines fulfilled* and *average slowdown* into
//!    [`metrics::Series`] curves.
//!
//! The [`sweep`] module runs the cross product of (sweep point × policy ×
//! seed) on a scoped thread pool; [`figures`] defines the four sweeps
//! of the paper plus our ablations; [`report`] renders everything as
//! markdown and CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint_run;
pub mod figures;
pub mod obs_run;
pub mod report;
pub mod scenario;
pub mod shard_scaling;
pub mod sweep;
pub mod telemetry_run;

pub use scenario::{EstimateRegime, Scenario, TraceSource};
pub use sweep::{run_sweep, SweepOutcome};
