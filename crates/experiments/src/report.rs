//! Rendering figures to markdown (stdout) and CSV (files).

use crate::figures::Figure;
use metrics::Table;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a whole figure as markdown.
pub fn figure_to_markdown(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {} — {}\n", fig.id, fig.title);
    for panel in &fig.panels {
        out.push_str(&panel.to_table().to_markdown());
        out.push('\n');
    }
    out
}

/// Renders a whole figure as markdown tables followed by ASCII charts of
/// every panel (fenced as code so the markdown renders cleanly).
pub fn figure_to_markdown_with_charts(fig: &Figure) -> String {
    let mut out = figure_to_markdown(fig);
    for panel in &fig.panels {
        let _ = writeln!(out, "```");
        out.push_str(&panel.to_chart());
        let _ = writeln!(out, "```\n");
    }
    out
}

/// Writes one CSV file per panel into `dir` (created if missing); returns
/// the written paths.
pub fn write_figure_csv(fig: &Figure, dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (i, panel) in fig.panels.iter().enumerate() {
        let letter = (b'a' + i as u8) as char;
        let path = dir.join(format!("{}_{letter}.csv", fig.id));
        std::fs::write(&path, panel.to_table().to_csv())?;
        written.push(path);
    }
    Ok(written)
}

/// Writes one SVG file per panel into `dir` (created if missing); returns
/// the written paths.
pub fn write_figure_svg(fig: &Figure, dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (i, panel) in fig.panels.iter().enumerate() {
        let letter = (b'a' + i as u8) as char;
        let path = dir.join(format!("{}_{letter}.svg", fig.id));
        std::fs::write(&path, panel.to_svg())?;
        written.push(path);
    }
    Ok(written)
}

/// Writes a standalone table as CSV.
pub fn write_table_csv(table: &Table, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Panel;
    use metrics::Series;

    fn tiny_figure() -> Figure {
        let mut s = Series::new("LibraRisk");
        s.observe(0.5, 42.0);
        Figure {
            id: "figX".into(),
            title: "test".into(),
            panels: vec![Panel {
                label: "(a)".into(),
                x_label: "x".into(),
                metric: "m".into(),
                series: vec![s],
            }],
        }
    }

    #[test]
    fn markdown_contains_panel_tables() {
        let md = figure_to_markdown(&tiny_figure());
        assert!(md.contains("## figX"));
        assert!(md.contains("LibraRisk"));
        assert!(md.contains("42.00"));
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join(format!("librisk-test-{}", std::process::id()));
        let written = write_figure_csv(&tiny_figure(), &dir).unwrap();
        assert_eq!(written.len(), 1);
        let text = std::fs::read_to_string(&written[0]).unwrap();
        assert!(text.contains("LibraRisk"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
