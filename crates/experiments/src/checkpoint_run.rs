//! Checkpoint probe behind `experiments checkpoint`.
//!
//! Measures the operational cost of the crash-safety layer on the
//! standard churn scenario — snapshot size on the wire, save / load /
//! restore latency — and validates the two properties the layer
//! promises, failing loudly (panic → non-zero exit) if either breaks:
//!
//! * **bitwise resume**: checkpointing mid-run and restoring into a
//!   blank RMS finishes with exactly the unbroken run's outcomes, and
//! * **loud corruption**: a flipped bit in the snapshot is detected as
//!   a structured error, never a silent misparse.

use crate::figures::FigureConfig;
use crate::obs_run::obs_scenario;
use cluster::RecoveryPolicy;
use librisk::ckpt;
use librisk::report::JobRecord;
use librisk::{ClusterRms, PolicyKind};
use std::time::Instant;
use workload::Job;

/// One checkpoint probe run: costs plus validation verdicts.
#[derive(Debug)]
pub struct CheckpointProbe {
    /// Jobs in the scenario trace.
    pub jobs: usize,
    /// Jobs submitted before the snapshot was taken.
    pub cut: usize,
    /// Serialized snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Mean `ckpt::save` latency in microseconds.
    pub save_us: f64,
    /// Mean `ckpt::load` (parse + verify) latency in microseconds.
    pub load_us: f64,
    /// Mean `Checkpoint::restore_into` latency in microseconds.
    pub restore_us: f64,
    /// Deadline-fulfilled count of the unbroken run (equals the resumed
    /// run's — asserted).
    pub fulfilled: u64,
    /// Whether a flipped bit in the snapshot surfaced as a structured
    /// error (asserted true).
    pub corruption_detected: bool,
}

impl CheckpointProbe {
    /// CSV rendering (one header + one row).
    pub fn to_csv(&self) -> String {
        format!(
            "jobs,cut,snapshot_bytes,save_us,load_us,restore_us,fulfilled,corruption_detected\n\
             {},{},{},{:.1},{:.1},{:.1},{},{}\n",
            self.jobs,
            self.cut,
            self.snapshot_bytes,
            self.save_us,
            self.load_us,
            self.restore_us,
            self.fulfilled,
            self.corruption_detected,
        )
    }
}

/// Advances to each arrival and submits, folding resolved events into
/// `out`.
fn drive(rms: &mut ClusterRms<'_>, jobs: &[Job], out: &mut Vec<(u64, JobRecord)>) {
    for job in jobs {
        out.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
        rms.submit(job.clone(), job.submit);
    }
}

fn fulfilled_count(records: &[(u64, JobRecord)]) -> u64 {
    records.iter().filter(|(_, r)| r.fulfilled()).count() as u64
}

/// Runs the probe on the standard churn scenario with
/// [`PolicyKind::LibraRisk`].
///
/// # Panics
///
/// If the resumed run diverges from the unbroken run, or a corrupted
/// snapshot loads — both are crash-safety bugs, never tuning matters,
/// so the subcommand exits non-zero rather than printing a wrong table.
pub fn checkpoint_probe(cfg: &FigureConfig) -> CheckpointProbe {
    let policy = PolicyKind::LibraRisk;
    let scenario = obs_scenario(cfg);
    let trace = scenario.build_trace();
    let cluster = scenario.cluster();
    let plan = scenario.fault_plan(&trace);
    let cut = trace.len() / 2;

    // Unbroken arm.
    let mut unbroken = Vec::new();
    let mut rms = policy
        .rms(&cluster)
        .with_faults(plan.clone(), RecoveryPolicy::Requeue);
    drive(&mut rms, trace.jobs(), &mut unbroken);
    unbroken.extend(rms.drain().map(|e| (e.seq, e.record)));

    // Checkpointed arm: drive to the cut, snapshot, restore, continue.
    let mut resumed = Vec::new();
    let mut rms = policy
        .rms(&cluster)
        .with_faults(plan.clone(), RecoveryPolicy::Requeue);
    drive(&mut rms, &trace.jobs()[..cut], &mut resumed);

    const ROUNDS: u32 = 16;
    let t0 = Instant::now();
    let mut bytes = Vec::new();
    for _ in 0..ROUNDS {
        bytes = ckpt::save(&rms, None);
    }
    let save_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
    drop(rms);

    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        ckpt::load(&bytes).expect("fresh snapshot must load");
    }
    let load_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
    let loaded = ckpt::load(&bytes).expect("fresh snapshot must load");

    let mut restore_us = 0.0;
    let mut restored = None;
    for _ in 0..ROUNDS {
        let blank = policy.rms(&cluster);
        let t0 = Instant::now();
        let rms = loaded
            .restore_into(blank)
            .expect("snapshot must restore into a matching blank");
        restore_us += t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
        restored = Some(rms);
    }
    let mut rms = restored.expect("at least one restore round");
    drive(&mut rms, &trace.jobs()[cut..], &mut resumed);
    resumed.extend(rms.drain().map(|e| (e.seq, e.record)));

    assert_eq!(
        unbroken.len(),
        resumed.len(),
        "resumed run resolved a different number of jobs"
    );
    for ((us, ur), (rs, rr)) in unbroken.iter().zip(&resumed) {
        assert_eq!(us, rs, "resumed run diverged from the unbroken run");
        assert_eq!(
            ur.fulfilled(),
            rr.fulfilled(),
            "seq {us}: resumed outcome diverged from the unbroken run"
        );
    }

    // Corruption smoke: one flipped bit mid-snapshot must be detected.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    let corruption_detected = ckpt::load(&corrupt).is_err();
    assert!(
        corruption_detected,
        "a corrupted snapshot loaded without an error"
    );

    CheckpointProbe {
        jobs: trace.len(),
        cut,
        snapshot_bytes: bytes.len(),
        save_us,
        load_us,
        restore_us,
        fulfilled: fulfilled_count(&unbroken),
        corruption_detected,
    }
}
