//! Observability-driven runs: the `timeline` figure and the `trace`
//! dump behind `experiments timeline` / `experiments trace`.
//!
//! Both drive one churn scenario through the online facade with a
//! recorder attached. `timeline` samples the facade's own gauges
//! (utilization, in-flight) plus the policy audit gauge captured from
//! decision events into [`metrics::Series`] curves and renders them as
//! one SVG; `trace` retains the full event stream in a ring and writes
//! the three export formats (JSONL, Chrome `trace_event`, Prometheus
//! text), re-parsing what it wrote so a corrupt exporter fails loudly
//! instead of producing an unloadable file.

use crate::figures::FigureConfig;
use crate::scenario::Scenario;
use cluster::RecoveryPolicy;
use librisk::rms::drive_trace;
use librisk::{OnlineReport, PolicyKind};
use metrics::svg::{self, SvgOptions};
use metrics::Series;
use obs::{DecisionAudit, Event, Recorder, TraceRecorder};
use workload::params;

/// The churn scenario both subcommands run: the standard trace with a
/// node outage rate high enough that the timeline visibly dips and the
/// trace contains `node_down`/`node_up` events.
pub fn obs_scenario(cfg: &FigureConfig) -> Scenario {
    let jobs = cfg.jobs;
    let span = jobs as f64 * params::MEAN_INTER_ARRIVAL_SECS;
    Scenario {
        jobs,
        seed: cfg.seeds.first().copied().unwrap_or(1),
        node_mtbf: span / 4.0,
        node_mttr: span / 40.0,
        recovery: RecoveryPolicy::Requeue,
        ..Default::default()
    }
}

/// Captures the policy audit gauge (peak share, cluster risk, queue
/// depth) from decision events as a time series, without retaining the
/// events themselves.
#[derive(Debug, Default)]
struct GaugeSampler {
    key: Option<&'static str>,
    samples: Vec<(f64, f64)>,
}

impl Recorder for GaugeSampler {
    fn wants_audit_gauges(&self) -> bool {
        true
    }

    fn record(&mut self, sim_secs: f64, event: Event) {
        if let Event::Decision {
            audit: DecisionAudit {
                gauge: Some(delta), ..
            },
            ..
        } = event
        {
            self.key.get_or_insert(delta.key);
            if self.key == Some(delta.key) {
                self.samples.push((sim_secs, delta.after));
            }
        }
    }
}

/// The assembled timeline: curves plus run-level context.
#[derive(Debug)]
pub struct Timeline {
    /// Mean utilization of up capacity, sampled per arrival.
    pub utilization: Series,
    /// Resident + queued jobs as a fraction of cluster size.
    pub in_flight: Series,
    /// The policy audit gauge over time, when the policy exposes one.
    pub gauge: Option<Series>,
    /// Jobs driven through the facade.
    pub jobs: usize,
}

impl Timeline {
    /// Renders the curves as one standalone SVG document.
    pub fn to_svg(&self, policy: PolicyKind) -> String {
        let mut series: Vec<&Series> = vec![&self.utilization, &self.in_flight];
        if let Some(g) = &self.gauge {
            series.push(g);
        }
        svg::render(
            &series,
            &SvgOptions {
                title: format!("{policy:?} under node churn ({} jobs)", self.jobs),
                x_label: "simulated time (s)".into(),
                y_label: "gauge value".into(),
                ..Default::default()
            },
        )
    }
}

/// Drives one policy over the churn scenario, sampling the facade
/// gauges at every arrival (thinned to at most ~240 points per curve).
pub fn timeline(scenario: &Scenario, policy: PolicyKind) -> Timeline {
    let trace = scenario.build_trace();
    let cluster = scenario.cluster();
    let nodes = cluster.len().max(1) as f64;
    let stride = (trace.len() / 240).max(1);
    let mut sampler = GaugeSampler::default();
    let mut utilization = Series::new("utilization");
    let mut in_flight = Series::new("in-flight / nodes");
    {
        let mut rms = policy
            .rms(&cluster)
            .with_faults(scenario.fault_plan(&trace), scenario.recovery)
            .with_recorder(&mut sampler);
        for (i, job) in trace.jobs().iter().enumerate() {
            let t = job.submit;
            let _ = rms.advance(t);
            rms.submit(job.clone(), t);
            if i % stride == 0 {
                utilization.observe(t.as_secs(), rms.utilization());
                in_flight.observe(t.as_secs(), rms.in_flight() as f64 / nodes);
            }
        }
        let _ = rms.drain();
        let end = rms.now().as_secs();
        utilization.observe(end, rms.utilization());
        in_flight.observe(end, rms.in_flight() as f64 / nodes);
    }
    let gauge = sampler.key.map(|key| {
        let mut s = Series::new(key);
        let thin = (sampler.samples.len() / 240).max(1);
        for (i, (t, v)) in sampler.samples.iter().enumerate() {
            if i % thin == 0 {
                s.observe(*t, *v);
            }
        }
        s
    });
    Timeline {
        utilization,
        in_flight,
        gauge,
        jobs: trace.len(),
    }
}

/// Drives one policy over the churn scenario with a ring recorder and
/// returns the recorder (events + registry) plus the run's aggregates.
pub fn trace_run(
    scenario: &Scenario,
    policy: PolicyKind,
    capacity: usize,
) -> (TraceRecorder, OnlineReport) {
    let trace = scenario.build_trace();
    let cluster = scenario.cluster();
    let mut recorder = TraceRecorder::new(capacity).with_audit_gauges();
    let mut sink = OnlineReport::new();
    {
        let mut rms = policy
            .rms(&cluster)
            .with_faults(scenario.fault_plan(&trace), scenario.recovery)
            .with_recorder(&mut recorder);
        drive_trace(&mut rms, &trace, &mut sink);
        sink.set_utilization(rms.utilization());
        sink.set_churn(*rms.churn());
    }
    (recorder, sink)
}

/// Re-parses both JSON exports of a recorded run, returning an error
/// string naming the first malformed artefact. The `trace` subcommand
/// and the CI smoke step call this before writing anything to disk.
pub fn validate_exports(recorder: &TraceRecorder) -> Result<(), String> {
    for (i, line) in recorder.to_jsonl().lines().enumerate() {
        let v = obs::json::parse(line).map_err(|e| format!("JSONL line {}: {e}", i + 1))?;
        if v.get("type").and_then(|t| t.as_str()).is_none() {
            return Err(format!("JSONL line {}: missing \"type\"", i + 1));
        }
    }
    let trace =
        obs::json::parse(&recorder.to_chrome_trace()).map_err(|e| format!("chrome trace: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("chrome trace: missing traceEvents array")?;
    if events.len() != recorder.len() {
        return Err(format!(
            "chrome trace: {} events for {} recorded",
            events.len(),
            recorder.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scenario {
        obs_scenario(&FigureConfig {
            jobs: 200,
            seeds: vec![1],
            threads: 1,
        })
    }

    #[test]
    fn timeline_samples_all_curves() {
        let t = timeline(&quick(), PolicyKind::LibraRisk);
        assert!(t.utilization.len() > 10);
        assert!(t.in_flight.len() > 10);
        let gauge = t.gauge.as_ref().expect("LibraRisk exposes cluster_risk");
        assert_eq!(gauge.name(), "cluster_risk");
        assert!(!gauge.is_empty());
        let svg = t.to_svg(PolicyKind::LibraRisk);
        assert!(svg.starts_with("<svg"), "renders a standalone SVG");
        assert!(svg.contains("cluster_risk"));
    }

    #[test]
    fn timeline_without_audit_gauge_has_two_curves() {
        let t = timeline(&quick(), PolicyKind::Fcfs);
        // Queued backends expose queue_depth; proportional-only gauges
        // are absent. Either way the figure renders.
        let svg = t.to_svg(PolicyKind::Fcfs);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn trace_run_records_and_exports_validate() {
        let (rec, report) = trace_run(&quick(), PolicyKind::LibraRisk, 1 << 14);
        assert!(!rec.is_empty(), "events were recorded");
        assert_eq!(report.submitted(), 200);
        assert!(
            rec.registry().counter(obs::keys::DECISIONS) >= 200,
            "every submit produced a decision"
        );
        validate_exports(&rec).expect("exports parse back");
        assert!(rec
            .registry()
            .to_prometheus()
            .contains("rms_decisions_total"));
    }

    #[test]
    fn tiny_ring_still_validates() {
        let (rec, _) = trace_run(&quick(), PolicyKind::Edf, 32);
        assert!(rec.dropped() > 0, "ring overflowed as intended");
        validate_exports(&rec).expect("truncated ring still exports cleanly");
    }
}

/// One measured arm of the kernel-volume experiment: a fault-free replay
/// of the standard trace at one size, with the equivalence classifier
/// either off (the "before" arm — every considered node pays a
/// projection, though signatures are still counted) or on (the shipped
/// decision path: dominance screen, class replay, pairing, memos).
#[derive(Debug, Clone, Copy)]
pub struct KernelVolumeRow {
    /// Whether the equivalence classifier was enabled for this arm.
    pub classifier: bool,
    /// Jobs driven through the facade.
    pub jobs: usize,
    /// Admission decisions taken ([`obs::keys::DECISIONS`]).
    pub decisions: u64,
    /// Projection-kernel executions ([`obs::keys::PROJECTIONS_RUN_TOTAL`]) —
    /// the distinct node profiles actually evaluated.
    pub projections_run: u64,
    /// Node evaluations settled without the kernel
    /// ([`obs::keys::PROJECTIONS_AVOIDED_TOTAL`]).
    pub projections_avoided: u64,
    /// Distinct `(class, speed)` profiles per decision, summed
    /// ([`obs::keys::DECISION_CLASSES_TOTAL`]).
    pub classes_total: u64,
    /// Evaluations settled by the zero-risk dominance screen
    /// ([`obs::keys::SCREENED_ZERO_RISK_TOTAL`]).
    pub screened: u64,
    /// Deadline-fulfilled completions — the anchor that both arms decide
    /// identically (the classifier only changes *how* verdicts are
    /// proven, never the verdicts).
    pub fulfilled: u64,
}

impl KernelVolumeRow {
    /// Mean distinct profiles projected per decision.
    pub fn profiles_per_decision(&self) -> f64 {
        self.projections_run as f64 / self.decisions.max(1) as f64
    }

    /// Fraction of considered nodes settled without running the kernel.
    pub fn avoided_ratio(&self) -> f64 {
        let considered = self.projections_run + self.projections_avoided;
        self.projections_avoided as f64 / considered.max(1) as f64
    }
}

/// Runs the kernel-volume experiment: the standard trace at a ladder of
/// sizes, each driven twice (classifier off / on) through the online
/// facade with a metrics registry attached, reading the evaluation-volume
/// counters the decision hook feeds.
pub fn kernel_volume(cfg: &FigureConfig) -> Vec<KernelVolumeRow> {
    use cluster::proportional::ProportionalConfig;
    use librisk::{ClusterRms, LibraRisk};
    let base = cfg.jobs.max(400);
    let sizes = [base / 4, base / 2, (base * 3) / 4, base];
    let seed = cfg.seeds.first().copied().unwrap_or(1);
    let mut rows = Vec::new();
    for &jobs in &sizes {
        for classifier in [false, true] {
            let scenario = Scenario {
                jobs,
                seed,
                ..Default::default()
            };
            let trace = scenario.build_trace();
            let cluster = scenario.cluster();
            let mut recorder = TraceRecorder::new(1024);
            let mut sink = OnlineReport::new();
            {
                let policy = LibraRisk::paper().with_classifier(classifier);
                let mut rms =
                    ClusterRms::proportional(cluster, ProportionalConfig::default(), policy)
                        .with_recorder(&mut recorder);
                drive_trace(&mut rms, &trace, &mut sink);
            }
            let reg = recorder.registry();
            rows.push(KernelVolumeRow {
                classifier,
                jobs,
                decisions: reg.counter(obs::keys::DECISIONS),
                projections_run: reg.counter(obs::keys::PROJECTIONS_RUN_TOTAL),
                projections_avoided: reg.counter(obs::keys::PROJECTIONS_AVOIDED_TOTAL),
                classes_total: reg.counter(obs::keys::DECISION_CLASSES_TOTAL),
                screened: reg.counter(obs::keys::SCREENED_ZERO_RISK_TOTAL),
                fulfilled: sink.fulfilled(),
            });
        }
    }
    rows
}

/// Renders the two arms' distinct-profiles-per-decision curves (x = jobs
/// driven) as one standalone SVG document.
pub fn kernel_volume_svg(rows: &[KernelVolumeRow]) -> String {
    let mut before = Series::new("classifier off (profiles/decision)");
    let mut after = Series::new("classifier on (profiles/decision)");
    for r in rows {
        let s = if r.classifier {
            &mut after
        } else {
            &mut before
        };
        s.observe(r.jobs as f64, r.profiles_per_decision());
    }
    svg::render(
        &[&before, &after],
        &SvgOptions {
            title: "Distinct node profiles projected per decision".into(),
            x_label: "jobs driven".into(),
            y_label: "profiles / decision".into(),
            ..Default::default()
        },
    )
}

/// The kernel-volume rows as CSV.
pub fn kernel_volume_csv(rows: &[KernelVolumeRow]) -> String {
    let mut out = String::from(
        "classifier,jobs,decisions,projections_run,projections_avoided,\
         classes_total,screened_zero_risk,fulfilled,profiles_per_decision,avoided_ratio\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.3},{:.3}\n",
            if r.classifier { "on" } else { "off" },
            r.jobs,
            r.decisions,
            r.projections_run,
            r.projections_avoided,
            r.classes_total,
            r.screened,
            r.fulfilled,
            r.profiles_per_decision(),
            r.avoided_ratio(),
        ));
    }
    out
}
