//! Telemetry-plane runners: the `experiments profile` hot-path phase
//! breakdown and the `experiments serve` live HTTP drive.
//!
//! `profile` replays the committed bench workload (the golden 2000-job
//! SDSC-SP2 trace behind `BENCH_admission.json`) through the plain
//! LibraRisk facade with the [`obs::phase`] profiler enabled, then
//! reports where the wall clock went. Two invariants are enforced, not
//! just reported: the lap-tiled advance phases must cover ≥ 90 % of the
//! bracketing `advance_total` time (otherwise the taxonomy has a hole
//! and the breakdown is a lie), and the run must still fulfil exactly
//! the golden deadline count (the profiler is behaviourally inert — a
//! drifted count means a hook leaked into the engine).
//!
//! `serve` drives a [`ShardedRms`] over a synthetic workload while
//! publishing to a [`TelemetryHub`] served over HTTP by a
//! [`TelemetryServer`]: `/metrics` gets the phase/export registry,
//! `/healthz` per-shard liveness, `/snapshot` the most recent outcome
//! events as JSONL, and `/events` a live broadcast stream. The bound
//! address is printed as `TELEMETRY_ADDR=…` on stdout before the drive
//! starts, which is what the CI smoke step scrapes.

use cluster::Cluster;
use librisk::report::ReportSink;
use librisk::rms::drive_trace;
use librisk::{OnlineReport, PolicyKind, RouteBy, ShardedRms};
use obs::phase::{self, Counter, Phase};
use obs::{HealthReport, Registry, ShardHealth, TelemetryHub, TelemetryServer};
use sim::Rng64;
use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;
use workload::Trace;

/// Jobs in the committed bench workload the profile replays.
pub const GOLDEN_JOBS: usize = 2_000;
/// The pinned fulfilled count for that workload (see
/// `BENCH_admission.json` and `sharded_rms.rs`).
pub const GOLDEN_FULFILLED: u64 = 1_563;

/// The lap-tiled advance phases — together they must cover the
/// `advance_total` bracket.
pub const ADVANCE_TILES: [Phase; 4] = [
    Phase::EventHeapPop,
    Phase::ProgressPass,
    Phase::RecomputeSweep,
    Phase::CompletionEmit,
];

/// The bench workload behind the committed golden numbers: SDSC-SP2-like
/// jobs (trace seed 11, deadline seed 12) on the full 128-node machine.
fn bench_trace(jobs: usize) -> Trace {
    let mut trace = SyntheticSdscSp2 {
        jobs,
        ..Default::default()
    }
    .generate(11);
    DeadlineModel::default().assign(&mut Rng64::new(12), trace.jobs_mut());
    trace
}

/// One phase's line in the profile breakdown.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRow {
    /// The phase.
    pub phase: Phase,
    /// Total nanoseconds attributed.
    pub ns: u64,
    /// Entries (lap marks or span drops).
    pub calls: u64,
    /// Share of the `advance_total` bracket (only meaningful for the
    /// advance tiles; decide-path spans run outside the bracket).
    pub share_of_advance: f64,
    /// Upper-bound p99 of the per-flush duration distribution, ns.
    pub p99_ns: f64,
}

/// The assembled profile: per-phase rows, cache counters, and the
/// run-level anchors.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Jobs replayed.
    pub jobs: usize,
    /// Deadline-fulfilled completions (== [`GOLDEN_FULFILLED`] on the
    /// golden workload).
    pub fulfilled: u64,
    /// End-to-end wall clock of the drive, seconds.
    pub wall_secs: f64,
    /// Total nanoseconds inside `advance_total` brackets.
    pub advance_ns: u64,
    /// Sum of the advance tiles over [`Self::advance_ns`] — the phase
    /// taxonomy's coverage of the advance path.
    pub coverage: f64,
    /// Every phase that recorded anything, in taxonomy order.
    pub rows: Vec<PhaseRow>,
    /// Cache-machinery counters `(registry key, value)`, non-zero only.
    pub counters: Vec<(&'static str, u64)>,
}

/// Replays `jobs` of the bench workload through the plain LibraRisk
/// facade with the phase profiler on and assembles the breakdown.
///
/// # Panics
///
/// If the tiled phases cover less than 90 % of the advance bracket, or
/// if the golden-size run does not fulfil exactly [`GOLDEN_FULFILLED`]
/// — either way the profile would be misleading, so the subcommand
/// exits non-zero rather than printing it.
pub fn profile_probe(jobs: usize) -> ProfileReport {
    let trace = bench_trace(jobs);
    let cluster = Cluster::sdsc_sp2();
    phase::reset();
    phase::set_enabled(true);
    let mut sink = OnlineReport::new();
    let t0 = Instant::now();
    {
        let mut rms = PolicyKind::LibraRisk.rms(&cluster);
        drive_trace(&mut rms, &trace, &mut sink);
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    phase::set_enabled(false);
    let snap = phase::snapshot();
    phase::reset();

    let advance_ns = snap.ns(Phase::AdvanceTotal);
    let tiled: u64 = ADVANCE_TILES.iter().map(|&p| snap.ns(p)).sum();
    let coverage = tiled as f64 / advance_ns.max(1) as f64;
    let rows: Vec<PhaseRow> = Phase::ALL
        .into_iter()
        .filter(|&p| snap.calls(p) > 0)
        .map(|p| PhaseRow {
            phase: p,
            ns: snap.ns(p),
            calls: snap.calls(p),
            share_of_advance: snap.ns(p) as f64 / advance_ns.max(1) as f64,
            p99_ns: snap.quantile_ns(p, 0.99),
        })
        .collect();
    let counters: Vec<(&'static str, u64)> = Counter::ALL
        .into_iter()
        .map(|c| (c.key(), snap.counter(c)))
        .filter(|(_, v)| *v > 0)
        .collect();

    let report = ProfileReport {
        jobs,
        fulfilled: sink.fulfilled(),
        wall_secs,
        advance_ns,
        coverage,
        rows,
        counters,
    };
    assert!(
        report.coverage >= 0.90,
        "phase taxonomy covers only {:.1}% of the advance bracket \
         ({} of {} ns) — a hot phase is missing a lap mark",
        report.coverage * 100.0,
        tiled,
        advance_ns,
    );
    if jobs == GOLDEN_JOBS {
        assert_eq!(
            report.fulfilled, GOLDEN_FULFILLED,
            "profiler-on run drifted off the golden fulfilled count",
        );
    }
    report
}

impl ProfileReport {
    /// The per-phase rows as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("phase,key,ns_total,calls,share_of_advance,p99_ns\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.0}\n",
                r.phase.name(),
                r.phase.ns_key(),
                r.ns,
                r.calls,
                r.share_of_advance,
                r.p99_ns,
            ));
        }
        out
    }

    /// The cache-machinery counters as CSV.
    pub fn counters_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("{k},{v}\n"));
        }
        out
    }

    /// Renders the breakdown as one standalone SVG: a stacked bar for
    /// the lap-tiled advance phases (plus the unattributed sliver) and
    /// a second stacked bar for the decide-path spans, both on the same
    /// nanosecond scale.
    pub fn to_svg(&self) -> String {
        const PALETTE: [&str; 6] = [
            "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#bab0ab",
        ];
        let tile_ns: Vec<(String, u64)> = ADVANCE_TILES
            .iter()
            .map(|&p| (p.name().to_string(), self.ns_of(p)))
            .collect();
        let tiled: u64 = tile_ns.iter().map(|(_, ns)| ns).sum();
        let mut advance_bar = tile_ns;
        advance_bar.push((
            "unattributed".to_string(),
            self.advance_ns.saturating_sub(tiled),
        ));
        let scan = self.ns_of(Phase::CandidateScan);
        let classify = self.ns_of(Phase::EquivClassify);
        let kernel = self.ns_of(Phase::VerdictKernel);
        let decide_bar = vec![
            ("equivalence classify".to_string(), classify),
            ("verdict kernel".to_string(), kernel),
            (
                "candidate scan (other)".to_string(),
                scan.saturating_sub(classify + kernel),
            ),
        ];
        let bars = [
            ("advance (lap-tiled)", advance_bar),
            ("decide (spans)", decide_bar),
        ];
        let scale_ns = bars
            .iter()
            .map(|(_, segs)| segs.iter().map(|(_, ns)| ns).sum::<u64>())
            .max()
            .unwrap_or(0)
            .max(1) as f64;

        let (width, bar_h, left, top, gap) = (760.0, 36.0, 170.0, 40.0, 28.0);
        let plot_w = width - left - 30.0;
        let mut out = String::new();
        let height = top + bars.len() as f64 * (bar_h + gap) + 26.0 * 6.0 + 20.0;
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             viewBox=\"0 0 {width} {height}\" font-family=\"sans-serif\" font-size=\"12\">\n"
        ));
        out.push_str(&format!(
            "<text x=\"{left}\" y=\"20\" font-size=\"14\">Hot-path phase breakdown — \
             {} jobs, {} fulfilled, {:.1}% advance coverage</text>\n",
            self.jobs,
            self.fulfilled,
            self.coverage * 100.0,
        ));
        let mut y = top;
        let mut legend: Vec<(String, &str)> = Vec::new();
        for (label, segs) in &bars {
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{:.1}\" text-anchor=\"end\">{label}</text>\n",
                left - 8.0,
                y + bar_h * 0.65,
            ));
            let mut x = left;
            for (i, (name, ns)) in segs.iter().enumerate() {
                let w = plot_w * (*ns as f64 / scale_ns);
                let color = PALETTE[i % PALETTE.len()];
                if w > 0.0 {
                    out.push_str(&format!(
                        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{bar_h}\" \
                         fill=\"{color}\"><title>{name}: {ns} ns</title></rect>\n"
                    ));
                }
                if legend.iter().all(|(n, _)| n != name) {
                    legend.push((name.clone(), color));
                }
                x += w;
            }
            y += bar_h + gap;
        }
        for (i, (name, color)) in legend.iter().enumerate() {
            let ly = y + i as f64 * 22.0;
            out.push_str(&format!(
                "<rect x=\"{left}\" y=\"{ly:.1}\" width=\"14\" height=\"14\" fill=\"{color}\"/>\n\
                 <text x=\"{:.1}\" y=\"{:.1}\">{name}</text>\n",
                left + 20.0,
                ly + 11.0,
            ));
        }
        out.push_str("</svg>\n");
        out
    }

    fn ns_of(&self, p: Phase) -> u64 {
        self.rows
            .iter()
            .find(|r| r.phase == p)
            .map(|r| r.ns)
            .unwrap_or(0)
    }
}

/// Knobs for the `serve` drive.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Jobs in the synthetic workload.
    pub jobs: usize,
    /// Shards the 128-node machine is split into.
    pub shards: usize,
    /// How long to keep serving after the drive finishes, seconds
    /// (cut short by `GET /shutdown`).
    pub linger_secs: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            jobs: 2_000,
            shards: 4,
            linger_secs: 30.0,
            seed: 1,
        }
    }
}

/// What the drive amounted to, for the subcommand's closing table.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Jobs submitted through the router.
    pub submitted: u64,
    /// Deadline-fulfilled completions.
    pub fulfilled: u64,
    /// Publish rounds (advance chunks) pushed to the hub.
    pub publishes: u64,
    /// Whether the linger ended via `GET /shutdown` (vs timing out).
    pub shut_down_remotely: bool,
}

/// Outcome events of recent advances kept for `/snapshot`.
const SNAPSHOT_RING: usize = 256;

/// Drives a sharded LibraRisk fleet over a synthetic workload while
/// serving live telemetry over HTTP, then lingers so scrapers can read
/// the final state. Prints `TELEMETRY_ADDR=<ip:port>` on stdout before
/// the drive starts.
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, String> {
    // Procs capped at 2 so every job fits even small shards (mirrors
    // the shard-scaling sweep).
    let mut trace = SyntheticSdscSp2 {
        jobs: opts.jobs,
        max_procs: 2,
        ..Default::default()
    }
    .generate(opts.seed);
    DeadlineModel::default().assign(&mut Rng64::new(opts.seed ^ 0x9e37), trace.jobs_mut());
    let shards = opts.shards.max(1);
    let nodes = (Cluster::sdsc_sp2().len() / shards).max(1);
    let sub = Cluster::homogeneous(nodes, 168.0);

    let hub = Arc::new(TelemetryHub::new());
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub))
        .map_err(|e| format!("cannot bind telemetry server: {e}"))?;
    println!("TELEMETRY_ADDR={}", server.local_addr());
    let _ = std::io::stdout().flush();

    phase::reset();
    phase::set_enabled(true);
    let mut router = ShardedRms::new(
        (0..shards)
            .map(|_| PolicyKind::LibraRisk.rms(&sub))
            .collect(),
        RouteBy::JobHash,
    )
    .map_err(|e| format!("cannot build router: {e:?}"))?;
    let mut sink = OnlineReport::new();
    let mut recent: VecDeque<String> = VecDeque::with_capacity(SNAPSHOT_RING);
    let chunk = (trace.len() / 64).max(1);
    let mut publishes = 0u64;
    for (i, job) in trace.jobs().iter().enumerate() {
        let now = job.submit;
        router.submit(job.clone(), now);
        if (i + 1) % chunk == 0 {
            publish_round(&hub, &mut router, &mut sink, &mut recent, now)?;
            publishes += 1;
        }
    }
    router
        .drain_with(|e| {
            push_event(&mut recent, &e);
            sink.record(e.seq, e.record);
        })
        .map_err(|e| format!("shard panicked during drain: {e:?}"))?;
    publish_state(&hub, &router, &recent);
    publishes += 1;
    phase::set_enabled(false);
    hub.broadcast(&format!(
        "{{\"type\":\"done\",\"submitted\":{},\"fulfilled\":{}}}",
        router.submitted(),
        sink.fulfilled(),
    ));

    let t0 = Instant::now();
    while !hub.closed() && t0.elapsed().as_secs_f64() < opts.linger_secs {
        std::thread::sleep(Duration::from_millis(100));
    }
    let shut_down_remotely = hub.closed();
    let summary = ServeSummary {
        submitted: router.submitted(),
        fulfilled: sink.fulfilled(),
        publishes,
        shut_down_remotely,
    };
    drop(router);
    server.shutdown();
    phase::reset();
    Ok(summary)
}

/// One advance chunk: advance every shard to "now", stream outcomes to
/// the report + the hub, then republish metrics/health/snapshot.
fn publish_round(
    hub: &Arc<TelemetryHub>,
    router: &mut ShardedRms<'_>,
    sink: &mut OnlineReport,
    recent: &mut VecDeque<String>,
    now: sim::SimTime,
) -> Result<(), String> {
    router
        .advance_with(now, |e| {
            let line = event_jsonl(&e);
            hub.broadcast(&line);
            push_line(recent, line);
            sink.record(e.seq, e.record);
        })
        .map_err(|e| format!("shard panicked during advance: {e:?}"))?;
    publish_state(hub, router, recent);
    Ok(())
}

/// Publishes the registry, health report, and snapshot ring.
fn publish_state(hub: &Arc<TelemetryHub>, router: &ShardedRms<'_>, recent: &VecDeque<String>) {
    let mut reg = Registry::new();
    phase::snapshot().export_into(&mut reg);
    hub.publish_registry(&reg);
    let watermark = router
        .shards()
        .iter()
        .map(|s| s.now().as_secs())
        .fold(0.0f64, f64::max);
    hub.set_health(HealthReport {
        ok: true,
        last_advance: watermark,
        shards: router
            .shards()
            .iter()
            .enumerate()
            .map(|(i, s)| ShardHealth {
                shard: i,
                in_flight: s.in_flight() as u64,
                submitted: s.submitted(),
                lag_secs: watermark - s.now().as_secs(),
            })
            .collect(),
    });
    let mut jsonl = String::new();
    for line in recent {
        jsonl.push_str(line);
        jsonl.push('\n');
    }
    hub.publish_snapshot(jsonl);
}

fn push_event(recent: &mut VecDeque<String>, e: &librisk::rms::JobEvent) {
    let line = event_jsonl(e);
    push_line(recent, line);
}

fn push_line(recent: &mut VecDeque<String>, line: String) {
    if recent.len() == SNAPSHOT_RING {
        recent.pop_front();
    }
    recent.push_back(line);
}

/// One resolved outcome as a JSONL line (hand-rolled; no serializer).
fn event_jsonl(e: &librisk::rms::JobEvent) -> String {
    use librisk::report::Outcome;
    let id = e.record.job.id.0;
    match e.record.outcome {
        Outcome::Completed { started, finish } => format!(
            "{{\"type\":\"job\",\"seq\":{},\"job\":{id},\"outcome\":\"completed\",\
             \"started\":{},\"finish\":{},\"fulfilled\":{}}}",
            e.seq,
            started.as_secs(),
            finish.as_secs(),
            e.record.fulfilled(),
        ),
        Outcome::Rejected { at, reason } => format!(
            "{{\"type\":\"job\",\"seq\":{},\"job\":{id},\"outcome\":\"rejected\",\
             \"at\":{},\"reason\":\"{}\"}}",
            e.seq,
            at.as_secs(),
            reason.code(),
        ),
        Outcome::Killed { at, node } => format!(
            "{{\"type\":\"job\",\"seq\":{},\"job\":{id},\"outcome\":\"killed\",\
             \"at\":{},\"node\":{}}}",
            e.seq,
            at.as_secs(),
            node.0,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both runners toggle the process-global profiler; serialize them.
    fn with_profiler_lock(f: impl FnOnce()) {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f();
    }

    #[test]
    fn quick_profile_covers_the_advance_bracket() {
        with_profiler_lock(|| {
            let report = profile_probe(250);
            assert!(report.coverage >= 0.90, "coverage {:.3}", report.coverage);
            assert!(report.advance_ns > 0);
            assert!(report
                .rows
                .iter()
                .any(|r| r.phase == Phase::ProgressPass && r.calls > 0));
            assert!(
                report
                    .counters
                    .iter()
                    .any(|(k, _)| *k == Counter::ProjectionsRun.key()),
                "decision counters recorded"
            );
            let csv = report.to_csv();
            assert!(csv.lines().count() > 3);
            assert!(csv.contains("phase_advance_total_ns_total"));
            let svg = report.to_svg();
            assert!(svg.starts_with("<svg"));
            assert!(svg.contains("progress pass"));
        });
    }

    #[test]
    fn serve_drive_publishes_and_returns_after_linger() {
        let opts = ServeOptions {
            jobs: 120,
            shards: 2,
            // A zero linger returns right after the drive; the HTTP
            // endpoints themselves are covered by obs's socket tests
            // and the CI smoke step.
            linger_secs: 0.0,
            seed: 1,
        };
        with_profiler_lock(|| {
            let summary = serve(&opts).expect("serve ran");
            assert_eq!(summary.submitted, 120);
            assert!(summary.publishes > 0);
            assert!(!summary.shut_down_remotely, "nobody called /shutdown");
        });
    }
}
