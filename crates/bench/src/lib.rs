//! Shared helpers for the Criterion benches.
//!
//! Each `bench_fig*` target regenerates the corresponding figure of the
//! paper at bench scale (printing the same rows the paper reports) and
//! then times representative simulation cells. The full-scale figures are
//! produced by the `experiments` binary (`experiments all`).

use experiments::figures::FigureConfig;
use experiments::Scenario;

/// Bench-scale figure configuration: one seed, reduced trace.
pub fn bench_config() -> FigureConfig {
    FigureConfig {
        jobs: 300,
        seeds: vec![1],
        threads: experiments::sweep::default_threads(),
    }
}

/// The default-point scenario (arrival delay factor 1, ratio 4, 20 % high
/// urgency, trace estimates) at the given trace size.
pub fn default_scenario(jobs: usize) -> Scenario {
    Scenario {
        jobs,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let cfg = bench_config();
        assert!(cfg.jobs <= 500);
        assert_eq!(cfg.seeds.len(), 1);
    }

    #[test]
    fn default_scenario_sizes() {
        assert_eq!(default_scenario(123).jobs, 123);
    }
}
