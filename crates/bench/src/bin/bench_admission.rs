//! `bench-json` mode for the admission hot path: times the steady-state
//! decide loop (cached incremental `decide` vs the pre-change
//! from-scratch `decide_reference` kernel) and the engine's event loop
//! (heap-driven `next_event_time` vs the retired full scan), then writes
//! the results to `BENCH_admission.json` in the working directory.
//!
//! ```text
//! cargo run --release -p bench --bin bench_admission [decisions] [residents_per_node]
//! ```

use cluster::proportional::{ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, NodeId};
use librisk::libra::Libra;
use librisk::libra_risk::LibraRisk;
use librisk::policy::ShareAdmission;
use sim::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;
use workload::{Job, JobId, Urgency};

fn job(id: u64, estimate: f64, deadline: f64) -> Job {
    Job {
        id: JobId(id),
        submit: SimTime::ZERO,
        runtime: SimDuration::from_secs(estimate),
        estimate: SimDuration::from_secs(estimate),
        procs: 1,
        deadline: SimDuration::from_secs(deadline),
        urgency: Urgency::Low,
    }
}

/// A cluster with `residents_per_node` long-lived jobs on every node —
/// the steady state the admission path sees mid-simulation.
fn loaded_engine(residents_per_node: usize) -> ProportionalCluster {
    let mut engine =
        ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let mut id = 0u64;
    for n in 0..engine.cluster().len() {
        for r in 0..residents_per_node {
            let j = job(id, 200.0 + 10.0 * r as f64, 500_000.0 + id as f64);
            engine.admit(j, vec![NodeId(n as u32)], SimTime::ZERO);
            id += 1;
        }
    }
    engine
}

/// Candidate jobs spanning both the accept and the reject region.
fn candidate_stream(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let est = 100.0 + (i % 37) as f64 * 40.0;
            let deadline = 800.0 + (i % 101) as f64 * 900.0;
            job(1_000_000 + i as u64, est, deadline)
        })
        .collect()
}

/// Times `n` decisions through `f` (after a short warm-up) and returns
/// nanoseconds per decision.
fn ns_per_decision<F: FnMut(&Job) -> Option<Vec<NodeId>>>(
    mut f: F,
    stream: &[Job],
    n: usize,
) -> f64 {
    for j in stream.iter().take(100) {
        black_box(f(j));
    }
    let t = Instant::now();
    for i in 0..n {
        black_box(f(&stream[i % stream.len()]));
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Builds an engine loaded with an overrun-heavy mix and drains it to
/// idle, taking the next event time from the lazy heap or from the
/// retained full scan. Returns (events processed, seconds of wall time).
fn drain_events(jobs: usize, use_scan: bool) -> (u64, f64) {
    let mut engine =
        ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let nodes = engine.cluster().len();
    for i in 0..jobs {
        // A third of the jobs under-estimate (runtime > estimate) so the
        // drain exercises overrun re-arms, not just clean completions.
        let runtime = 300.0 + (i % 23) as f64 * 30.0;
        let est_factor = [0.5, 1.0, 2.0][i % 3];
        let mut j = job(i as u64, runtime * est_factor, 1e7);
        j.runtime = SimDuration::from_secs(runtime);
        engine.admit(j, vec![NodeId((i % nodes) as u32)], SimTime::ZERO);
    }
    let t = Instant::now();
    let mut events = 0u64;
    loop {
        let next = if use_scan {
            engine.next_event_time_scan()
        } else {
            engine.next_event_time()
        };
        let Some(at) = next else { break };
        black_box(engine.advance(at));
        events += 1;
        assert!(events < 10_000_000, "drain failed to converge");
    }
    (events, t.elapsed().as_secs_f64())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let decisions: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let residents: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let engine = loaded_engine(residents);
    let stream = candidate_stream(decisions.max(1));

    eprintln!(
        "steady-state decide loop: {decisions} decisions, {} nodes x {residents} residents",
        engine.cluster().len()
    );

    let mut libra = Libra::new();
    let libra_cached = ns_per_decision(|j| libra.decide(&engine, j), &stream, decisions);
    let libra_ref_policy = Libra::new();
    let libra_reference =
        ns_per_decision(|j| libra_ref_policy.decide_reference(&engine, j), &stream, decisions);

    let mut lr = LibraRisk::paper();
    let lr_cached = ns_per_decision(|j| lr.decide(&engine, j), &stream, decisions);
    let lr_ref_policy = LibraRisk::paper();
    let lr_reference =
        ns_per_decision(|j| lr_ref_policy.decide_reference(&engine, j), &stream, decisions);

    let drain_jobs = 2_000;
    let (heap_events, heap_secs) = drain_events(drain_jobs, false);
    let (scan_events, scan_secs) = drain_events(drain_jobs, true);
    assert_eq!(heap_events, scan_events, "heap and scan drains diverged");
    let heap_eps = heap_events as f64 / heap_secs;
    let scan_eps = scan_events as f64 / scan_secs;

    let json = format!(
        "{{\n  \"decisions\": {decisions},\n  \"residents_per_node\": {residents},\n  \
         \"policies\": {{\n    \
         \"Libra\": {{ \"cached_ns_per_decision\": {libra_cached:.1}, \
         \"reference_ns_per_decision\": {libra_reference:.1}, \
         \"speedup\": {:.2} }},\n    \
         \"LibraRisk\": {{ \"cached_ns_per_decision\": {lr_cached:.1}, \
         \"reference_ns_per_decision\": {lr_reference:.1}, \
         \"speedup\": {:.2} }}\n  }},\n  \
         \"event_loop\": {{ \"events\": {heap_events}, \
         \"heap_events_per_sec\": {heap_eps:.0}, \
         \"scan_events_per_sec\": {scan_eps:.0}, \
         \"speedup\": {:.2} }}\n}}\n",
        libra_reference / libra_cached,
        lr_reference / lr_cached,
        heap_eps / scan_eps,
    );
    print!("{json}");
    std::fs::write("BENCH_admission.json", &json).expect("write BENCH_admission.json");
    eprintln!("wrote BENCH_admission.json");
}
