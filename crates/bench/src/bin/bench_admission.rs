//! `bench-json` mode for the admission hot path: times the steady-state
//! decide loop (cached incremental `decide` vs the pre-change
//! from-scratch `decide_reference` kernel) per policy — mean, p50 and
//! p99 ns/decision — across a residents-per-node sweep, plus the
//! engine's event loop (heap-driven `next_event_time` vs the retired
//! full scan) and the unified RMS driver's end-to-end trace replay
//! throughput (jobs/sec), then writes the results as JSON.
//!
//! ```text
//! cargo run --release -p bench --bin bench_admission \
//!     [decisions] [residents_per_node] [drain_jobs] [out_path] [sharded_jobs]
//! ```
//!
//! The `sharded_driver` section sweeps the shard router over the same
//! 128-node machine partitioned into {1, 4, 16, 64} equal shards,
//! replaying `sharded_jobs` total arrivals (default 10M, tiled from a
//! deterministic base trace) and reporting aggregate jobs/sec plus the
//! p99 end-to-end submit latency.

use cluster::proportional::{ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, FaultPlan, NodeId, RecoveryPolicy};
use librisk::libra::Libra;
use librisk::libra_risk::LibraRisk;
use librisk::policy::ShareAdmission;
use librisk::report::ReportSink;
use librisk::{ckpt, drive_trace, ChurnStats, OnlineReport, PolicyKind, RouteBy, ShardedRms};
use metrics::percentile::quantile;
use sim::{Rng64, SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;
use workload::{Job, JobId, Trace, Urgency};

fn job(id: u64, estimate: f64, deadline: f64) -> Job {
    Job {
        id: JobId(id),
        submit: SimTime::ZERO,
        runtime: SimDuration::from_secs(estimate),
        estimate: SimDuration::from_secs(estimate),
        procs: 1,
        deadline: SimDuration::from_secs(deadline),
        urgency: Urgency::Low,
    }
}

/// A cluster with `residents_per_node` long-lived jobs on every node —
/// the steady state the admission path sees mid-simulation.
fn loaded_engine(residents_per_node: usize) -> ProportionalCluster {
    let mut engine = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let mut id = 0u64;
    for n in 0..engine.cluster().len() {
        for r in 0..residents_per_node {
            let j = job(id, 200.0 + 10.0 * r as f64, 500_000.0 + id as f64);
            engine.admit(j, vec![NodeId(n as u32)], SimTime::ZERO);
            id += 1;
        }
    }
    engine
}

/// Candidate jobs spanning both the accept and the reject region.
fn candidate_stream(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let est = 100.0 + (i % 37) as f64 * 40.0;
            let deadline = 800.0 + (i % 101) as f64 * 900.0;
            job(1_000_000 + i as u64, est, deadline)
        })
        .collect()
}

/// Per-policy timing summary: mean/p50/p99 ns per cached decision, the
/// from-scratch reference's mean, and the resulting speedup.
struct PolicyTiming {
    cached_mean: f64,
    cached_p50: f64,
    cached_p99: f64,
    reference_mean: f64,
}

impl PolicyTiming {
    fn speedup(&self) -> f64 {
        self.reference_mean / self.cached_mean
    }

    fn json(&self) -> String {
        format!(
            "{{ \"cached_ns_per_decision\": {:.1}, \
             \"cached_p50_ns\": {:.1}, \
             \"cached_p99_ns\": {:.1}, \
             \"reference_ns_per_decision\": {:.1}, \
             \"speedup\": {:.2} }}",
            self.cached_mean,
            self.cached_p50,
            self.cached_p99,
            self.reference_mean,
            self.speedup()
        )
    }
}

/// Times `n` decisions through `f`, sampling each decision individually
/// so tails are visible. The warm-up covers the *whole* candidate stream
/// once, so the timed loop measures the steady state (every candidate
/// signature already seen — what a long simulation converges to).
fn sample_decisions<F: FnMut(&Job) -> Option<Vec<NodeId>>>(
    mut f: F,
    stream: &[Job],
    n: usize,
) -> Vec<f64> {
    for j in stream {
        black_box(f(j));
    }
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let j = &stream[i % stream.len()];
        let t = Instant::now();
        black_box(f(j));
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples
}

/// Mean of the from-scratch reference path (mean only: the reference is
/// orders of magnitude slower, so a smaller `n` keeps the sweep cheap).
fn reference_mean<F: FnMut(&Job) -> Option<Vec<NodeId>>>(
    mut f: F,
    stream: &[Job],
    n: usize,
) -> f64 {
    for j in stream.iter().take(50) {
        black_box(f(j));
    }
    let t = Instant::now();
    for i in 0..n {
        black_box(f(&stream[i % stream.len()]));
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p50 = quantile(samples, 0.50).expect("samples nonempty");
    let p99 = quantile(samples, 0.99).expect("samples nonempty");
    (mean, p50, p99)
}

/// Times both policies on one engine load level.
fn time_policies(
    engine: &ProportionalCluster,
    stream: &[Job],
    decisions: usize,
    reference_decisions: usize,
) -> (PolicyTiming, PolicyTiming) {
    let mut libra = Libra::new();
    let libra_samples = sample_decisions(|j| libra.decide(engine, j), stream, decisions);
    let libra_ref = Libra::new();
    let libra_reference = reference_mean(
        |j| libra_ref.decide_reference(engine, j),
        stream,
        reference_decisions,
    );
    let (mean, p50, p99) = stats(&libra_samples);
    let libra_timing = PolicyTiming {
        cached_mean: mean,
        cached_p50: p50,
        cached_p99: p99,
        reference_mean: libra_reference,
    };

    let mut lr = LibraRisk::paper();
    let lr_samples = sample_decisions(|j| lr.decide(engine, j), stream, decisions);
    let lr_ref = LibraRisk::paper();
    let lr_reference = reference_mean(
        |j| lr_ref.decide_reference(engine, j),
        stream,
        reference_decisions,
    );
    let (mean, p50, p99) = stats(&lr_samples);
    let lr_timing = PolicyTiming {
        cached_mean: mean,
        cached_p50: p50,
        cached_p99: p99,
        reference_mean: lr_reference,
    };
    (libra_timing, lr_timing)
}

/// Builds an engine loaded with an overrun-heavy mix and drains it to
/// idle, taking the next event time from the lazy heap or from the
/// retained full scan. Returns (events processed, seconds of wall time).
///
/// Job shapes are de-symmetrised (per-index runtime jitter, staggered
/// finite deadlines) so completions, overrun re-arms and deadline
/// crossings land on distinct instants — thousands of events, not a few
/// hundred synchronized ones.
fn drain_events(jobs: usize, use_scan: bool) -> (u64, f64) {
    let mut engine = event_heavy_engine(jobs);
    let t = Instant::now();
    let mut events = 0u64;
    loop {
        let next = if use_scan {
            engine.next_event_time_scan()
        } else {
            engine.next_event_time()
        };
        let Some(at) = next else { break };
        black_box(engine.advance(at));
        events += 1;
        assert!(events < 10_000_000, "drain failed to converge");
    }
    (events, t.elapsed().as_secs_f64())
}

/// The event-heavy engine both event-loop probes drain: every node
/// loaded, a third of the jobs under-estimating (runtime > estimate) so
/// the drain exercises overrun re-arms, and runtimes/deadlines
/// de-symmetrised (per-index jitter, staggered finite deadlines) so
/// completions, re-arms and deadline crossings land on distinct instants
/// — thousands of events, not a few hundred synchronized ones.
fn event_heavy_engine(jobs: usize) -> ProportionalCluster {
    let mut engine = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let nodes = engine.cluster().len();
    for i in 0..jobs {
        let runtime = 300.0 + (i as f64 * 7.919) % 700.0;
        let est_factor = [0.5, 1.0, 2.0][i % 3];
        let deadline = 2_000.0 + (i as f64 * 13.37) % 6_000.0;
        let mut j = job(i as u64, runtime * est_factor, deadline);
        j.runtime = SimDuration::from_secs(runtime);
        engine.admit(j, vec![NodeId((i % nodes) as u32)], SimTime::ZERO);
    }
    engine
}

/// Isolated query cost: mean ns per `next_event_time` (or `_scan`) call
/// on a loaded, settled engine with no interleaved advances. The
/// end-to-end drain buries the query under the per-event advance work —
/// this is the number that actually separates the O(1) cached read from
/// the retired full scan.
fn isolated_event_query(jobs: usize, use_scan: bool) -> f64 {
    let engine = event_heavy_engine(jobs);
    const CALLS: u32 = 200_000;
    let t = Instant::now();
    for _ in 0..CALLS {
        black_box(if use_scan {
            engine.next_event_time_scan()
        } else {
            engine.next_event_time()
        });
    }
    t.elapsed().as_nanos() as f64 / f64::from(CALLS)
}

/// Engine-level advance-path replay: the trace's arrival skeleton with
/// placement pinned to a deterministic round-robin (no admission policy
/// in the loop), so the measured work is exactly the advance path —
/// catch-up event drains, progress passes and rate recomputes. `reference`
/// selects the retired oracle pair (`advance_reference` +
/// `next_event_time_scan`); the default pair is the incremental one
/// (`advance_into` + cached `next_event_time`). Returns jobs/sec, the
/// per-advance wall-time samples (ns), and every completion as
/// `(job id, finish-seconds bits)` for the bitwise cross-check.
fn advance_path_replay(trace: &Trace, reference: bool) -> (f64, Vec<u64>, Vec<(u64, u64)>) {
    let mut engine = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let n = engine.cluster().len() as u32;
    let mut samples = Vec::with_capacity(trace.jobs().len() * 4);
    let mut completions = Vec::new();
    let mut buf: Vec<cluster::proportional::CompletedJob> = Vec::new();
    let mut advance = |engine: &mut ProportionalCluster,
                       at: SimTime,
                       samples: &mut Vec<u64>,
                       completions: &mut Vec<(u64, u64)>| {
        let t1 = Instant::now();
        if reference {
            for done in engine.advance_reference(at) {
                completions.push((done.job.id.0, done.finish.as_secs().to_bits()));
            }
        } else {
            engine.advance_into(at, &mut buf);
            for done in buf.drain(..) {
                completions.push((done.job.id.0, done.finish.as_secs().to_bits()));
            }
        }
        samples.push(t1.elapsed().as_nanos() as u64);
    };
    let next = |engine: &ProportionalCluster| {
        if reference {
            engine.next_event_time_scan()
        } else {
            engine.next_event_time()
        }
    };
    let t0 = Instant::now();
    for (i, job) in trace.jobs().iter().enumerate() {
        let now = job.submit;
        while let Some(at) = next(&engine) {
            if at > now {
                break;
            }
            advance(&mut engine, at, &mut samples, &mut completions);
        }
        advance(&mut engine, now, &mut samples, &mut completions);
        let procs = job.procs.min(n);
        let nodes: Vec<NodeId> = (0..procs).map(|k| NodeId((i as u32 + k) % n)).collect();
        let mut j = job.clone();
        j.procs = procs;
        engine.admit(j, nodes, now);
    }
    while let Some(at) = next(&engine) {
        advance(&mut engine, at, &mut samples, &mut completions);
        assert!(samples.len() < 10_000_000, "drain failed to converge");
    }
    let secs = t0.elapsed().as_secs_f64();
    (trace.jobs().len() as f64 / secs, samples, completions)
}

/// End-to-end throughput of the unified RMS driver: a full trace replay
/// (arrival events, admission decisions, execution, streaming sink) in
/// jobs/sec. Returns `(jobs_per_sec, fulfilled)` — the fulfilled count
/// doubles as a sanity anchor that the run did real work.
fn drive_trace_throughput(kind: PolicyKind, trace: &Trace) -> (f64, u64) {
    let (jps, fulfilled, _) = drive_trace_churn_throughput(kind, trace, None);
    (jps, fulfilled)
}

/// Same replay with an optional fault plan attached: the churn section's
/// workhorse, and (with an *empty* plan) the fault-free overhead probe.
fn drive_trace_churn_throughput(
    kind: PolicyKind,
    trace: &Trace,
    faults: Option<(FaultPlan, RecoveryPolicy)>,
) -> (f64, u64, ChurnStats) {
    let t = Instant::now();
    let mut rms = kind.rms(&Cluster::sdsc_sp2());
    if let Some((plan, recovery)) = faults {
        rms = rms.with_faults(plan, recovery);
    }
    let mut sink = OnlineReport::new();
    drive_trace(&mut rms, trace, &mut sink);
    let secs = t.elapsed().as_secs_f64();
    (trace.len() as f64 / secs, sink.fulfilled(), *rms.churn())
}

/// The unified-driver replay with a recorder attached — the
/// observability overhead probe's workhorse.
fn drive_trace_obs_throughput(
    kind: PolicyKind,
    trace: &Trace,
    recorder: Option<&mut (dyn obs::Recorder + Send)>,
) -> (f64, u64) {
    let t = Instant::now();
    let rms = kind.rms(&Cluster::sdsc_sp2());
    let mut sink = OnlineReport::new();
    match recorder {
        Some(rec) => drive_trace(&mut rms.with_recorder(rec), trace, &mut sink),
        None => drive_trace(&mut { rms }, trace, &mut sink),
    }
    let secs = t.elapsed().as_secs_f64();
    (trace.len() as f64 / secs, sink.fulfilled())
}

/// A deterministic arrival stream of arbitrary length, tiled from a
/// fixed base trace: job `i` is base job `i % base_len` with a fresh id
/// and its submit instant shifted by whole tile spans. Jobs are
/// generated on the fly, so a 10M-job replay never materialises 10M
/// `Job`s at once.
struct TiledWorkload {
    base: Vec<Job>,
    span_secs: f64,
}

impl TiledWorkload {
    /// `max_procs` is capped at 2 so every job fits the smallest shard
    /// of the sweep (64 shards × 2 nodes) and all cells replay the
    /// identical workload.
    fn new(base_jobs: usize) -> Self {
        let mut t = SyntheticSdscSp2 {
            jobs: base_jobs,
            max_procs: 2,
            ..Default::default()
        }
        .generate(11);
        DeadlineModel::default().assign(&mut Rng64::new(12), t.jobs_mut());
        let base: Vec<Job> = t.jobs().to_vec();
        let last = base.last().map(|j| j.submit.as_secs()).unwrap_or(0.0);
        let mean_gap = (last / base.len().max(1) as f64).max(1.0);
        TiledWorkload {
            base,
            span_secs: last + mean_gap,
        }
    }

    fn base_len(&self) -> u64 {
        self.base.len() as u64
    }

    fn job(&self, i: u64) -> Job {
        let n = self.base.len() as u64;
        let b = &self.base[(i % n) as usize];
        let mut j = b.clone();
        j.id = JobId(i);
        j.submit = b.submit + SimDuration::from_secs(self.span_secs * (i / n) as f64);
        j
    }
}

/// One cell of the sharded-driver sweep: the 128-node machine split into
/// `shards` equal LibraRisk shards behind a [`ShardedRms`], replaying
/// `total_jobs` tiled arrivals end to end. Advances are chunked (once
/// per workload tile) — the facade's equivalence contract makes chunked
/// advancing outcome-identical, and rare fan-outs keep the per-advance
/// thread-scope cost amortised over many jobs. Returns aggregate
/// jobs/sec, the p99 submit latency in ns (sampled every 16th arrival),
/// and the fulfilled count as the work anchor.
fn sharded_driver_cell(shards: usize, total_jobs: u64, wl: &TiledWorkload) -> (f64, f64, u64) {
    let nodes = Cluster::sdsc_sp2().len() / shards;
    let sub_cluster = Cluster::homogeneous(nodes.max(1), 168.0);
    let mut router = ShardedRms::new(
        (0..shards)
            .map(|_| PolicyKind::LibraRisk.rms(&sub_cluster))
            .collect(),
        RouteBy::JobHash,
    )
    .expect("bench ladder never builds an empty router");
    let mut sink = OnlineReport::new();
    let base_len = wl.base_len();
    let mut samples: Vec<f64> = Vec::with_capacity((total_jobs / 16 + 1) as usize);
    let t0 = Instant::now();
    for i in 0..total_jobs {
        let job = wl.job(i);
        let now = job.submit;
        if i % 16 == 0 {
            let t = Instant::now();
            black_box(router.submit(job, now));
            samples.push(t.elapsed().as_nanos() as f64);
        } else {
            black_box(router.submit(job, now));
        }
        if (i + 1) % base_len == 0 {
            router
                .advance_with(now, |e| sink.record(e.seq, e.record))
                .expect("no shard panics in the bench ladder");
        }
    }
    router
        .drain_with(|e| sink.record(e.seq, e.record))
        .expect("no shard panics in the bench ladder");
    let secs = t0.elapsed().as_secs_f64();
    let p99 = quantile(&samples, 0.99).unwrap_or(0.0);
    (total_jobs as f64 / secs, p99, sink.fulfilled())
}

/// A short profiler-enabled replay of one sharded cell, reporting the
/// p99 producer-side mailbox backpressure wait (ns) and the number of
/// depth observations. 1-shard cells route inline without mailboxes, so
/// both come back 0 there. Runs outside the timed cell so the committed
/// throughput numbers stay profiler-free.
fn sharded_mailbox_probe(shards: usize, total_jobs: u64, wl: &TiledWorkload) -> (f64, u64) {
    obs::phase::reset();
    obs::phase::set_enabled(true);
    let nodes = Cluster::sdsc_sp2().len() / shards;
    let sub_cluster = Cluster::homogeneous(nodes.max(1), 168.0);
    let mut router = ShardedRms::new(
        (0..shards)
            .map(|_| PolicyKind::LibraRisk.rms(&sub_cluster))
            .collect(),
        RouteBy::JobHash,
    )
    .expect("bench ladder never builds an empty router");
    let mut sink = OnlineReport::new();
    let base_len = wl.base_len();
    for i in 0..total_jobs {
        let job = wl.job(i);
        let now = job.submit;
        black_box(router.submit(job, now));
        if (i + 1) % base_len == 0 {
            router
                .advance_with(now, |e| sink.record(e.seq, e.record))
                .expect("no shard panics in the mailbox probe");
        }
    }
    router
        .drain_with(|e| sink.record(e.seq, e.record))
        .expect("no shard panics in the mailbox probe");
    obs::phase::set_enabled(false);
    let snap = obs::phase::snapshot();
    obs::phase::reset();
    (
        snap.quantile_ns(obs::phase::Phase::MailboxSendWait, 0.99),
        snap.mailbox_depth_count(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let decisions: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let residents: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let drain_jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_admission.json".to_string());
    let sharded_jobs: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000);

    let stream = candidate_stream(3_737.min(decisions.max(1)));

    // Headline workload: the committed-baseline configuration.
    let engine = loaded_engine(residents);
    eprintln!(
        "steady-state decide loop: {decisions} decisions, {} nodes x {residents} residents",
        engine.cluster().len()
    );
    let reference_decisions = decisions.clamp(1, 500);
    let (libra_t, lr_t) = time_policies(&engine, &stream, decisions, reference_decisions);

    // Residents-per-node sweep: how the hot path scales with load.
    let sweep_levels = [2usize, 8, 32];
    let mut sweep_cells = Vec::new();
    for &level in &sweep_levels {
        let engine = loaded_engine(level);
        let cell_decisions = (decisions / 4).max(1);
        let cell_reference = decisions.clamp(1, 200);
        eprintln!("residents sweep: {level} residents/node, {cell_decisions} decisions");
        let (libra_c, lr_c) = time_policies(&engine, &stream, cell_decisions, cell_reference);
        sweep_cells.push(format!(
            "    {{ \"residents_per_node\": {level}, \"policies\": {{\n      \
             \"Libra\": {},\n      \"LibraRisk\": {}\n    }} }}",
            libra_c.json(),
            lr_c.json()
        ));
    }

    eprintln!("event loop drain: {drain_jobs} jobs");
    let (heap_events, heap_secs) = drain_events(drain_jobs, false);
    let (scan_events, scan_secs) = drain_events(drain_jobs, true);
    assert_eq!(heap_events, scan_events, "heap and scan drains diverged");
    let heap_eps = heap_events as f64 / heap_secs;
    let scan_eps = scan_events as f64 / scan_secs;
    let cached_ns = isolated_event_query(drain_jobs, false);
    let scan_ns = isolated_event_query(drain_jobs, true);

    // End-to-end replay through the unified RMS driver, one backend of
    // each kind (proportional, queued, QoPS).
    let driver_jobs = drain_jobs.max(1);
    eprintln!("unified driver replay: {driver_jobs}-job trace");
    let mut driver_trace = SyntheticSdscSp2 {
        jobs: driver_jobs,
        ..Default::default()
    }
    .generate(11);
    DeadlineModel::default().assign(&mut Rng64::new(12), driver_trace.jobs_mut());
    let mut driver_cells = Vec::new();
    for kind in [PolicyKind::LibraRisk, PolicyKind::Edf, PolicyKind::Qops] {
        let (jps, fulfilled) = drive_trace_throughput(kind, &driver_trace);
        driver_cells.push(format!(
            "    \"{}\": {{ \"jobs_per_sec\": {jps:.0}, \"fulfilled\": {fulfilled} }}",
            kind.name()
        ));
    }

    // Sharded-driver sweep: the same machine split into {1, 4, 16, 64}
    // equal shards behind the router, replaying a tiled arrival stream.
    // The base tile is sized so a full-size run advances a few hundred
    // times (fan-out cost amortised), and scales down with the smoke
    // run's job count.
    let wl = TiledWorkload::new((sharded_jobs / 64).clamp(250, 100_000) as usize);
    let mut sharded_cells = Vec::new();
    // The mailbox probe replays a short profiler-enabled slice per cell
    // (outside the timed run) to read backpressure waits off the phase
    // histograms.
    let probe_jobs = sharded_jobs.min(wl.base_len() * 16);
    for shards in [1usize, 4, 16, 64] {
        eprintln!("sharded driver: {shards} shard(s), {sharded_jobs} jobs");
        let (jps, p99, fulfilled) = sharded_driver_cell(shards, sharded_jobs, &wl);
        let (wait_p99, depth_obs) = sharded_mailbox_probe(shards, probe_jobs, &wl);
        eprintln!(
            "    {jps:.0} jobs/sec aggregate, p99 submit {p99:.0} ns, {fulfilled} fulfilled, \
             p99 mailbox send wait {wait_p99:.0} ns ({depth_obs} depth obs)"
        );
        sharded_cells.push(format!(
            "    {{ \"shards\": {shards}, \"jobs_per_sec\": {jps:.0}, \
             \"p99_submit_ns\": {p99:.0}, \"fulfilled\": {fulfilled}, \
             \"p99_mailbox_send_wait_ns\": {wait_p99:.0}, \
             \"mailbox_depth_observations\": {depth_obs} }}"
        ));
    }

    // Advance-path A/B: the same trace replayed at engine level through
    // the incremental pair and the reference oracle pair; identical
    // completion streams are asserted, so the speedup is measured across
    // two bitwise-equal executions.
    eprintln!("advance path replay: {driver_jobs}-job trace");
    let (adv_jps, mut adv_samples, adv_completions) = advance_path_replay(&driver_trace, false);
    let (ref_adv_jps, _, ref_completions) = advance_path_replay(&driver_trace, true);
    assert_eq!(
        adv_completions, ref_completions,
        "incremental and reference advance paths diverged"
    );
    let adv_count = adv_samples.len();
    adv_samples.sort_unstable();
    let adv_pct =
        |p: f64| adv_samples[((adv_samples.len() - 1) as f64 * p).round() as usize].max(1);
    let (adv_p50, adv_p99) = (adv_pct(0.50), adv_pct(0.99));
    eprintln!(
        "advance path: incremental {adv_jps:.0} vs reference {ref_adv_jps:.0} jobs/sec \
         ({adv_count} advances, p50 {adv_p50}ns p99 {adv_p99}ns)"
    );

    // Churn replay: the same trace under a seeded exponential plan (~4
    // failures per node over the span), Kill and Requeue recovery, plus
    // the fault-free overhead probe: attaching an *empty* plan must not
    // tax the steady-state driver.
    let span = driver_trace
        .jobs()
        .last()
        .map(|j| j.submit.as_secs())
        .unwrap_or(0.0)
        + 10_000.0;
    let plan = FaultPlan::exponential(
        Cluster::sdsc_sp2().len(),
        span / 4.0,
        span / 40.0,
        SimTime::from_secs(span * 1.5),
        0xFA17,
    );
    eprintln!(
        "churn driver replay: {driver_jobs}-job trace, {}-event fault plan",
        plan.len()
    );
    let mut churn_cells = Vec::new();
    for kind in [PolicyKind::LibraRisk, PolicyKind::Edf, PolicyKind::Qops] {
        let (kill_jps, _, kill_churn) = drive_trace_churn_throughput(
            kind,
            &driver_trace,
            Some((plan.clone(), RecoveryPolicy::Kill)),
        );
        let (requeue_jps, _, requeue_churn) = drive_trace_churn_throughput(
            kind,
            &driver_trace,
            Some((plan.clone(), RecoveryPolicy::Requeue)),
        );
        churn_cells.push(format!(
            "    \"{}\": {{ \"kill_jobs_per_sec\": {kill_jps:.0}, \"kills\": {}, \
             \"requeue_jobs_per_sec\": {requeue_jps:.0}, \"requeues\": {} }}",
            kind.name(),
            kill_churn.kills,
            requeue_churn.requeues,
        ));
    }
    // Checkpoint cost probe: snapshot the churn driver mid-run (half the
    // trace submitted) and time save / load / restore; the resumed run
    // must finish with exactly the unbroken run's fulfilled count, so
    // the timings are measured across a validated crash/resume cycle.
    let ckpt_cut = driver_jobs / 2;
    eprintln!("checkpoint probe: snapshot at {ckpt_cut}/{driver_jobs} jobs");
    let ckpt_drive = |rms: &mut librisk::ClusterRms<'_>, jobs: &[Job], fulfilled: &mut u64| {
        for job in jobs {
            *fulfilled += rms
                .advance(job.submit)
                .filter(|e| e.record.fulfilled())
                .count() as u64;
            rms.submit(job.clone(), job.submit);
        }
    };
    let mut unbroken_fulfilled = 0u64;
    let mut rms = PolicyKind::LibraRisk
        .rms(&Cluster::sdsc_sp2())
        .with_faults(plan.clone(), RecoveryPolicy::Requeue);
    ckpt_drive(&mut rms, driver_trace.jobs(), &mut unbroken_fulfilled);
    unbroken_fulfilled += rms.drain().filter(|e| e.record.fulfilled()).count() as u64;
    let mut resumed_fulfilled = 0u64;
    let mut rms = PolicyKind::LibraRisk
        .rms(&Cluster::sdsc_sp2())
        .with_faults(plan.clone(), RecoveryPolicy::Requeue);
    ckpt_drive(
        &mut rms,
        &driver_trace.jobs()[..ckpt_cut],
        &mut resumed_fulfilled,
    );
    const CKPT_ROUNDS: u32 = 16;
    let t0 = Instant::now();
    let mut snapshot = Vec::new();
    for _ in 0..CKPT_ROUNDS {
        snapshot = ckpt::save(&rms, None);
    }
    let ckpt_save_us = t0.elapsed().as_secs_f64() * 1e6 / CKPT_ROUNDS as f64;
    drop(rms);
    let t0 = Instant::now();
    for _ in 0..CKPT_ROUNDS {
        black_box(ckpt::load(&snapshot).expect("fresh snapshot must load"));
    }
    let ckpt_load_us = t0.elapsed().as_secs_f64() * 1e6 / CKPT_ROUNDS as f64;
    let loaded = ckpt::load(&snapshot).expect("fresh snapshot must load");
    let mut ckpt_restore_us = 0.0;
    let mut restored = None;
    for _ in 0..CKPT_ROUNDS {
        let blank = PolicyKind::LibraRisk.rms(&Cluster::sdsc_sp2());
        let t0 = Instant::now();
        let rms = loaded.restore_into(blank).expect("snapshot must restore");
        ckpt_restore_us += t0.elapsed().as_secs_f64() * 1e6 / CKPT_ROUNDS as f64;
        restored = Some(rms);
    }
    let mut rms = restored.expect("restore rounds ran");
    ckpt_drive(
        &mut rms,
        &driver_trace.jobs()[ckpt_cut..],
        &mut resumed_fulfilled,
    );
    resumed_fulfilled += rms.drain().filter(|e| e.record.fulfilled()).count() as u64;
    assert_eq!(
        unbroken_fulfilled, resumed_fulfilled,
        "checkpoint/resume diverged from the unbroken churn run"
    );
    eprintln!(
        "checkpoint: {} byte snapshot, save {ckpt_save_us:.0}us load {ckpt_load_us:.0}us \
         restore {ckpt_restore_us:.0}us ({unbroken_fulfilled} fulfilled both arms)",
        snapshot.len()
    );

    // Overhead probe: interleaved paired rounds, the same discipline the
    // obs probe uses. Running plain and empty-plan back to back inside
    // each round means a contended stretch of wall clock slows both arms
    // of that round's ratio alike; sequential best-of-N (the old shape)
    // let the arm that happened to run second inherit warmer caches and
    // a quieter machine, which is how a *pure bookkeeping no-op* once
    // "sped up" the driver by 5% in the committed numbers.
    const FF_ROUNDS: usize = 7;
    let mut ff_ratios = [0.0f64; FF_ROUNDS];
    let mut plain_jps = 0.0f64;
    let mut empty_jps = 0.0f64;
    let mut ff_fulfilled: Option<(u64, u64)> = None;
    for ratio in ff_ratios.iter_mut() {
        let (p, pf, _) = drive_trace_churn_throughput(PolicyKind::LibraRisk, &driver_trace, None);
        let (e, ef, _) = drive_trace_churn_throughput(
            PolicyKind::LibraRisk,
            &driver_trace,
            Some((FaultPlan::empty(), RecoveryPolicy::Requeue)),
        );
        let (pf0, ef0) = *ff_fulfilled.get_or_insert((pf, ef));
        assert_eq!((pf, ef), (pf0, ef0), "replays are deterministic");
        plain_jps = plain_jps.max(p);
        empty_jps = empty_jps.max(e);
        *ratio = e / p;
    }
    let (plain_fulfilled, empty_fulfilled) = ff_fulfilled.expect("probe ran");
    assert_eq!(
        plain_fulfilled, empty_fulfilled,
        "an empty fault plan must not change outcomes"
    );
    let overhead_ratio = ff_ratios.iter().sum::<f64>() / FF_ROUNDS as f64;
    let overhead_ratio_min = ff_ratios.iter().copied().fold(f64::INFINITY, f64::min);
    eprintln!(
        "fault-free overhead: plain {plain_jps:.0} vs empty-plan {empty_jps:.0} jobs/sec \
         (ratio mean {overhead_ratio:.3} min {overhead_ratio_min:.3})"
    );
    assert!(
        overhead_ratio > 0.75,
        "empty fault plan costs more than 25% driver throughput (ratio {overhead_ratio:.3})"
    );

    // Observability overhead probe: the same replay with no recorder,
    // the disabled `NoopRecorder`, a default ring `TraceRecorder`, and
    // a ring with per-decision policy audit gauges enabled (the one
    // deliberately expensive hook — it re-walks cluster risk around
    // every decision). Outcomes must agree exactly (recorders are
    // inert) and the default ring must stay within a few percent of
    // plain throughput.
    // A sub-millisecond replay cannot resolve a few-percent ratio, so
    // the probe keeps a 2000-job floor even when the smoke run shrinks
    // the driver sections.
    let obs_jobs = driver_jobs.max(2_000);
    let obs_trace_storage;
    let obs_trace: &Trace = if obs_jobs == driver_jobs {
        &driver_trace
    } else {
        let mut t = SyntheticSdscSp2 {
            jobs: obs_jobs,
            ..Default::default()
        }
        .generate(11);
        DeadlineModel::default().assign(&mut Rng64::new(12), t.jobs_mut());
        obs_trace_storage = t;
        &obs_trace_storage
    };
    eprintln!("obs overhead probe: {obs_jobs}-job replay, 4 recorder modes");
    // Interleaved rounds, best-per-mode: scheduler drift hits all four
    // modes alike instead of biasing whichever batch ran in a quiet
    // window.
    // (name, runner, best jobs/sec so far, fulfilled count pin)
    #[allow(clippy::type_complexity)]
    let mut modes: [(&str, Box<dyn FnMut() -> (f64, u64)>, f64, Option<u64>); 4] = [
        (
            "plain",
            Box::new(|| drive_trace_obs_throughput(PolicyKind::LibraRisk, obs_trace, None)),
            0.0,
            None,
        ),
        (
            "noop",
            Box::new(|| {
                let mut rec = obs::NoopRecorder;
                drive_trace_obs_throughput(PolicyKind::LibraRisk, obs_trace, Some(&mut rec))
            }),
            0.0,
            None,
        ),
        (
            "ring",
            Box::new(|| {
                let mut rec = obs::TraceRecorder::new(1 << 16);
                drive_trace_obs_throughput(PolicyKind::LibraRisk, obs_trace, Some(&mut rec))
            }),
            0.0,
            None,
        ),
        (
            "gauged",
            Box::new(|| {
                let mut rec = obs::TraceRecorder::new(1 << 16).with_audit_gauges();
                drive_trace_obs_throughput(PolicyKind::LibraRisk, obs_trace, Some(&mut rec))
            }),
            0.0,
            None,
        ),
    ];
    const ROUNDS: usize = 9;
    let mut rounds = [[0.0f64; 4]; ROUNDS];
    for round in rounds.iter_mut() {
        for (slot, (name, f, best, fulfilled)) in round.iter_mut().zip(modes.iter_mut()) {
            let (jps, got) = f();
            assert_eq!(
                *fulfilled.get_or_insert(got),
                got,
                "{name}: replays are deterministic"
            );
            *best = best.max(jps);
            *slot = jps;
        }
    }
    // Per-round ratios against the plain replay of the *same* round (a
    // contended stretch slows both sides of a pair alike). The regression
    // gate reads the *median* round — a single quiet (or noisy) round out
    // of nine can no longer decide the verdict — and the minimum is
    // reported alongside as the honest worst case.
    let ratio_stats = |mode: usize| -> (f64, f64) {
        let mut rs: Vec<f64> = rounds.iter().map(|r| r[mode] / r[0]).collect();
        rs.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        (rs[rs.len() / 2], rs[0])
    };
    let (obs_plain_jps, obs_plain_fulfilled) = (modes[0].2, modes[0].3.unwrap());
    let (noop_jps, noop_fulfilled) = (modes[1].2, modes[1].3.unwrap());
    let (ring_jps, ring_fulfilled) = (modes[2].2, modes[2].3.unwrap());
    let (gauged_jps, gauged_fulfilled) = (modes[3].2, modes[3].3.unwrap());
    assert_eq!(
        obs_plain_fulfilled, noop_fulfilled,
        "a noop recorder must not change outcomes"
    );
    assert_eq!(
        obs_plain_fulfilled, ring_fulfilled,
        "a ring recorder must not change outcomes"
    );
    assert_eq!(
        obs_plain_fulfilled, gauged_fulfilled,
        "audit gauges must not change outcomes"
    );
    let (noop_ratio, noop_ratio_min) = ratio_stats(1);
    let (ring_ratio, ring_ratio_min) = ratio_stats(2);
    let (gauged_ratio, gauged_ratio_min) = ratio_stats(3);
    let ring_overhead_pct = (1.0 - ring_ratio) * 100.0;
    // One final instrumented run to report the recorded decide latency.
    let mut latency_rec = obs::TraceRecorder::new(1 << 16);
    drive_trace_obs_throughput(PolicyKind::LibraRisk, obs_trace, Some(&mut latency_rec));
    let decide_ns_mean = latency_rec
        .registry()
        .histogram(obs::keys::DECIDE_LATENCY)
        .map_or(0.0, |h| h.mean());
    eprintln!(
        "obs overhead: plain {obs_plain_jps:.0} vs noop {noop_jps:.0} \
         (ratio median {noop_ratio:.3} min {noop_ratio_min:.3}) \
         vs ring {ring_jps:.0} (ratio median {ring_ratio:.3} min {ring_ratio_min:.3}, \
         {ring_overhead_pct:.1}% overhead) \
         vs gauged ring {gauged_jps:.0} jobs/sec (ratio {gauged_ratio:.3})"
    );
    // Regression tripwire with noise headroom, gated on the median round;
    // the committed full-size run is the record of the actual (≈0%)
    // overhead.
    assert!(
        ring_ratio > 0.90,
        "ring recorder costs more than 10% driver throughput (median ratio {ring_ratio:.3})"
    );
    assert!(
        noop_ratio > 0.90,
        "noop recorder costs more than 10% driver throughput (median ratio {noop_ratio:.3})"
    );

    // Phase-profiler overhead probe: the same replay with the process
    // global profiler off and on, interleaved pairs like the recorder
    // probe (a contended stretch slows both arms of a round alike).
    // Enabled, every advance pays lap marks and a TLS flush and every
    // decision pays nested spans — the budget is the same 10% gate the
    // recorders get, and outcomes must not move at all.
    eprintln!("profiler overhead probe: {obs_jobs}-job replay, off vs on");
    const PF_ROUNDS: usize = 9;
    let mut pf_rounds = [[0.0f64; 2]; PF_ROUNDS];
    let mut pf_off_jps = 0.0f64;
    let mut pf_on_jps = 0.0f64;
    let mut pf_fulfilled: Option<(u64, u64)> = None;
    let mut pf_coverage = 0.0f64;
    for round in pf_rounds.iter_mut() {
        obs::phase::set_enabled(false);
        let (off, off_f) = drive_trace_throughput(PolicyKind::LibraRisk, obs_trace);
        obs::phase::reset();
        obs::phase::set_enabled(true);
        let (on, on_f) = drive_trace_throughput(PolicyKind::LibraRisk, obs_trace);
        obs::phase::set_enabled(false);
        let snap = obs::phase::snapshot();
        let advance_ns = snap.ns(obs::phase::Phase::AdvanceTotal).max(1);
        let tiled: u64 = [
            obs::phase::Phase::EventHeapPop,
            obs::phase::Phase::ProgressPass,
            obs::phase::Phase::RecomputeSweep,
            obs::phase::Phase::CompletionEmit,
        ]
        .iter()
        .map(|&p| snap.ns(p))
        .sum();
        pf_coverage = tiled as f64 / advance_ns as f64;
        obs::phase::reset();
        let (off0, on0) = *pf_fulfilled.get_or_insert((off_f, on_f));
        assert_eq!((off_f, on_f), (off0, on0), "replays are deterministic");
        pf_off_jps = pf_off_jps.max(off);
        pf_on_jps = pf_on_jps.max(on);
        *round = [off, on];
    }
    let (pf_off_fulfilled, pf_on_fulfilled) = pf_fulfilled.expect("probe ran");
    assert_eq!(
        pf_off_fulfilled, pf_on_fulfilled,
        "enabling the phase profiler must not change outcomes"
    );
    let mut pf_ratios: Vec<f64> = pf_rounds.iter().map(|r| r[1] / r[0]).collect();
    pf_ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let profiler_ratio = pf_ratios[pf_ratios.len() / 2];
    let profiler_ratio_min = pf_ratios[0];
    eprintln!(
        "profiler overhead: off {pf_off_jps:.0} vs on {pf_on_jps:.0} jobs/sec \
         (ratio median {profiler_ratio:.3} min {profiler_ratio_min:.3}, \
         advance coverage {:.1}%)",
        pf_coverage * 100.0
    );
    assert!(
        profiler_ratio > 0.90,
        "phase profiler costs more than 10% driver throughput (median ratio {profiler_ratio:.3})"
    );
    assert!(
        pf_coverage >= 0.90,
        "phase taxonomy covers only {:.1}% of the advance bracket",
        pf_coverage * 100.0
    );

    // Equivalence-classifier probe: the headline workload re-driven with
    // the pre-kernel classifier off and on, each decision preceded by a
    // tiny epoch-moving advance so whole-decision memos can never answer
    // and the per-decision evaluation volume is real. The interesting
    // numbers are distinct profiles projected per decision (the classifier
    // collapses equal-signature nodes to one kernel run) and the fraction
    // of node evaluations settled without the kernel at all.
    let eq_decisions = (decisions / 4).clamp(256, 4_096);
    eprintln!(
        "equivalence probe: {eq_decisions} decisions, {residents} residents/node, \
         classifier off vs on"
    );
    let eq_arms: Vec<String> = [false, true]
        .iter()
        .map(|&classifier| {
            let mut engine = loaded_engine(residents);
            let mut lr = LibraRisk::paper().with_classifier(classifier);
            for j in &stream {
                black_box(lr.decide(&engine, j));
            }
            let mut agg = librisk::policy::DecisionStats::default();
            let mut counted = 0u64;
            for i in 0..eq_decisions {
                // Nudge the clock well inside the next event gap: the
                // global epoch moves (memos miss) but residency never
                // changes, so every arm sees the identical load shape.
                let now = engine.now();
                let gap = engine
                    .next_event_time()
                    .map(|t| (t - now).as_secs())
                    .unwrap_or(1.0);
                engine.advance(now + SimDuration::from_secs((gap * 1e-4).clamp(1e-6, 1.0)));
                black_box(lr.decide(&engine, &stream[i % stream.len()]));
                if let Some(s) = lr.last_decision_stats() {
                    agg.nodes_considered += s.nodes_considered;
                    agg.projections_run += s.projections_run;
                    agg.screen_hits += s.screen_hits;
                    agg.class_hits += s.class_hits;
                    agg.pairing_hits += s.pairing_hits;
                    agg.kernel_bails += s.kernel_bails;
                    agg.memo_hits += s.memo_hits;
                    agg.distinct_classes += s.distinct_classes;
                    counted += 1;
                }
            }
            let n = counted.max(1) as f64;
            let avoided = agg.projections_avoided();
            let avoided_ratio = avoided as f64 / (agg.nodes_considered.max(1)) as f64;
            eprintln!(
                "    classifier {}: {:.2} profiles/decision, {:.2} classes/decision, \
                 {:.1}% of node evaluations avoided the kernel",
                if classifier { "on " } else { "off" },
                agg.projections_run as f64 / n,
                agg.distinct_classes as f64 / n,
                avoided_ratio * 100.0,
            );
            format!(
                "    \"classifier_{}\": {{ \"decisions\": {counted}, \
                 \"nodes_considered\": {}, \"projections_run\": {}, \
                 \"projections_avoided\": {avoided}, \
                 \"profiles_per_decision\": {:.2}, \
                 \"classes_per_decision\": {:.2}, \
                 \"avoided_ratio\": {avoided_ratio:.3}, \
                 \"screen_hits\": {}, \"class_hits\": {}, \"pairing_hits\": {}, \
                 \"memo_hits\": {}, \"kernel_bails\": {} }}",
                if classifier { "on" } else { "off" },
                agg.nodes_considered,
                agg.projections_run,
                agg.projections_run as f64 / n,
                agg.distinct_classes as f64 / n,
                agg.screen_hits,
                agg.class_hits,
                agg.pairing_hits,
                agg.memo_hits,
                agg.kernel_bails,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"decisions\": {decisions},\n  \"residents_per_node\": {residents},\n  \
         \"policies\": {{\n    \
         \"Libra\": {},\n    \
         \"LibraRisk\": {}\n  }},\n  \
         \"residents_sweep\": [\n{}\n  ],\n  \
         \"event_loop\": {{ \"events\": {heap_events}, \
         \"heap_events_per_sec\": {heap_eps:.0}, \
         \"scan_events_per_sec\": {scan_eps:.0}, \
         \"speedup\": {:.2}, \
         \"isolated_cached_ns_per_call\": {cached_ns:.1}, \
         \"isolated_scan_ns_per_call\": {scan_ns:.1}, \
         \"isolated_speedup\": {:.1} }},\n  \
         \"unified_driver\": {{ \"jobs\": {driver_jobs}, \"policies\": {{\n{}\n  }} }},\n  \
         \"sharded_driver\": {{ \"total_jobs\": {sharded_jobs}, \"route\": \"JobHash\", \
         \"policy\": \"LibraRisk\", \"cells\": [\n{}\n  ] }},\n  \
         \"advance_path\": {{ \"jobs\": {driver_jobs}, \"advances\": {adv_count}, \
         \"incremental_jobs_per_sec\": {adv_jps:.0}, \
         \"reference_jobs_per_sec\": {ref_adv_jps:.0}, \
         \"speedup\": {:.2}, \
         \"advance_ns_p50\": {adv_p50}, \"advance_ns_p99\": {adv_p99} }},\n  \
         \"churn_driver\": {{ \"jobs\": {driver_jobs}, \"fault_events\": {}, \"policies\": {{\n{}\n  }} }},\n  \
         \"fault_free_overhead\": {{ \"plain_jobs_per_sec\": {plain_jps:.0}, \
         \"empty_plan_jobs_per_sec\": {empty_jps:.0}, \"ratio\": {overhead_ratio:.3}, \
         \"ratio_min\": {overhead_ratio_min:.3} }},\n  \
         \"checkpoint\": {{ \"jobs\": {driver_jobs}, \"cut\": {ckpt_cut}, \
         \"snapshot_bytes\": {}, \"save_us\": {ckpt_save_us:.1}, \
         \"load_us\": {ckpt_load_us:.1}, \"restore_us\": {ckpt_restore_us:.1}, \
         \"fulfilled\": {resumed_fulfilled} }},\n  \
         \"equivalence\": {{\n{}\n  }},\n  \
         \"obs_overhead\": {{ \"plain_jobs_per_sec\": {obs_plain_jps:.0}, \
         \"noop_jobs_per_sec\": {noop_jps:.0}, \"ring_jobs_per_sec\": {ring_jps:.0}, \
         \"gauged_ring_jobs_per_sec\": {gauged_jps:.0}, \
         \"noop_ratio\": {noop_ratio:.3}, \"noop_ratio_min\": {noop_ratio_min:.3}, \
         \"ring_ratio\": {ring_ratio:.3}, \"ring_ratio_min\": {ring_ratio_min:.3}, \
         \"gauged_ring_ratio\": {gauged_ratio:.3}, \
         \"gauged_ring_ratio_min\": {gauged_ratio_min:.3}, \
         \"ring_overhead_pct\": {ring_overhead_pct:.1}, \
         \"decide_ns_mean\": {decide_ns_mean:.0} }},\n  \
         \"profiler_overhead\": {{ \"jobs\": {obs_jobs}, \
         \"off_jobs_per_sec\": {pf_off_jps:.0}, \"on_jobs_per_sec\": {pf_on_jps:.0}, \
         \"ratio\": {profiler_ratio:.3}, \"ratio_min\": {profiler_ratio_min:.3}, \
         \"advance_coverage\": {pf_coverage:.3} }}\n}}\n",
        libra_t.json(),
        lr_t.json(),
        sweep_cells.join(",\n"),
        heap_eps / scan_eps,
        scan_ns / cached_ns,
        driver_cells.join(",\n"),
        sharded_cells.join(",\n"),
        adv_jps / ref_adv_jps,
        plan.len(),
        churn_cells.join(",\n"),
        snapshot.len(),
        eq_arms.join(",\n"),
    );
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
