//! Figure 3 (impact of varying high-urgency jobs): regenerates the panels
//! at bench scale and times the 0 % and 100 % urgency cells.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures;
use experiments::{EstimateRegime, Scenario};
use librisk::prelude::PolicyKind;
use std::hint::black_box;

fn regenerate_and_time(c: &mut Criterion) {
    let fig = figures::fig3(&bench_config());
    eprintln!("{}", experiments::report::figure_to_markdown(&fig));

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for policy in PolicyKind::PAPER {
        for pct in [0.0f64, 100.0] {
            let scenario = Scenario {
                jobs: 300,
                high_urgency_pct: pct,
                estimates: EstimateRegime::Trace,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(policy.name(), format!("high_urgency={pct}%")),
                &scenario,
                |b, s| b.iter(|| black_box(s.run(policy)).fulfilled()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
