//! Figure 1 (impact of varying workload): regenerates the four panels at
//! bench scale and times the heavy- and light-load cells per policy.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures;
use experiments::{EstimateRegime, Scenario};
use librisk::prelude::PolicyKind;
use std::hint::black_box;

fn regenerate_and_time(c: &mut Criterion) {
    // Regenerate the figure once so `cargo bench` reproduces the rows.
    let fig = figures::fig1(&bench_config());
    eprintln!("{}", experiments::report::figure_to_markdown(&fig));

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for policy in PolicyKind::PAPER {
        for delay in [0.2f64, 1.0] {
            let scenario = Scenario {
                jobs: 300,
                arrival_delay_factor: delay,
                estimates: EstimateRegime::Trace,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(policy.name(), format!("delay={delay}")),
                &scenario,
                |b, s| b.iter(|| black_box(s.run(policy)).fulfilled()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
