//! Microbenches of the hot paths: the admission decision (M1), the
//! end-to-end simulated-jobs-per-second rate (M2), the node-local delay
//! projection, and the DES kernel's event queue.

use cluster::projection::{
    node_risk, project_finishes, ProjectedJob, ProjectionWorkspace, ShareDiscipline,
};
use cluster::proportional::{ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use librisk::libra::Libra;
use librisk::policy::ShareAdmission;
use librisk::prelude::*;
use librisk::LibraRisk;
use sim::{SimDuration, SimTime};
use std::hint::black_box;

fn job(id: u64, estimate: f64, deadline: f64) -> Job {
    Job {
        id: JobId(id),
        submit: SimTime::ZERO,
        runtime: SimDuration::from_secs(estimate),
        estimate: SimDuration::from_secs(estimate),
        procs: 1,
        deadline: SimDuration::from_secs(deadline),
        urgency: Urgency::Low,
    }
}

/// M1: a LibraRisk admission decision on a 128-node cluster with varying
/// resident load.
fn admission_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/admission");
    for residents_per_node in [1usize, 4, 16] {
        let mut engine =
            ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
        let mut id = 0u64;
        for n in 0..engine.cluster().len() {
            for _ in 0..residents_per_node {
                // Light shares so every node stays feasible.
                let j = job(id, 100.0, 100_000.0 + id as f64);
                engine.admit(j, vec![NodeId(n as u32)], SimTime::ZERO);
                id += 1;
            }
        }
        let new_job = job(u64::MAX, 500.0, 5_000.0);
        group.bench_with_input(
            BenchmarkId::new("librarisk_decide", residents_per_node),
            &engine,
            |b, e| {
                b.iter(|| {
                    let mut policy = LibraRisk::paper();
                    black_box(policy.decide(e, &new_job))
                })
            },
        );
    }
    group.finish();
}

/// The projection kernel itself: the allocating `project_finishes` entry
/// point (a fresh set of scratch vectors every call — the pre-change
/// behaviour) against `ProjectionWorkspace::project_finishes_into` on a
/// warm caller-owned workspace (zero allocation after warm-up), across
/// resident-set sizes k.
fn project_finishes_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/project_finishes");
    for k in [1usize, 4, 16, 64] {
        let jobs: Vec<ProjectedJob> = (0..k)
            .map(|i| ProjectedJob {
                remaining_est: 50.0 + 13.0 * i as f64,
                abs_deadline: 500.0 + 90.0 * i as f64,
            })
            .collect();
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("alloc_cold", k), &jobs, |b, js| {
            b.iter(|| {
                black_box(project_finishes(
                    js,
                    0.0,
                    1.0,
                    ShareDiscipline::WorkConserving,
                ))
            })
        });
        let mut ws = ProjectionWorkspace::new();
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("workspace_warm", k), &jobs, |b, js| {
            b.iter(|| {
                ws.project_finishes_into(js, 0.0, 1.0, ShareDiscipline::WorkConserving, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

/// A cluster with `residents_per_node` long-lived jobs on every node —
/// the steady state the admission path sees mid-simulation.
fn loaded_engine(residents_per_node: usize) -> ProportionalCluster {
    let mut engine = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let mut id = 0u64;
    for n in 0..engine.cluster().len() {
        for r in 0..residents_per_node {
            let j = job(id, 200.0 + 10.0 * r as f64, 500_000.0 + id as f64);
            engine.admit(j, vec![NodeId(n as u32)], SimTime::ZERO);
            id += 1;
        }
    }
    engine
}

/// A stream of candidate jobs spanning both accept and reject regions.
fn candidate_stream(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let est = 100.0 + (i % 37) as f64 * 40.0;
            let deadline = 800.0 + (i % 101) as f64 * 900.0;
            job(1_000_000 + i as u64, est, deadline)
        })
        .collect()
}

/// Steady-state decide loop over a 10k-job candidate stream: the cached
/// incremental `decide` (epoch-validated per-node caches, warm after the
/// first call) against the from-scratch `decide_reference` (the
/// pre-change kernel).
fn steady_state_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/steady_decide");
    group.throughput(Throughput::Elements(1));
    let engine = loaded_engine(8);
    let stream = candidate_stream(10_000);

    let mut libra = Libra::new();
    let mut i = 0usize;
    group.bench_function("libra_cached", |b| {
        b.iter(|| {
            let j = &stream[i % stream.len()];
            i += 1;
            black_box(libra.decide(&engine, j))
        })
    });
    let libra_ref = Libra::new();
    let mut i = 0usize;
    group.bench_function("libra_reference", |b| {
        b.iter(|| {
            let j = &stream[i % stream.len()];
            i += 1;
            black_box(libra_ref.decide_reference(&engine, j))
        })
    });

    let mut lr = LibraRisk::paper();
    let mut i = 0usize;
    group.bench_function("librarisk_cached", |b| {
        b.iter(|| {
            let j = &stream[i % stream.len()];
            i += 1;
            black_box(lr.decide(&engine, j))
        })
    });
    let lr_ref = LibraRisk::paper();
    let mut i = 0usize;
    group.bench_function("librarisk_reference", |b| {
        b.iter(|| {
            let j = &stream[i % stream.len()];
            i += 1;
            black_box(lr_ref.decide_reference(&engine, j))
        })
    });
    group.finish();
}

/// Node-local projection cost against resident-set size.
fn projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/projection");
    for n in [2usize, 8, 32, 128] {
        let jobs: Vec<ProjectedJob> = (0..n)
            .map(|i| ProjectedJob {
                remaining_est: 100.0 + i as f64,
                abs_deadline: 1_000.0 + 10.0 * i as f64,
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("node_risk", n), &jobs, |b, js| {
            b.iter(|| black_box(node_risk(js, 0.0, 1.0, ShareDiscipline::WorkConserving)))
        });
    }
    group.finish();
}

/// M2: end-to-end simulation throughput in jobs per second of wall time.
fn end_to_end_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/end_to_end");
    group.sample_size(10);
    let scenario = bench::default_scenario(1000);
    let trace = scenario.build_trace();
    let cluster = scenario.cluster();
    group.throughput(Throughput::Elements(trace.len() as u64));
    for policy in PolicyKind::PAPER {
        group.bench_function(policy.name(), |b| {
            b.iter(|| black_box(policy.run(&cluster, &trace)).fulfilled())
        });
    }
    group.finish();
}

/// The DES kernel's schedule/pop cycle.
fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/event_queue");
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q: sim::EventQueue<u64> = sim::EventQueue::with_capacity(n as usize);
                let mut rng = sim::Rng64::new(7);
                for i in 0..n {
                    q.schedule(SimTime::from_secs(rng.next_f64() * 1e6), i);
                }
                let mut acc = 0u64;
                while let Some(ev) = q.pop() {
                    acc = acc.wrapping_add(ev.payload);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    admission_decision,
    project_finishes_kernel,
    steady_state_decide,
    projection,
    end_to_end_throughput,
    event_queue
);
criterion_main!(benches);
