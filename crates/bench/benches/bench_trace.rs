//! The §4 trace-statistics table: regenerates it and times trace
//! generation (the workload substrate itself).

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures;
use std::hint::black_box;
use workload::synthetic::SyntheticSdscSp2;

fn regenerate_and_time(c: &mut Criterion) {
    eprintln!(
        "{}",
        figures::trace_stats_table(&bench_config()).to_markdown()
    );

    let mut group = c.benchmark_group("trace");
    for jobs in [300usize, 3000] {
        let generator = SyntheticSdscSp2 {
            jobs,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("generate", jobs), &generator, |b, g| {
            b.iter(|| black_box(g.generate(1)).len())
        });
    }
    // SWF round trip at paper scale.
    let trace = SyntheticSdscSp2 {
        jobs: 3000,
        ..Default::default()
    }
    .generate(1);
    let text = workload::swf::write(&trace);
    group.bench_function("swf_parse_3000", |b| {
        b.iter(|| workload::swf::parse(black_box(&text)).unwrap().0.len())
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
