//! Figure 4 (impact of varying inaccurate runtime estimates): regenerates
//! the panels at bench scale and times the fully-accurate and
//! fully-inaccurate cells at both urgency mixes.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures;
use experiments::{EstimateRegime, Scenario};
use librisk::prelude::PolicyKind;
use std::hint::black_box;

fn regenerate_and_time(c: &mut Criterion) {
    let fig = figures::fig4(&bench_config());
    eprintln!("{}", experiments::report::figure_to_markdown(&fig));

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for policy in PolicyKind::PAPER {
        for (hu, inacc) in [(20.0f64, 0.0f64), (20.0, 100.0), (80.0, 100.0)] {
            let scenario = Scenario {
                jobs: 300,
                high_urgency_pct: hu,
                estimates: EstimateRegime::Inaccuracy(inacc),
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(policy.name(), format!("hu={hu}%/inacc={inacc}%")),
                &scenario,
                |b, s| b.iter(|| black_box(s.run(policy)).fulfilled()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
