//! Ablation benches for the design choices DESIGN.md calls out:
//! (A1) zero-risk node ordering, (A2) share discipline,
//! (A3) the strict μ = 1 risk test.

use bench::{bench_config, default_scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures;
use librisk::prelude::PolicyKind;
use std::hint::black_box;

fn regenerate_and_time(c: &mut Criterion) {
    let fig = figures::ablation(&bench_config());
    eprintln!("{}", experiments::report::figure_to_markdown(&fig));

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let variants = [
        PolicyKind::LibraRisk,
        PolicyKind::LibraRiskStrict,
        PolicyKind::LibraRiskBestFit,
        PolicyKind::LibraRiskStrictShares,
        PolicyKind::Libra,
        PolicyKind::LibraStrictShares,
    ];
    let scenario = default_scenario(300);
    for policy in variants {
        group.bench_with_input(
            BenchmarkId::new("variant", policy.name()),
            &scenario,
            |b, s| b.iter(|| black_box(s.run(policy)).fulfilled()),
        );
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
