//! Figure 2 (impact of varying deadline high:low ratio): regenerates the
//! panels at bench scale and times the tight- and loose-deadline cells.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures;
use experiments::{EstimateRegime, Scenario};
use librisk::prelude::PolicyKind;
use std::hint::black_box;

fn regenerate_and_time(c: &mut Criterion) {
    let fig = figures::fig2(&bench_config());
    eprintln!("{}", experiments::report::figure_to_markdown(&fig));

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for policy in PolicyKind::PAPER {
        for ratio in [1.0f64, 10.0] {
            let scenario = Scenario {
                jobs: 300,
                deadline_ratio: ratio,
                estimates: EstimateRegime::Trace,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(policy.name(), format!("ratio={ratio}")),
                &scenario,
                |b, s| b.iter(|| black_box(s.run(policy)).fulfilled()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_time);
criterion_main!(benches);
