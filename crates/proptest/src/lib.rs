//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal property-testing runtime exposing exactly the API
//! surface the repo's test suites use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` attribute, [`Strategy`] with
//! `prop_map`, numeric range strategies, tuple strategies,
//! [`collection::vec`], [`Just`], [`any`], a simple `[class]{m,n}` string
//! strategy, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (via
//!   `Debug`) and the case index, then re-raises the panic.
//! * **Deterministic seeding.** Cases derive from a fixed seed hashed with
//!   the test's module path and name, so failures reproduce across runs.
//!   Set `PROPTEST_SEED=<u64>` to explore a different stream.
//! * `prop_assert!`/`prop_assert_eq!` panic (like `assert!`) instead of
//!   returning `Err` — equivalent observable behaviour under this runner.

use std::fmt;
use std::ops::Range;

/// Runner configuration, selected with `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 stream used to generate case inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream from a test identifier (stable across runs).
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name, mixed with an optional env override.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        TestRng {
            state: h ^ env.rotate_left(17),
        }
    }

    /// An independent stream for one case of this test.
    pub fn fork(&self, case: u64) -> TestRng {
        let mut rng = TestRng {
            state: self.state ^ case.wrapping_mul(0xff51_afd7_ed55_8ccd),
        };
        // Decorrelate adjacent case indices.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be > 0.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping is fine for test data.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
///
/// Unlike real proptest there is no shrinking tree; a strategy simply
/// produces a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // Float rounding may land exactly on `end`; stay half-open.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a wide magnitude range.
        let mag = rng.next_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy for [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String strategy from a `"[class]{m,n}"` pattern (the subset of regex
/// syntax this workspace's tests use). Supports single characters,
/// `a-z` ranges and `\`-escapes inside the class.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[abc x-y]{m,n}` into (alphabet, m, n). Returns `None` on any
/// other shape.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let mut alphabet = Vec::new();
    let mut chars = rest.chars().peekable();
    let mut closed = false;
    let mut tail = String::new();
    while let Some(c) = chars.next() {
        if closed {
            tail.push(c);
            continue;
        }
        match c {
            ']' => closed = true,
            '\\' => alphabet.push(chars.next()?),
            _ => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars.next()?;
                    if hi == ']' {
                        alphabet.push(c);
                        alphabet.push('-');
                        closed = true;
                    } else {
                        for x in c as u32..=hi as u32 {
                            alphabet.push(char::from_u32(x)?);
                        }
                    }
                } else {
                    alphabet.push(c);
                }
            }
        }
    }
    if !closed || alphabet.is_empty() {
        return None;
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((alphabet, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`
    /// (half-open, matching `proptest::collection::vec`).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of values from `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Uniform choice among same-typed strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union; used by the `prop_oneof!` expansion.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty());
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Chooses uniformly between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let stream =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(config.cases) {
                let mut rng = stream.fork(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let desc = format!(concat!($(stringify!($arg), " = {:?}  "),*), $(&$arg),*);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || { $body },
                ));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of {} failed with inputs: {desc}",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// The glob import real proptest users write.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..2000 {
            let x = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-10i32..-2).generate(&mut rng);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..500 {
            let v = collection::vec(0.0..1.0f64, 1..7).generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    #[test]
    fn string_class_pattern_generates_members_only() {
        let mut rng = TestRng::deterministic("class");
        let pat = "[a-c,\"\n]{0,12}";
        for _ in 0..500 {
            let s = pat.generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ',' | '"' | '\n')));
        }
    }

    #[test]
    fn oneof_and_just_and_map_compose() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = TestRng::deterministic("x").fork(3).next_u64();
        let b = TestRng::deterministic("x").fork(3).next_u64();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, ys in collection::vec(0.0..1.0f64, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.is_empty(), false);
        }
    }
}
