//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal timing harness exposing the API surface the `bench`
//! crate uses: `Criterion::benchmark_group`, `BenchmarkGroup` with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model (simpler than real criterion, same spirit): each
//! benchmark is warmed up, then timed over `sample_size` samples of an
//! adaptively chosen iteration batch; the median, mean, and min
//! nanoseconds per iteration are reported on stdout, plus derived
//! throughput when one was declared. Set `CRITERION_SAMPLE_MS` to change
//! the per-sample time budget (default 20 ms).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_budget: Duration,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `f`, storing per-iteration nanoseconds samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: grow the batch until one batch costs at
        // least ~1/4 of the sample budget (so Instant overhead vanishes).
        let mut batch: u64 = 1;
        let floor = self.sample_budget / 4;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= floor || batch >= 1 << 30 {
                break;
            }
            batch = if el.is_zero() {
                batch * 16
            } else {
                let scale = floor.as_nanos().div_ceil(el.as_nanos().max(1));
                (batch * scale as u64 * 2).clamp(batch + 1, 1 << 30)
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            self.samples.push(el.as_nanos() as f64 / batch as f64);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timing samples (real criterion's meaning; here
    /// it directly bounds measurement wall time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Sets the measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benches a closure with no extra input.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benches a closure against one input value.
    pub fn bench_with_input<I: ?Sized, D, F>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        D: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (report lines are printed as benches run).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_budget: sample_budget(),
            sample_count: self.sample_count,
        };
        f(&mut bencher);
        let line = report_line(&self.name, id, &samples, self.throughput);
        println!("{line}");
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms.max(1))
}

fn report_line(group: &str, id: &str, samples: &[f64], throughput: Option<Throughput>) -> String {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let min = sorted[0];
    let mut line = format!(
        "{group}/{id}: median {} mean {} min {}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let _ = write!(line, "  thrpt {:.3} Melem/s", n as f64 / median * 1e3);
        }
        Some(Throughput::Bytes(n)) => {
            let _ = write!(
                line,
                "  thrpt {:.3} MiB/s",
                n as f64 / median * 1e9 / (1 << 20) as f64
            );
        }
        None => {}
    }
    line
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_count: 30,
            _criterion: self,
        }
    }

    /// Benches a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
            sample_count: 30,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_contain_group_and_id() {
        let line = report_line(
            "g",
            "f/3",
            &[10.0, 30.0, 20.0],
            Some(Throughput::Elements(3)),
        );
        assert!(line.starts_with("g/f/3:"));
        assert!(line.contains("median 20.0 ns"));
        assert!(line.contains("thrpt"));
    }

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(5.0), "5.0 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
    }
}
