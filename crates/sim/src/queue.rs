//! Time-ordered event queue with FIFO tie-breaking and lazy cancellation.

use crate::event::{Event, EventId};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A min-heap of events ordered by `(time, schedule order)`.
///
/// Two events scheduled for the same instant pop in the order they were
/// pushed, which makes simulations deterministic without requiring callers
/// to perturb timestamps.
///
/// Cancellation is *lazy*: [`EventQueue::cancel`] unregisters the id and
/// the heap entry is silently dropped when it reaches the head. Cancelling
/// an id that was already delivered (or never existed) is a safe no-op
/// returning `false`.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Reverse<Event<P>>>,
    /// Ids scheduled and not yet delivered or cancelled.
    pending: HashSet<EventId>,
    next_id: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_id: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            pending: HashSet::with_capacity(cap),
            next_id: 0,
        }
    }

    /// Schedules `payload` to fire at `time`; returns the event's id.
    pub fn schedule(&mut self, time: SimTime, payload: P) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Reverse(Event { time, id, payload }));
        self.pending.insert(id);
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the id was
    /// still pending; cancelling a delivered, cancelled or unknown id is a
    /// no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id)
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// ones.
    pub fn pop(&mut self) -> Option<Event<P>> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.pending.remove(&ev.id) {
                return Some(ev);
            }
            // Tombstone of a cancelled event: drop and continue.
        }
        None
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    /// Drops cancelled events sitting at the head of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.pending.contains(&ev.id) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total number of events ever scheduled (monotonic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancelling_a_delivered_event_is_a_safe_noop() {
        // Regression test: the proportional scheduler cancels its wake id
        // after the wake has already fired; this must not corrupt the
        // pending count.
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        let fired = q.pop().unwrap();
        assert_eq!(fired.id, a);
        assert!(!q.cancel(a), "already delivered");
        assert_eq!(q.len(), 0);
        // Queue keeps functioning normally afterwards.
        q.schedule(t(2.0), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 0);
    }

    #[test]
    fn heavy_cancel_churn_keeps_len_consistent() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(q.schedule(t(i as f64), i));
        }
        // Cancel every other event, some twice, plus delivered ones.
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id));
            assert!(!q.cancel(*id));
        }
        assert_eq!(q.len(), 50);
        let mut delivered = 0;
        while let Some(ev) = q.pop() {
            delivered += 1;
            // Cancelling after delivery: no-op.
            assert!(!q.cancel(ev.id));
        }
        assert_eq!(delivered, 50);
        assert_eq!(q.len(), 0);
    }
}
