//! Events: a firing time, a stable identity, and a caller payload.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Stable identity of a scheduled event.
///
/// Ids are handed out monotonically by the [`crate::EventQueue`]; they double
/// as the FIFO tie-breaker for events scheduled at the same instant and can
/// be used to cancel an event lazily.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Raw sequence number of the event.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A scheduled event carrying a caller payload `P`.
#[derive(Clone, Debug)]
pub struct Event<P> {
    /// When the event fires.
    pub time: SimTime,
    /// Stable identity (also the FIFO tie-break for equal times).
    pub id: EventId,
    /// The caller's payload.
    pub payload: P,
}

impl<P> Event<P> {
    /// Orders by time, then by schedule order. The queue reverses this for
    /// its min-heap.
    pub(crate) fn key(&self) -> (SimTime, EventId) {
        (self.time, self.id)
    }
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<P> Eq for Event<P> {}

impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, id: u64) -> Event<()> {
        Event {
            time: SimTime::from_secs(t),
            id: EventId(id),
            payload: (),
        }
    }

    #[test]
    fn ordering_by_time_then_id() {
        assert!(ev(1.0, 5) < ev(2.0, 1));
        assert!(ev(1.0, 1) < ev(1.0, 2));
        assert_eq!(ev(1.0, 1), ev(1.0, 1));
    }
}
