//! Deterministic pseudo-random number generation.
//!
//! The workload generator must be *bit-reproducible* across platforms and
//! toolchain upgrades so that experiment tables can be regenerated exactly.
//! We therefore implement xoshiro256++ (Blackman & Vigna) with SplitMix64
//! seeding from scratch instead of depending on `rand`, whose value streams
//! are not stable across major versions.
//!
//! [`Rng64::split`] derives independent named sub-streams, so e.g. the
//! arrival process, runtime distribution and deadline assignment each use
//! their own stream: changing how many samples one component draws does not
//! perturb the others.

/// xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Rng64 { s }
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// The label is hashed (FNV-1a) together with the parent state so that
    /// distinct labels give uncorrelated streams and the same label always
    /// gives the same stream for the same parent seed.
    ///
    /// ```
    /// let root = sim::Rng64::new(42);
    /// let mut a = root.split("arrivals");
    /// let mut b = root.split("arrivals");
    /// assert_eq!(a.next_u64(), b.next_u64()); // same label, same stream
    /// ```
    pub fn split(&self, label: &str) -> Rng64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Mix the label hash with the *initial* state words (not the
        // evolving ones) so splits are order-independent.
        let mixed = h ^ self.s[0].wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.s[2];
        Rng64::new(mixed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe as a `ln()` argument.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Unbiased: reject the small sliver that would favour low values.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given `mean` (inverse
    /// transform on the open unit interval, so `ln` never sees zero).
    ///
    /// # Panics
    /// Panics if `mean` is not positive.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.next_f64_open().ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector_is_stable() {
        // Pin the output stream: any change to seeding or the generator
        // breaks every recorded experiment, so fail loudly.
        let mut r = Rng64::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = Rng64::new(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(first, again);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_is_reasonable() {
        let mut r = Rng64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform(10.0, 20.0)).sum::<f64>() / n as f64;
        assert!((mean - 15.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = Rng64::new(123);
        let mut a1 = root.split("arrivals");
        let mut a2 = root.split("arrivals");
        let mut b = root.split("runtimes");
        let mut any_diff = false;
        for _ in 0..100 {
            assert_eq!(a1.next_u64(), a2.next_u64());
            if a1.clone().next_u64() != b.next_u64() {
                any_diff = true;
            }
        }
        assert!(any_diff, "distinct labels must give distinct streams");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = Rng64::new(5);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn exponential_mean_is_reasonable() {
        let mut r = Rng64::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
        assert!((0..1000).all(|_| r.exponential(1.0) > 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_non_positive_mean() {
        Rng64::new(0).exponential(0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(6);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
