//! The simulation engine: a virtual clock plus an event queue.
//!
//! The engine is *pull-style*: the owner repeatedly calls
//! [`Simulator::next_event`] (or drives [`Simulator::run`] with a handler
//! closure) and applies the payload to its own state. Compared with
//! GridSim's entity/thread model this makes all mutation explicit and the
//! whole run single-threaded and deterministic.

use crate::event::{Event, EventId};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulator over payload type `P`.
#[derive(Debug)]
pub struct Simulator<P> {
    queue: EventQueue<P>,
    now: SimTime,
    dispatched: u64,
}

impl<P> Default for Simulator<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> Simulator<P> {
    /// Creates a simulator with the clock at `t = 0`.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock: scheduling into the past
    /// would silently reorder causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: P) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({:?} < {:?})",
            at,
            self.now
        );
        self.queue.schedule(at, payload)
    }

    /// Schedules `payload` after a non-negative delay from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: P) -> EventId {
        assert!(
            delay >= SimDuration::ZERO,
            "delay must be non-negative, got {:?}",
            delay
        );
        self.queue.schedule(self.now + delay, payload)
    }

    /// Schedules a batch of `(at, payload)` pairs, preserving iteration
    /// order among simultaneous events (FIFO dispatch) — the driver
    /// helper trace replays use to pre-load every arrival.
    ///
    /// # Panics
    /// Panics if any `at` is before the current clock.
    pub fn schedule_all<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (SimTime, P)>,
    {
        for (at, payload) in items {
            self.schedule_at(at, payload);
        }
    }

    /// Cancels a pending event; returns whether it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event and advances the clock to its firing time.
    pub fn next_event(&mut self) -> Option<Event<P>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "event queue returned a past event");
        self.now = ev.time;
        self.dispatched += 1;
        Some(ev)
    }

    /// Runs the simulation to completion, applying `handler` to every event.
    ///
    /// The handler receives the simulator (so it may schedule/cancel) and
    /// the event. Returns the number of events dispatched by this call.
    pub fn run<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<P>, Event<P>),
    {
        let start = self.dispatched;
        while let Some(ev) = self.next_event() {
            handler(self, ev);
        }
        self.dispatched - start
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` are dispatched). Leaves later events pending and the
    /// clock at the last dispatched event (or unchanged if none fired).
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<P>, Event<P>),
    {
        let start = self.dispatched;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.next_event().expect("peeked event disappeared");
            handler(self, ev);
        }
        self.dispatched - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: f64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn clock_advances_with_events() {
        let mut s = Simulator::new();
        s.schedule_at(t(5.0), "a");
        s.schedule_at(t(2.0), "b");
        let ev = s.next_event().unwrap();
        assert_eq!(ev.payload, "b");
        assert_eq!(s.now(), t(2.0));
        let ev = s.next_event().unwrap();
        assert_eq!(ev.payload, "a");
        assert_eq!(s.now(), t(5.0));
        assert!(s.next_event().is_none());
        assert_eq!(s.dispatched(), 2);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut s = Simulator::new();
        s.schedule_at(t(1.0), 3u32);
        let mut fired = Vec::new();
        s.run(|sim, ev| {
            fired.push((sim.now().as_secs(), ev.payload));
            if ev.payload > 0 {
                sim.schedule_in(d(1.0), ev.payload - 1);
            }
        });
        assert_eq!(fired, vec![(1.0, 3), (2.0, 2), (3.0, 1), (4.0, 0)]);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut s = Simulator::new();
        for i in 1..=5 {
            s.schedule_at(t(i as f64), i);
        }
        let mut fired = Vec::new();
        let n = s.run_until(t(3.0), |_, ev| fired.push(ev.payload));
        assert_eq!(n, 3);
        assert_eq!(fired, vec![1, 2, 3]);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.now(), t(3.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut s = Simulator::new();
        s.schedule_at(t(5.0), ());
        s.next_event();
        s.schedule_at(t(1.0), ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let mut s: Simulator<()> = Simulator::new();
        s.schedule_in(d(-1.0), ());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut s = Simulator::new();
        let a = s.schedule_at(t(1.0), "a");
        s.schedule_at(t(2.0), "b");
        assert!(s.cancel(a));
        let mut fired = Vec::new();
        s.run(|_, ev| fired.push(ev.payload));
        assert_eq!(fired, vec!["b"]);
    }

    #[test]
    fn schedule_all_preserves_order_on_ties() {
        let mut s = Simulator::new();
        s.schedule_all([(t(2.0), "b"), (t(1.0), "a"), (t(2.0), "c")]);
        let mut fired = Vec::new();
        s.run(|_, ev| fired.push(ev.payload));
        assert_eq!(fired, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut s = Simulator::new();
        for i in 0..100 {
            s.schedule_at(t(1.0), i);
        }
        let mut fired = Vec::new();
        s.run(|_, ev| fired.push(ev.payload));
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }
}
