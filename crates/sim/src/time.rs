//! Virtual-clock time axis.
//!
//! Simulated time is kept as `f64` seconds wrapped in newtypes that
//! guarantee the values are finite (never NaN), which makes them totally
//! ordered and safe to use as priority-queue keys.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in seconds since simulation start.
///
/// Construction rejects NaN (panics), so `SimTime` is totally ordered and
/// implements `Ord`/`Eq` soundly.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May be negative (e.g. the signed
/// lateness of a job against its deadline).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Seconds since the simulation epoch.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Signed span from `earlier` to `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimDuration cannot be NaN");
        SimDuration(secs)
    }

    /// The span in seconds (signed).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` when the span is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// Clamps a possibly-negative span to zero.
    #[inline]
    pub fn clamp_non_negative(self) -> SimDuration {
        if self.0 < 0.0 {
            SimDuration::ZERO
        } else {
            self
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

macro_rules! impl_ord_via_f64 {
    ($t:ty) => {
        impl Eq for $t {}
        // Values are guaranteed non-NaN at construction, so partial_cmp
        // always succeeds.
        impl PartialOrd for $t {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $t {
            #[inline]
            fn cmp(&self, other: &Self) -> Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .expect("non-NaN by construction")
            }
        }
    };
}

impl_ord_via_f64!(SimTime);
impl_ord_via_f64!(SimDuration);

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!((t - d).as_secs(), 7.5);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_is_signed() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(8.0);
        assert_eq!(b.since(a).as_secs(), 3.0);
        assert_eq!(a.since(b).as_secs(), -3.0);
        assert!(!a.since(b).is_positive());
        assert_eq!(a.since(b).clamp_non_negative(), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|t| t.as_secs()).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_duration_rejected() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 0.5).as_secs(), 5.0);
        assert_eq!((d / 4.0).as_secs(), 2.5);
        assert_eq!(d / SimDuration::from_secs(2.0), 5.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1.0);
        let y = SimDuration::from_secs(2.0);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
