//! # `sim` — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate that replaces GridSim in the reproduction of
//! Yeo & Buyya, *"Managing Risk of Inaccurate Runtime Estimates for Deadline
//! Constrained Job Admission Control in Clusters"* (ICPP 2006). It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual-clock time axis with total
//!   ordering (finite, non-NaN by construction).
//! * [`EventQueue`] — a time-ordered priority queue with FIFO tie-breaking,
//!   so two events scheduled for the same instant fire in schedule order.
//! * [`Simulator`] — a pull-style engine: the caller pops events and drives
//!   handlers, which keeps the borrow structure simple and the control flow
//!   fully deterministic.
//! * [`rng`] — a from-scratch xoshiro256++ PRNG with SplitMix64 seeding and
//!   named stream splitting, so every experiment is bit-reproducible across
//!   toolchains and platforms (no dependency on `rand`'s evolving output
//!   streams).
//!
//! The kernel is intentionally small and allocation-light: one binary heap,
//! no trait objects on the hot path, and events carry a caller-supplied
//! payload type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::Simulator;
pub use event::{Event, EventId};
pub use queue::EventQueue;
pub use rng::Rng64;
pub use time::{SimDuration, SimTime};
