//! Property-based invariants of the DES kernel.

use proptest::prelude::*;
use sim::{EventQueue, SimDuration, SimTime, Simulator};

proptest! {
    #[test]
    fn pop_order_is_sorted_by_time_then_schedule_order(
        times in proptest::collection::vec(0.0..1e6f64, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.time.as_secs(), ev.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn cancelled_events_never_fire_and_len_is_exact(
        times in proptest::collection::vec(0.0..1e6f64, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100)
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .map(|&t| q.schedule(SimTime::from_secs(t), ()))
            .collect();
        let mut cancelled = 0usize;
        for (id, &c) in ids.iter().zip(&cancel_mask) {
            if c && q.cancel(*id) {
                cancelled += 1;
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled);
        let mut fired = 0usize;
        let mut fired_ids = Vec::new();
        while let Some(ev) = q.pop() {
            fired += 1;
            fired_ids.push(ev.id);
        }
        prop_assert_eq!(fired, times.len() - cancelled);
        for (id, &c) in ids.iter().zip(&cancel_mask) {
            if c {
                prop_assert!(!fired_ids.contains(id), "cancelled event fired");
            }
        }
    }

    #[test]
    fn simulator_clock_is_monotone_and_dispatches_everything(
        times in proptest::collection::vec(0.0..1e6f64, 1..150)
    ) {
        let mut s: Simulator<usize> = Simulator::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0u64;
        let n = s.run(|sim, _ev| {
            assert!(sim.now() >= last);
            last = sim.now();
            count += 1;
        });
        prop_assert_eq!(n, times.len() as u64);
        prop_assert_eq!(count, times.len() as u64);
        prop_assert_eq!(s.pending(), 0);
    }

    #[test]
    fn run_until_plus_run_equals_run(
        times in proptest::collection::vec(0.0..1000.0f64, 1..100),
        cut in 0.0..1000.0f64
    ) {
        let build = |times: &[f64]| {
            let mut s: Simulator<usize> = Simulator::new();
            for (i, &t) in times.iter().enumerate() {
                s.schedule_at(SimTime::from_secs(t), i);
            }
            s
        };
        let mut whole = build(&times);
        let mut order_whole = Vec::new();
        whole.run(|_, ev| order_whole.push(ev.payload));

        let mut split = build(&times);
        let mut order_split = Vec::new();
        split.run_until(SimTime::from_secs(cut), |_, ev| order_split.push(ev.payload));
        split.run(|_, ev| order_split.push(ev.payload));
        prop_assert_eq!(order_whole, order_split);
    }

    #[test]
    fn rng_streams_are_reproducible_and_uniformish(seed in any::<u64>()) {
        let mut a = sim::Rng64::new(seed);
        let mut b = sim::Rng64::new(seed);
        let mut sum = 0.0;
        const N: usize = 1000;
        for _ in 0..N {
            let x = a.next_f64();
            prop_assert_eq!(x, b.next_f64());
            prop_assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Loose uniformity sanity: mean of 1000 uniforms within [0.4, 0.6].
        let mean = sum / N as f64;
        prop_assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }

    #[test]
    fn rng_below_is_unbiased_over_small_ranges(seed in any::<u64>(), n in 1u64..20) {
        let mut rng = sim::Rng64::new(seed);
        let mut counts = vec![0u32; n as usize];
        let draws = 2000;
        for _ in 0..draws {
            counts[rng.below(n) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            prop_assert!(
                (f64::from(c) - expected).abs() < 6.0 * expected.sqrt() + 6.0,
                "value {v} count {c} vs expected {expected}"
            );
        }
    }
}

#[test]
fn schedule_in_respects_relative_delay() {
    let mut s: Simulator<&str> = Simulator::new();
    s.schedule_at(SimTime::from_secs(10.0), "first");
    s.next_event();
    s.schedule_in(SimDuration::from_secs(5.0), "second");
    let ev = s.next_event().unwrap();
    assert_eq!(ev.time, SimTime::from_secs(15.0));
}
