//! Property-based invariants of the workload models.

use proptest::prelude::*;
use sim::{Rng64, SimDuration, SimTime};
use workload::deadlines::DeadlineModel;
use workload::estimates::{self, TraceLikeEstimator, TsafrirEstimator};
use workload::{swf, Job, JobId, Trace, Urgency};

fn job_strategy() -> impl Strategy<Value = Job> {
    (
        0u64..1_000_000,
        0.0..1e7f64,
        1.0..100_000.0f64,
        0.1..30.0f64,
        1u32..129,
        1.05..20.0f64,
    )
        .prop_map(|(id, submit, runtime, est_factor, procs, dl_factor)| Job {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs((runtime * est_factor).max(1.0)),
            procs,
            deadline: SimDuration::from_secs(runtime * dl_factor),
            urgency: Urgency::Low,
        })
}

/// Jobs with unique ids (SWF keys on the job number).
fn unique_jobs(max: usize) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(job_strategy(), 1..max).prop_map(|mut js| {
        for (i, j) in js.iter_mut().enumerate() {
            j.id = JobId(i as u64);
        }
        js
    })
}

proptest! {
    #[test]
    fn swf_roundtrip_preserves_the_fields_the_model_uses(jobs in unique_jobs(40)) {
        let trace = Trace::new(jobs);
        let text = swf::write(&trace);
        let (parsed, report) = swf::parse(&text).expect("own output parses");
        prop_assert_eq!(report.parsed, trace.len());
        prop_assert_eq!(report.skipped, 0);
        for (a, b) in trace.jobs().iter().zip(parsed.jobs()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert!((a.submit.as_secs() - b.submit.as_secs()).abs() < 1e-9);
            prop_assert!((a.runtime.as_secs() - b.runtime.as_secs()).abs() < 1e-9);
            prop_assert!((a.estimate.as_secs() - b.estimate.as_secs()).abs() < 1e-9);
            prop_assert_eq!(a.procs, b.procs);
        }
    }

    #[test]
    fn scale_arrivals_composes_and_preserves_order(
        jobs in unique_jobs(40),
        a in 0.1..3.0f64,
        b in 0.1..3.0f64,
    ) {
        let base = Trace::new(jobs);
        let mut once = base.clone();
        once.scale_arrivals(a * b);
        let mut twice = base.clone();
        twice.scale_arrivals(a);
        twice.scale_arrivals(b);
        for (x, y) in once.jobs().iter().zip(twice.jobs()) {
            prop_assert!(
                (x.submit.as_secs() - y.submit.as_secs()).abs()
                    < 1e-6 * x.submit.as_secs().abs().max(1.0),
                "{} vs {}", x.submit, y.submit
            );
        }
        // Arrival order is invariant under scaling.
        for w in once.jobs().windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
        }
    }

    #[test]
    fn deadline_model_always_yields_factors_above_the_floor(
        jobs in unique_jobs(60),
        hu_pct in 0.0..100.0f64,
        ratio in 1.0..10.0f64,
        seed in any::<u64>(),
    ) {
        let mut trace = Trace::new(jobs);
        let model = DeadlineModel::default()
            .with_high_urgency_pct(hu_pct)
            .with_ratio(ratio);
        model.assign(&mut Rng64::new(seed), trace.jobs_mut());
        for j in trace.jobs() {
            prop_assert!(j.deadline_factor() >= workload::params::MIN_DEADLINE_FACTOR - 1e-9);
            prop_assert!(j.validate().is_ok());
        }
    }

    #[test]
    fn inaccuracy_interpolation_is_monotone_in_alpha(
        runtime in 1.0..10_000.0f64,
        est_factor in 0.1..10.0f64,
        a in 0.0..100.0f64,
        b in 0.0..100.0f64,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mk = || {
            vec![Job {
                id: JobId(0),
                submit: SimTime::ZERO,
                runtime: SimDuration::from_secs(runtime),
                estimate: SimDuration::from_secs((runtime * est_factor).max(1.0)),
                procs: 1,
                deadline: SimDuration::from_secs(runtime * 2.0),
                urgency: Urgency::Low,
            }]
        };
        let mut at_lo = mk();
        estimates::apply_inaccuracy(&mut at_lo, lo);
        let mut at_hi = mk();
        estimates::apply_inaccuracy(&mut at_hi, hi);
        let err = |jobs: &[Job]| (jobs[0].estimate.as_secs() - runtime).abs();
        prop_assert!(
            err(&at_lo) <= err(&at_hi) + 1e-9,
            "error must grow with inaccuracy: {} vs {}", err(&at_lo), err(&at_hi)
        );
    }

    #[test]
    fn estimators_always_produce_positive_estimates(
        runtime in 0.5..100_000.0f64,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let rt = SimDuration::from_secs(runtime);
        let e1 = TraceLikeEstimator::default().sample(&mut rng, rt);
        prop_assert!(e1.as_secs() > 0.0);
        let e2 = TsafrirEstimator::default().sample(&mut rng, rt);
        prop_assert!(e2.as_secs() > 0.0);
        // The Tsafrir estimator never under-estimates.
        prop_assert!(e2.as_secs() >= runtime - 1e-9);
    }

    #[test]
    fn tail_returns_exactly_min_n_len_jobs(
        jobs in unique_jobs(50),
        n in 1usize..60,
    ) {
        let trace = Trace::new(jobs);
        let len = trace.len();
        let tail = trace.tail(n);
        prop_assert_eq!(tail.len(), len.min(n));
        if !tail.is_empty() {
            prop_assert_eq!(tail[0].submit, SimTime::ZERO);
        }
    }
}
