//! Hand-rolled samplers on top of [`sim::Rng64`].
//!
//! We implement the handful of distributions the workload model needs
//! instead of pulling in `rand_distr`, keeping the generated traces
//! bit-reproducible under our own PRNG (see `sim::rng`).

use sim::Rng64;

/// Standard-normal sample via the Box–Muller transform.
///
/// Uses both uniforms of the pair each call would need but returns one
/// value, keeping per-sample cost constant and the stream layout simple.
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    let u1 = rng.next_f64_open(); // (0,1] — safe for ln()
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut Rng64, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0);
    mean + sd * standard_normal(rng)
}

/// Normal sample truncated to `[lo, ∞)` by rejection, falling back to the
/// bound after 64 rejected draws (only reachable when `lo` is far in the
/// upper tail).
pub fn truncated_normal_above(rng: &mut Rng64, mean: f64, sd: f64, lo: f64) -> f64 {
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if x >= lo {
            return x;
        }
    }
    lo
}

/// Exponential sample with the given mean (inverse-CDF method).
pub fn exponential(rng: &mut Rng64, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    -mean * rng.next_f64_open().ln()
}

/// Log-normal sample parameterised by the *log-space* mean and standard
/// deviation: `exp(N(mu, sigma))`.
pub fn lognormal(rng: &mut Rng64, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Log-normal sample with a target *linear-space* mean and the given
/// log-space standard deviation. Solves `mean = exp(mu + sigma²/2)` for
/// `mu`.
pub fn lognormal_with_mean(rng: &mut Rng64, mean: f64, sigma: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let mu = mean.ln() - sigma * sigma / 2.0;
    lognormal(rng, mu, sigma)
}

/// Log-uniform sample over `[lo, hi]`: `exp(U(ln lo, ln hi))`. Models the
/// "every scale equally likely" shape of processor requests.
pub fn loguniform(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    debug_assert!(0.0 < lo && lo <= hi);
    (rng.uniform(lo.ln(), hi.ln())).exp()
}

/// Gamma sample with the given shape and scale (Marsaglia–Tsang squeeze
/// method; the `shape < 1` case uses the standard boosting identity).
pub fn gamma(rng: &mut Rng64, shape: f64, scale: f64) -> f64 {
    debug_assert!(shape > 0.0 && scale > 0.0);
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
        let g = gamma(rng, shape + 1.0, 1.0);
        let u = rng.next_f64_open();
        return g * u.powf(1.0 / shape) * scale;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = rng.next_f64_open();
        // Squeeze check, then the full acceptance test.
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3 * scale;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3 * scale;
        }
    }
}

/// Two-component hyper-gamma: with probability `p` draw from
/// `Gamma(shape1, scale1)`, otherwise from `Gamma(shape2, scale2)`.
/// Lublin & Feitelson model parallel-job runtimes this way (a short mode
/// plus a long heavy mode).
#[allow(clippy::too_many_arguments)]
pub fn hyper_gamma(
    rng: &mut Rng64,
    p: f64,
    shape1: f64,
    scale1: f64,
    shape2: f64,
    scale2: f64,
) -> f64 {
    if rng.chance(p) {
        gamma(rng, shape1, scale1)
    } else {
        gamma(rng, shape2, scale2)
    }
}

/// Rounds `x` down to the nearest power of two (`x ≥ 1`).
pub fn floor_power_of_two(x: f64) -> u64 {
    debug_assert!(x >= 1.0);
    1u64 << (x.log2().floor() as u32)
}

/// Rounds `x` to the *nearest* power of two in log space.
pub fn nearest_power_of_two(x: f64) -> u64 {
    debug_assert!(x >= 1.0);
    1u64 << (x.log2().round() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng64::new(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = Rng64::new(2);
        let m = sample_mean(100_000, || normal(&mut rng, 10.0, 3.0));
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut rng = Rng64::new(3);
        for _ in 0..10_000 {
            assert!(truncated_normal_above(&mut rng, 2.0, 1.0, 1.05) >= 1.05);
        }
    }

    #[test]
    fn truncated_normal_far_tail_falls_back_to_bound() {
        let mut rng = Rng64::new(4);
        // lo is 50 sd above the mean: rejection will exhaust and clamp.
        let x = truncated_normal_above(&mut rng, 0.0, 1.0, 50.0);
        assert_eq!(x, 50.0);
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = Rng64::new(5);
        let xs: Vec<f64> = (0..100_000).map(|_| exponential(&mut rng, 42.0)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 42.0).abs() < 0.7, "mean {m}");
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let mut rng = Rng64::new(6);
        let m = sample_mean(400_000, || lognormal_with_mean(&mut rng, 100.0, 1.0));
        assert!((m - 100.0).abs() < 2.5, "mean {m}");
    }

    #[test]
    fn loguniform_stays_in_range() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let x = loguniform(&mut rng, 2.0, 128.0);
            assert!((2.0..=128.0).contains(&x));
        }
    }

    #[test]
    fn gamma_moments_match_theory() {
        let mut rng = Rng64::new(10);
        // Gamma(k, θ): mean kθ, variance kθ².
        for (shape, scale) in [(2.0, 3.0), (0.5, 4.0), (9.0, 0.5)] {
            let n = 200_000;
            let xs: Vec<f64> = (0..n).map(|_| gamma(&mut rng, shape, scale)).collect();
            assert!(xs.iter().all(|&x| x > 0.0));
            let mean = xs.iter().sum::<f64>() / n as f64;
            let expected = shape * scale;
            assert!(
                (mean - expected).abs() < 0.05 * expected.max(1.0),
                "shape {shape} scale {scale}: mean {mean} vs {expected}"
            );
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let expected_var = shape * scale * scale;
            assert!(
                (var - expected_var).abs() < 0.12 * expected_var.max(1.0),
                "shape {shape}: var {var} vs {expected_var}"
            );
        }
    }

    #[test]
    fn hyper_gamma_mixes_components() {
        let mut rng = Rng64::new(11);
        // p=1 collapses to component 1; p=0 to component 2.
        let m1 = sample_mean(50_000, || hyper_gamma(&mut rng, 1.0, 2.0, 1.0, 9.0, 9.0));
        assert!((m1 - 2.0).abs() < 0.1, "mean {m1}");
        let m2 = sample_mean(50_000, || hyper_gamma(&mut rng, 0.0, 2.0, 1.0, 9.0, 9.0));
        assert!((m2 - 81.0).abs() < 2.5, "mean {m2}");
        // An even mixture lands in between.
        let m = sample_mean(50_000, || hyper_gamma(&mut rng, 0.5, 2.0, 1.0, 9.0, 9.0));
        assert!((m - 41.5).abs() < 2.0, "mean {m}");
    }

    #[test]
    fn power_of_two_rounding() {
        assert_eq!(floor_power_of_two(1.0), 1);
        assert_eq!(floor_power_of_two(9.7), 8);
        assert_eq!(floor_power_of_two(64.0), 64);
        assert_eq!(nearest_power_of_two(1.0), 1);
        assert_eq!(nearest_power_of_two(3.0), 4); // log2(3)≈1.58 rounds to 2
        assert_eq!(nearest_power_of_two(5.0), 4);
        assert_eq!(nearest_power_of_two(48.0), 64); // log2(48)≈5.58
    }
}
