//! The urgency-class deadline model of the paper (§4).
//!
//! Each job belongs to a **high-urgency** class (low `deadline/runtime`
//! factor) or a **low-urgency** class (high factor). The *deadline
//! high:low ratio* is the ratio of the two class means; factors are
//! normally distributed within each class and always truncated above 1 so
//! a deadline is always a "higher factored value based on the real runtime
//! of a job". Class membership is randomly interleaved across the arrival
//! sequence.

use crate::distributions::truncated_normal_above;
use crate::job::{Job, Urgency};
use crate::params;
use sim::{Rng64, SimDuration};

/// Configuration of the deadline assignment model.
#[derive(Clone, Copy, Debug)]
pub struct DeadlineModel {
    /// Fraction of jobs in the high-urgency class, in `[0, 1]`.
    pub high_urgency_fraction: f64,
    /// Ratio between the low-urgency mean factor and the high-urgency mean
    /// factor (the paper's *deadline high:low ratio*, ≥ 1).
    pub high_low_ratio: f64,
    /// Mean `deadline/runtime` factor of the **high-urgency** class (the
    /// "low" factor).
    pub mean_low_factor: f64,
    /// Coefficient of variation of the per-class normal distribution.
    pub factor_cv: f64,
    /// Truncation floor for the factor (strictly > 1).
    pub min_factor: f64,
}

impl Default for DeadlineModel {
    fn default() -> Self {
        DeadlineModel {
            high_urgency_fraction: params::DEFAULT_HIGH_URGENCY_FRACTION,
            high_low_ratio: params::DEFAULT_DEADLINE_HIGH_LOW_RATIO,
            mean_low_factor: params::MEAN_LOW_DEADLINE_FACTOR,
            factor_cv: params::DEADLINE_FACTOR_CV,
            min_factor: params::MIN_DEADLINE_FACTOR,
        }
    }
}

impl DeadlineModel {
    /// Returns the model with a different high-urgency percentage
    /// (`0..=100`).
    pub fn with_high_urgency_pct(mut self, pct: f64) -> Self {
        assert!((0.0..=100.0).contains(&pct), "percentage out of range");
        self.high_urgency_fraction = pct / 100.0;
        self
    }

    /// Returns the model with a different deadline high:low ratio.
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "high:low ratio must be >= 1, got {ratio}");
        self.high_low_ratio = ratio;
        self
    }

    /// Mean factor of the low-urgency class (the "high" factor).
    pub fn mean_high_factor(&self) -> f64 {
        self.mean_low_factor * self.high_low_ratio
    }

    /// Draws an urgency class.
    pub fn sample_urgency(&self, rng: &mut Rng64) -> Urgency {
        if rng.chance(self.high_urgency_fraction) {
            Urgency::High
        } else {
            Urgency::Low
        }
    }

    /// Draws a deadline factor for the given class (always ≥ `min_factor`).
    pub fn sample_factor(&self, rng: &mut Rng64, urgency: Urgency) -> f64 {
        let mean = match urgency {
            Urgency::High => self.mean_low_factor,
            Urgency::Low => self.mean_high_factor(),
        };
        truncated_normal_above(rng, mean, mean * self.factor_cv, self.min_factor)
    }

    /// Assigns an urgency class and a deadline to every job.
    ///
    /// Deadlines are factors of the **real** runtime (the trace value),
    /// exactly as in the paper: the estimate's error never leaks into the
    /// SLA itself.
    pub fn assign(&self, rng: &mut Rng64, jobs: &mut [Job]) {
        for j in jobs.iter_mut() {
            let urgency = self.sample_urgency(rng);
            let factor = self.sample_factor(rng, urgency);
            j.urgency = urgency;
            j.deadline = SimDuration::from_secs(j.runtime.as_secs() * factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use sim::SimTime;

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job {
                id: JobId(i as u64),
                submit: SimTime::from_secs(i as f64),
                runtime: SimDuration::from_secs(1000.0),
                estimate: SimDuration::from_secs(1000.0),
                procs: 1,
                deadline: SimDuration::from_secs(0.0),
                urgency: Urgency::Low,
            })
            .collect()
    }

    #[test]
    fn default_matches_paper_constants() {
        let m = DeadlineModel::default();
        assert_eq!(m.high_urgency_fraction, 0.2);
        assert_eq!(m.high_low_ratio, 4.0);
        assert_eq!(m.mean_high_factor(), 8.0);
    }

    #[test]
    fn builders_validate() {
        let m = DeadlineModel::default()
            .with_high_urgency_pct(80.0)
            .with_ratio(6.0);
        assert!((m.high_urgency_fraction - 0.8).abs() < 1e-12);
        assert_eq!(m.high_low_ratio, 6.0);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn pct_out_of_range_panics() {
        let _ = DeadlineModel::default().with_high_urgency_pct(101.0);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn ratio_below_one_panics() {
        let _ = DeadlineModel::default().with_ratio(0.5);
    }

    #[test]
    fn deadlines_always_exceed_runtime() {
        let mut js = jobs(5_000);
        let mut rng = Rng64::new(3);
        DeadlineModel::default().assign(&mut rng, &mut js);
        for j in &js {
            assert!(
                j.deadline_factor() >= params::MIN_DEADLINE_FACTOR,
                "factor {}",
                j.deadline_factor()
            );
        }
    }

    #[test]
    fn urgency_mix_matches_fraction() {
        let mut js = jobs(20_000);
        let mut rng = Rng64::new(4);
        DeadlineModel::default()
            .with_high_urgency_pct(30.0)
            .assign(&mut rng, &mut js);
        let high = js.iter().filter(|j| j.urgency == Urgency::High).count();
        let frac = high as f64 / js.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "high fraction {frac}");
    }

    #[test]
    fn class_means_respect_ratio() {
        let mut js = jobs(40_000);
        let mut rng = Rng64::new(5);
        let model = DeadlineModel::default()
            .with_high_urgency_pct(50.0)
            .with_ratio(4.0);
        model.assign(&mut rng, &mut js);
        let mean_of = |u: Urgency| {
            let fs: Vec<f64> = js
                .iter()
                .filter(|j| j.urgency == u)
                .map(|j| j.deadline_factor())
                .collect();
            fs.iter().sum::<f64>() / fs.len() as f64
        };
        let high_mean = mean_of(Urgency::High);
        let low_mean = mean_of(Urgency::Low);
        assert!(
            (high_mean - 2.0).abs() < 0.1,
            "high-urgency mean {high_mean}"
        );
        assert!((low_mean - 8.0).abs() < 0.2, "low-urgency mean {low_mean}");
        let ratio = low_mean / high_mean;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn extreme_fractions() {
        let mut rng = Rng64::new(6);
        let all_high = DeadlineModel::default().with_high_urgency_pct(100.0);
        let mut js = jobs(100);
        all_high.assign(&mut rng, &mut js);
        assert!(js.iter().all(|j| j.urgency == Urgency::High));
        let none_high = DeadlineModel::default().with_high_urgency_pct(0.0);
        none_high.assign(&mut rng, &mut js);
        assert!(js.iter().all(|j| j.urgency == Urgency::Low));
    }
}
