//! User runtime-estimate error models (§4 of the paper).
//!
//! The admission controls only ever see `Job::estimate`. The paper drives
//! its experiments with two estimate regimes and an interpolation between
//! them:
//!
//! * **accurate** — `estimate = runtime` (the idealised 0 % inaccuracy
//!   case);
//! * **trace** — the estimates recorded in the SDSC SP2 trace, which are
//!   "highly inaccurate and often over estimated" (the 100 % case);
//! * **x % inaccuracy** — linear interpolation between the two (Fig. 4).
//!
//! Because the genuine trace may not be on disk, [`TraceLikeEstimator`]
//! synthesises estimates with the error structure measured at SDSC:
//! a small fraction exact, a small fraction under-estimated (these are the
//! jobs that *overrun* and create observed deadline delays), and the bulk
//! over-estimated with an exponential excess snapped to "human" canonical
//! values (5 min, 1 h, 12 h, ...).

use crate::distributions::exponential;
use crate::job::Job;
use crate::params;
use sim::{Rng64, SimDuration};

/// Rewrites every job's estimate to exactly its runtime.
pub fn make_accurate(jobs: &mut [Job]) {
    for j in jobs {
        j.estimate = j.runtime;
    }
}

/// Linearly interpolates each estimate between accurate (0 %) and its
/// current (trace) value (100 %), per the paper's Figure 4 knob.
///
/// # Panics
/// Panics if `inaccuracy_pct` is outside `[0, 100]`.
pub fn apply_inaccuracy(jobs: &mut [Job], inaccuracy_pct: f64) {
    assert!(
        (0.0..=100.0).contains(&inaccuracy_pct),
        "inaccuracy {inaccuracy_pct} out of [0,100]"
    );
    let alpha = inaccuracy_pct / 100.0;
    for j in jobs {
        let accurate = j.runtime.as_secs();
        let trace = j.estimate.as_secs();
        let blended = accurate + alpha * (trace - accurate);
        // Estimates must stay positive even for extreme under-estimates.
        j.estimate = SimDuration::from_secs(blended.max(1.0));
    }
}

/// Synthesises trace-like (inaccurate, mostly over-estimated) estimates.
#[derive(Clone, Debug)]
pub struct TraceLikeEstimator {
    /// Fraction of exact estimates.
    pub exact_fraction: f64,
    /// Fraction of under-estimates.
    pub under_fraction: f64,
    /// Mean of the exponential over-estimation excess.
    pub over_excess_mean: f64,
    /// Cap on `estimate / runtime`.
    pub over_factor_cap: f64,
    /// Probability an over-estimate is snapped up to a canonical value.
    pub snap_probability: f64,
}

impl Default for TraceLikeEstimator {
    fn default() -> Self {
        TraceLikeEstimator {
            exact_fraction: params::EST_EXACT_FRACTION,
            under_fraction: params::EST_UNDER_FRACTION,
            over_excess_mean: params::EST_OVER_EXCESS_MEAN,
            over_factor_cap: params::EST_OVER_FACTOR_CAP,
            snap_probability: params::EST_SNAP_PROBABILITY,
        }
    }
}

impl TraceLikeEstimator {
    /// Draws an estimate for a job of the given actual runtime.
    pub fn sample(&self, rng: &mut Rng64, runtime: SimDuration) -> SimDuration {
        let rt = runtime.as_secs();
        let u = rng.next_f64();
        let est = if u < self.exact_fraction {
            rt
        } else if u < self.exact_fraction + self.under_fraction {
            // Under-estimate: the user believed the job shorter than it is.
            rt * rng.uniform(0.35, 0.95)
        } else {
            // Over-estimate: padded by an exponential excess, optionally
            // snapped up to the canonical value users actually type.
            let factor = (1.0 + exponential(rng, self.over_excess_mean)).min(self.over_factor_cap);
            let raw = rt * factor;
            if rng.chance(self.snap_probability) {
                snap_up_to_canonical(raw)
            } else {
                raw
            }
        };
        SimDuration::from_secs(est.max(1.0))
    }

    /// Assigns trace-like estimates to every job.
    pub fn apply(&self, rng: &mut Rng64, jobs: &mut [Job]) {
        for j in jobs {
            j.estimate = self.sample(rng, j.runtime);
        }
    }
}

/// Tsafrir-style *modal* estimate model ("Modeling User Runtime
/// Estimates", JSSPP'05): users do not pad a continuous amount — they pick
/// one of a handful of canonical values ("15 minutes", "1 hour", …), with
/// popularity decaying geometrically from the smallest value that covers
/// the job. The result is the staircase histogram real traces show.
#[derive(Clone, Debug)]
pub struct TsafrirEstimator {
    /// Fraction of users who give the exact runtime.
    pub exact_fraction: f64,
    /// Geometric decay of canonical-value popularity: the k-th canonical
    /// value ≥ the runtime is chosen with probability ∝ `decay^k`.
    pub popularity_decay: f64,
    /// Headroom factor applied when the runtime exceeds every canonical
    /// value.
    pub overflow_factor: f64,
}

impl Default for TsafrirEstimator {
    fn default() -> Self {
        TsafrirEstimator {
            exact_fraction: 0.1,
            popularity_decay: 0.5,
            overflow_factor: 1.1,
        }
    }
}

impl TsafrirEstimator {
    /// Draws a modal estimate for the given actual runtime.
    pub fn sample(&self, rng: &mut Rng64, runtime: SimDuration) -> SimDuration {
        let rt = runtime.as_secs();
        if rng.chance(self.exact_fraction) {
            return runtime;
        }
        // Canonical values that can hold the job.
        let candidates: Vec<f64> = params::CANONICAL_ESTIMATES_SECS
            .iter()
            .copied()
            .filter(|&c| c >= rt)
            .collect();
        if candidates.is_empty() {
            return SimDuration::from_secs(rt * self.overflow_factor);
        }
        // Geometric choice over the ladder of covering values: advance to
        // the next rung with probability `popularity_decay`, so rung k is
        // chosen with probability ∝ decay^k.
        let mut k = 0usize;
        while k + 1 < candidates.len() && rng.chance(self.popularity_decay) {
            k += 1;
        }
        SimDuration::from_secs(candidates[k])
    }

    /// Assigns modal estimates to every job.
    pub fn apply(&self, rng: &mut Rng64, jobs: &mut [Job]) {
        for j in jobs {
            j.estimate = self.sample(rng, j.runtime);
        }
    }
}

/// Snaps a raw estimate up to the smallest canonical value ≥ it; values
/// beyond the largest canonical stay as they are.
pub fn snap_up_to_canonical(secs: f64) -> f64 {
    for &c in &params::CANONICAL_ESTIMATES_SECS {
        if c >= secs {
            return c;
        }
    }
    secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Urgency};
    use sim::SimTime;

    fn job(runtime: f64) -> Job {
        Job {
            id: JobId(0),
            submit: SimTime::ZERO,
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime),
            procs: 1,
            deadline: SimDuration::from_secs(runtime * 2.0),
            urgency: Urgency::Low,
        }
    }

    #[test]
    fn snap_picks_next_canonical() {
        assert_eq!(snap_up_to_canonical(100.0), 300.0);
        assert_eq!(snap_up_to_canonical(300.0), 300.0);
        assert_eq!(snap_up_to_canonical(3601.0), 7200.0);
        // Beyond the table: unchanged.
        assert_eq!(snap_up_to_canonical(500_000.0), 500_000.0);
    }

    #[test]
    fn accurate_resets_estimates() {
        let mut jobs = vec![job(100.0)];
        jobs[0].estimate = SimDuration::from_secs(900.0);
        make_accurate(&mut jobs);
        assert_eq!(jobs[0].estimate, jobs[0].runtime);
    }

    #[test]
    fn inaccuracy_interpolates_linearly() {
        let mut jobs = vec![job(100.0)];
        jobs[0].estimate = SimDuration::from_secs(500.0);
        apply_inaccuracy(&mut jobs, 50.0);
        assert!((jobs[0].estimate.as_secs() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn inaccuracy_zero_is_accurate_and_hundred_is_identity() {
        let mut a = vec![job(100.0)];
        a[0].estimate = SimDuration::from_secs(500.0);
        let mut b = a.clone();
        apply_inaccuracy(&mut a, 0.0);
        assert_eq!(a[0].estimate.as_secs(), 100.0);
        apply_inaccuracy(&mut b, 100.0);
        assert_eq!(b[0].estimate.as_secs(), 500.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,100]")]
    fn inaccuracy_out_of_range_panics() {
        apply_inaccuracy(&mut [], 150.0);
    }

    #[test]
    fn trace_like_estimates_are_mostly_overestimated() {
        let est = TraceLikeEstimator::default();
        let mut rng = Rng64::new(77);
        let n = 20_000;
        let mut over = 0usize;
        let mut under = 0usize;
        let mut factor_sum = 0.0;
        for _ in 0..n {
            let e = est.sample(&mut rng, SimDuration::from_secs(3000.0));
            let f = e.as_secs() / 3000.0;
            factor_sum += f;
            if f > 1.0 + 1e-12 {
                over += 1;
            } else if f < 1.0 - 1e-12 {
                under += 1;
            }
        }
        let over_frac = over as f64 / n as f64;
        let under_frac = under as f64 / n as f64;
        assert!(over_frac > 0.6, "over fraction {over_frac}");
        assert!(
            (under_frac - params::EST_UNDER_FRACTION).abs() < 0.02,
            "under fraction {under_frac}"
        );
        // "often over estimated": the mean factor is well above 1.
        assert!(factor_sum / n as f64 > 2.0);
    }

    #[test]
    fn trace_like_estimates_respect_cap() {
        let est = TraceLikeEstimator {
            snap_probability: 0.0, // snapping can exceed the raw cap by design
            ..TraceLikeEstimator::default()
        };
        let mut rng = Rng64::new(8);
        for _ in 0..5_000 {
            let e = est.sample(&mut rng, SimDuration::from_secs(100.0));
            assert!(e.as_secs() <= 100.0 * params::EST_OVER_FACTOR_CAP + 1e-9);
        }
    }

    #[test]
    fn tsafrir_estimates_are_modal_and_covering() {
        let est = TsafrirEstimator::default();
        let mut rng = Rng64::new(21);
        let mut values = std::collections::BTreeMap::new();
        for _ in 0..10_000 {
            let e = est
                .sample(&mut rng, SimDuration::from_secs(2500.0))
                .as_secs();
            *values.entry(e as u64).or_insert(0usize) += 1;
        }
        // Every non-exact estimate is a canonical value ≥ the runtime.
        for &v in values.keys() {
            let v = v as f64;
            assert!(
                v == 2500.0 || params::CANONICAL_ESTIMATES_SECS.contains(&v),
                "non-canonical estimate {v}"
            );
            assert!(v >= 2500.0);
        }
        // The smallest covering value (1 h) is the most popular rung.
        let top = values.get(&3600).copied().unwrap_or(0);
        let next = values.get(&7200).copied().unwrap_or(0);
        assert!(
            top > next,
            "3600s rung ({top}) must dominate 7200s ({next})"
        );
        // Exact estimates appear at roughly the configured fraction.
        let exact = values.get(&2500).copied().unwrap_or(0);
        assert!((exact as f64 / 10_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn tsafrir_overflow_beyond_largest_canonical() {
        let est = TsafrirEstimator {
            exact_fraction: 0.0,
            ..Default::default()
        };
        let mut rng = Rng64::new(22);
        let rt = 200_000.0; // beyond the 36 h ladder
        let e = est.sample(&mut rng, SimDuration::from_secs(rt));
        assert!((e.as_secs() - rt * 1.1).abs() < 1e-9);
    }

    #[test]
    fn estimates_never_non_positive() {
        let est = TraceLikeEstimator::default();
        let mut rng = Rng64::new(9);
        for _ in 0..5_000 {
            let e = est.sample(&mut rng, SimDuration::from_secs(2.0));
            assert!(e.as_secs() >= 1.0);
        }
    }
}
