//! The job model of the paper (§3).

use sim::{SimDuration, SimTime};

/// Stable job identity (position in the trace).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Deadline urgency class (§4 of the paper: a high-urgency class with a low
/// `deadline/runtime` factor and a low-urgency class with a high factor).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Urgency {
    /// Short deadline relative to runtime.
    High,
    /// Long deadline relative to runtime.
    Low,
}

/// A rigid parallel job with an SLA deadline.
///
/// * `runtime` is the *actual* time to complete the job when allocated the
///   full share of a reference-rating processor (the paper's `runtime_i`);
///   it never includes waiting time.
/// * `estimate` is what the **user told the scheduler** — the admission
///   controls only ever see `estimate`, never `runtime`.
/// * `deadline` is relative to `submit`; the SLA is
///   `finish − submit ≤ deadline` (hard deadline, Eq. 3).
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Stable identity.
    pub id: JobId,
    /// Absolute submission instant.
    pub submit: SimTime,
    /// Actual runtime at full processor share on a reference-rating node.
    pub runtime: SimDuration,
    /// User-supplied runtime estimate (what admission control sees).
    pub estimate: SimDuration,
    /// Minimum number of processors required (`numproc_i`, rigid).
    pub procs: u32,
    /// Deadline relative to submission (`deadline_i`).
    pub deadline: SimDuration,
    /// Urgency class the deadline was drawn from.
    pub urgency: Urgency,
}

impl Job {
    /// The absolute instant by which the job must finish.
    #[inline]
    pub fn absolute_deadline(&self) -> SimTime {
        self.submit + self.deadline
    }

    /// The deadline/runtime factor this job was assigned (always > 1 in the
    /// paper's methodology).
    #[inline]
    pub fn deadline_factor(&self) -> f64 {
        self.deadline.as_secs() / self.runtime.as_secs()
    }

    /// Ratio `estimate / runtime`: 1 is perfectly accurate, > 1 is
    /// over-estimated, < 1 under-estimated.
    #[inline]
    pub fn estimate_factor(&self) -> f64 {
        self.estimate.as_secs() / self.runtime.as_secs()
    }

    /// `true` when the user estimate is at least the actual runtime.
    #[inline]
    pub fn is_overestimated(&self) -> bool {
        self.estimate >= self.runtime
    }

    /// Validates the invariants every generator/parser must uphold.
    pub fn validate(&self) -> Result<(), String> {
        if self.runtime.as_secs() <= 0.0 {
            return Err(format!("{}: non-positive runtime", self.id));
        }
        if self.estimate.as_secs() <= 0.0 {
            return Err(format!("{}: non-positive estimate", self.id));
        }
        if self.procs == 0 {
            return Err(format!("{}: zero processors", self.id));
        }
        if self.deadline.as_secs() <= 0.0 {
            return Err(format!("{}: non-positive deadline", self.id));
        }
        if self.submit < SimTime::ZERO {
            return Err(format!("{}: negative submit time", self.id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: JobId(1),
            submit: SimTime::from_secs(100.0),
            runtime: SimDuration::from_secs(50.0),
            estimate: SimDuration::from_secs(80.0),
            procs: 4,
            deadline: SimDuration::from_secs(150.0),
            urgency: Urgency::Low,
        }
    }

    #[test]
    fn absolute_deadline_is_submit_plus_relative() {
        assert_eq!(job().absolute_deadline(), SimTime::from_secs(250.0));
    }

    #[test]
    fn factors() {
        let j = job();
        assert!((j.deadline_factor() - 3.0).abs() < 1e-12);
        assert!((j.estimate_factor() - 1.6).abs() < 1e-12);
        assert!(j.is_overestimated());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut j = job();
        assert!(j.validate().is_ok());
        j.procs = 0;
        assert!(j.validate().is_err());
        let mut j = job();
        j.runtime = SimDuration::from_secs(0.0);
        assert!(j.validate().is_err());
        let mut j = job();
        j.deadline = SimDuration::from_secs(-1.0);
        assert!(j.validate().is_err());
        let mut j = job();
        j.estimate = SimDuration::from_secs(0.0);
        assert!(j.validate().is_err());
    }
}
