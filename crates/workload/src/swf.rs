//! Standard Workload Format (SWF) parsing and writing.
//!
//! The Parallel Workloads Archive distributes traces (including the SDSC
//! SP2 trace the paper uses) in SWF: one job per line, 18
//! whitespace-separated fields, `;`-prefixed header comments. This module
//! lets the experiments replay a genuine trace file; only the fields the
//! admission-control model needs are interpreted:
//!
//! | # | field              | use                                    |
//! |---|--------------------|----------------------------------------|
//! | 1 | job number         | [`crate::JobId`]                       |
//! | 2 | submit time (s)    | [`crate::Job::submit`]                 |
//! | 4 | run time (s)       | [`crate::Job::runtime`]                |
//! | 5 | allocated procs    | fallback for requested procs           |
//! | 8 | requested procs    | [`crate::Job::procs`]                  |
//! | 9 | requested time (s) | [`crate::Job::estimate`]               |
//! | 11| status             | jobs with status 0 (failed) are kept — |
//! |   |                    | they consumed resources — but jobs with |
//! |   |                    | non-positive runtime are skipped        |
//!
//! Deadlines are *not* part of SWF (the paper's methodology synthesises
//! them); parsed jobs get a placeholder deadline of 3 × runtime that the
//! [`crate::deadlines::DeadlineModel`] must overwrite.

use crate::job::{Job, JobId, Urgency};
use crate::trace::Trace;
use sim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A problem encountered while parsing SWF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Statistics of a parse: how many lines were used and why others were
/// skipped.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParseReport {
    /// Jobs successfully parsed.
    pub parsed: usize,
    /// Comment/blank lines.
    pub comments: usize,
    /// Data lines skipped because runtime or processor count was
    /// non-positive (cancelled jobs, missing data).
    pub skipped: usize,
}

/// Parses SWF text into a [`Trace`].
///
/// Hard format violations (non-numeric fields, too few fields) are errors;
/// jobs that merely carry "unknown" sentinels (`-1`) or never ran are
/// counted in [`ParseReport::skipped`].
///
/// ```
/// let line = "1 0 5 100 4 -1 -1 4 600 -1 1 3 5 -1 1 -1 -1 -1";
/// let (trace, report) = workload::swf::parse(line).unwrap();
/// assert_eq!(report.parsed, 1);
/// assert_eq!(trace[0].runtime.as_secs(), 100.0);
/// assert_eq!(trace[0].estimate.as_secs(), 600.0); // requested time
/// ```
pub fn parse(text: &str) -> Result<(Trace, ParseReport), SwfError> {
    let mut jobs = Vec::new();
    let mut report = ParseReport::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            report.comments += 1;
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 9 {
            return Err(SwfError {
                line: line_no,
                message: format!("expected ≥ 9 fields, found {}", fields.len()),
            });
        }
        let num = |i: usize| -> Result<f64, SwfError> {
            fields[i].parse::<f64>().map_err(|_| SwfError {
                line: line_no,
                message: format!("field {} is not numeric: {:?}", i + 1, fields[i]),
            })
        };
        let job_number = num(0)?;
        let submit = num(1)?;
        let runtime = num(3)?;
        let allocated = num(4)?;
        let requested_procs = num(7)?;
        let requested_time = num(8)?;

        let procs = if requested_procs > 0.0 {
            requested_procs
        } else {
            allocated
        };
        if runtime <= 0.0 || procs <= 0.0 || submit < 0.0 {
            report.skipped += 1;
            continue;
        }
        // Requested time -1 means "unknown": fall back to the runtime
        // (an exact estimate) so the job stays usable.
        let estimate = if requested_time > 0.0 {
            requested_time
        } else {
            runtime
        };
        jobs.push(Job {
            id: JobId(job_number as u64),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(estimate),
            procs: procs as u32,
            deadline: SimDuration::from_secs(runtime * 3.0),
            urgency: Urgency::Low,
        });
        report.parsed += 1;
    }
    Ok((Trace::new(jobs), report))
}

/// Reads and parses an SWF file from disk.
pub fn parse_file(path: &std::path::Path) -> Result<(Trace, ParseReport), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| e.to_string())
}

/// Serialises a trace back to SWF (fields the model does not carry are
/// written as `-1`, per the SWF convention for unknown values).
pub fn write(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; SWF written by the librisk workload crate");
    let _ = writeln!(out, "; fields: job submit wait runtime procs cpu mem reqprocs reqtime reqmem status uid gid exe queue partition prejob think");
    for j in trace.jobs() {
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1",
            j.id.0,
            j.submit.as_secs(),
            j.runtime.as_secs(),
            j.procs,
            j.procs,
            j.estimate.as_secs(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SDSC SP2-like sample
; MaxNodes: 128
1 0 5 100 4 -1 -1 4 600 -1 1 3 5 -1 1 -1 -1 -1
2 60 0 2000 8 -1 -1 8 3600 -1 1 3 5 -1 1 -1 -1 -1
3 120 2 -1 1 -1 -1 1 600 -1 0 3 5 -1 1 -1 -1 -1
4 180 2 50 0 -1 -1 -1 -1 -1 1 3 5 -1 1 -1 -1 -1
";

    #[test]
    fn parses_valid_lines_and_skips_sentinels() {
        let (trace, report) = parse(SAMPLE).unwrap();
        // Job 3 has runtime -1 (skipped); job 4 has no procs anywhere
        // (requested -1, allocated 0) → skipped.
        assert_eq!(report.parsed, 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.comments, 2);
        assert_eq!(trace.len(), 2);
        let j = &trace[0];
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.submit.as_secs(), 0.0);
        assert_eq!(j.runtime.as_secs(), 100.0);
        assert_eq!(j.estimate.as_secs(), 600.0);
        assert_eq!(j.procs, 4);
    }

    #[test]
    fn falls_back_to_allocated_procs() {
        let line = "7 10 0 100 16 -1 -1 -1 200 -1 1 -1 -1 -1 -1 -1 -1 -1";
        let (trace, _) = parse(line).unwrap();
        assert_eq!(trace[0].procs, 16);
    }

    #[test]
    fn unknown_estimate_falls_back_to_runtime() {
        let line = "7 10 0 100 4 -1 -1 4 -1 -1 1 -1 -1 -1 -1 -1 -1 -1";
        let (trace, _) = parse(line).unwrap();
        assert_eq!(trace[0].estimate.as_secs(), 100.0);
    }

    #[test]
    fn short_line_is_an_error() {
        let err = parse("1 2 3").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("fields"));
    }

    #[test]
    fn garbage_field_is_an_error_with_line_number() {
        let text = "1 0 0 100 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\nx y z q w e r t y";
        let err = parse(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip_write_parse() {
        let (trace, _) = parse(SAMPLE).unwrap();
        let text = write(&trace);
        let (again, report) = parse(&text).unwrap();
        assert_eq!(report.parsed, trace.len());
        assert_eq!(again.len(), trace.len());
        for (a, b) in trace.jobs().iter().zip(again.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.procs, b.procs);
        }
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let (trace, report) = parse("").unwrap();
        assert!(trace.is_empty());
        assert_eq!(report, ParseReport::default());
    }
}
