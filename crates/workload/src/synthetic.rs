//! Seeded synthetic SDSC-SP2-like trace generation.
//!
//! The paper drives its simulations with the last 3000 jobs of the SDSC SP2
//! trace. When the genuine trace file is unavailable we generate a trace
//! that reproduces the statistics the paper reports for that subset
//! (§4: mean inter-arrival 2131 s, mean runtime 2.7 h, mean 17 processors
//! on a 128-node machine) plus the documented structure of SP2 workloads:
//! log-normal runtimes, a serial-job mode with power-of-two parallel
//! requests, and Poisson-like arrivals.
//!
//! Determinism: the generator derives one named RNG stream per field, so
//! e.g. changing the runtime model does not perturb the arrival process of
//! the same seed.

use crate::distributions::{exponential, lognormal_with_mean, loguniform, nearest_power_of_two};
use crate::job::{Job, JobId, Urgency};
use crate::params;
use crate::trace::Trace;
use sim::{Rng64, SimDuration, SimTime};

/// Configuration of the synthetic SDSC-SP2-like generator.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSdscSp2 {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean inter-arrival gap, seconds (exponential arrivals).
    pub mean_inter_arrival: f64,
    /// Mean actual runtime, seconds (log-normal).
    pub mean_runtime: f64,
    /// Log-space standard deviation of the runtime distribution; 1.4 gives
    /// the heavy right tail of SP2-class workloads.
    pub runtime_sigma_log: f64,
    /// Maximum runtime, seconds (the SP2 queue limit of 18 h).
    pub max_runtime: f64,
    /// Minimum runtime, seconds.
    pub min_runtime: f64,
    /// Fraction of serial (1-processor) jobs.
    pub serial_fraction: f64,
    /// Probability a parallel request is snapped to a power of two.
    pub power_of_two_probability: f64,
    /// Largest processor request (the machine size).
    pub max_procs: u32,
}

impl Default for SyntheticSdscSp2 {
    fn default() -> Self {
        SyntheticSdscSp2 {
            jobs: params::TRACE_JOBS,
            mean_inter_arrival: params::MEAN_INTER_ARRIVAL_SECS,
            mean_runtime: params::MEAN_RUNTIME_SECS,
            runtime_sigma_log: 1.4,
            max_runtime: 64_800.0, // 18 h
            min_runtime: 10.0,
            serial_fraction: 0.3,
            power_of_two_probability: 0.7,
            max_procs: params::SDSC_SP2_NODES as u32,
        }
    }
}

impl SyntheticSdscSp2 {
    /// Generates the base trace for `seed`.
    ///
    /// The estimates of the returned trace are **trace-like** (inaccurate,
    /// mostly over-estimated) — apply
    /// [`crate::estimates::make_accurate`] or
    /// [`crate::estimates::apply_inaccuracy`] afterwards for the other
    /// regimes. Deadlines are set to a placeholder (3 × runtime); a
    /// [`crate::deadlines::DeadlineModel`] must be applied by the scenario.
    pub fn generate(&self, seed: u64) -> Trace {
        let root = Rng64::new(seed);
        let mut arrivals = root.split("arrivals");
        let mut runtimes = root.split("runtimes");
        let mut procs_rng = root.split("procs");
        let mut est_rng = root.split("estimates");

        let estimator = crate::estimates::TraceLikeEstimator::default();
        let mut jobs = Vec::with_capacity(self.jobs);
        let mut clock = 0.0f64;
        for i in 0..self.jobs {
            if i > 0 {
                clock += exponential(&mut arrivals, self.mean_inter_arrival);
            }
            let runtime = self.sample_runtime(&mut runtimes);
            let procs = self.sample_procs(&mut procs_rng);
            let runtime_d = SimDuration::from_secs(runtime);
            let estimate = estimator.sample(&mut est_rng, runtime_d);
            jobs.push(Job {
                id: JobId(i as u64),
                submit: SimTime::from_secs(clock),
                runtime: runtime_d,
                estimate,
                procs,
                deadline: SimDuration::from_secs(runtime * 3.0),
                urgency: Urgency::Low,
            });
        }
        Trace::new(jobs)
    }

    fn sample_runtime(&self, rng: &mut Rng64) -> f64 {
        // Truncating a log-normal at max_runtime pulls the mean below
        // target; compensate by re-targeting the pre-truncation mean
        // upward (factor fitted once for sigma≈1.4, 18 h cap).
        let target = self.mean_runtime * 1.35;
        loop {
            let x = lognormal_with_mean(rng, target, self.runtime_sigma_log);
            if x <= self.max_runtime {
                return x.max(self.min_runtime);
            }
            // Re-draw: hard truncation (SP2 queues kill longer jobs).
        }
    }

    fn sample_procs(&self, rng: &mut Rng64) -> u32 {
        if rng.chance(self.serial_fraction) {
            return 1;
        }
        let raw = loguniform(rng, 2.0, f64::from(self.max_procs));
        let p = if rng.chance(self.power_of_two_probability) {
            nearest_power_of_two(raw)
        } else {
            raw.round() as u64
        };
        (p as u32).clamp(1, self.max_procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = SyntheticSdscSp2 {
            jobs: 200,
            ..Default::default()
        };
        let a = g.generate(42);
        let b = g.generate(42);
        assert_eq!(a.jobs(), b.jobs());
        let c = g.generate(43);
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn statistics_match_paper_subset() {
        let t = SyntheticSdscSp2::default().generate(1);
        let s = t.stats(params::SDSC_SP2_NODES);
        assert_eq!(s.jobs, 3000);
        // Mean inter-arrival: 2131 s ± 10 %.
        assert!(
            (s.mean_inter_arrival - 2131.0).abs() < 213.0,
            "inter-arrival {}",
            s.mean_inter_arrival
        );
        // Mean runtime: 2.7 h = 9720 s ± 15 %.
        assert!(
            (s.mean_runtime - 9720.0).abs() < 0.15 * 9720.0,
            "runtime {}",
            s.mean_runtime
        );
        // Mean procs: 17 ± 5.
        assert!((s.mean_procs - 17.0).abs() < 5.0, "procs {}", s.mean_procs);
        // Estimates are often over-estimated.
        assert!(s.overestimated_fraction > 0.6);
        assert!(s.mean_estimate_factor > 1.5);
    }

    #[test]
    fn bounds_are_respected() {
        let g = SyntheticSdscSp2 {
            jobs: 2000,
            ..Default::default()
        };
        let t = g.generate(9);
        for j in t.jobs() {
            assert!(j.runtime.as_secs() >= g.min_runtime);
            assert!(j.runtime.as_secs() <= g.max_runtime);
            assert!(j.procs >= 1 && j.procs <= g.max_procs);
            assert!(j.validate().is_ok());
        }
        assert!(t.max_procs() <= g.max_procs);
    }

    #[test]
    fn arrivals_are_monotone() {
        let t = SyntheticSdscSp2 {
            jobs: 500,
            ..Default::default()
        }
        .generate(3);
        for w in t.jobs().windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        assert_eq!(t[0].submit, SimTime::ZERO);
    }

    #[test]
    fn serial_fraction_is_honoured() {
        let g = SyntheticSdscSp2 {
            jobs: 10_000,
            ..Default::default()
        };
        let t = g.generate(5);
        let serial = t.jobs().iter().filter(|j| j.procs == 1).count();
        let frac = serial as f64 / t.len() as f64;
        assert!(
            (frac - g.serial_fraction).abs() < 0.03,
            "serial fraction {frac}"
        );
    }

    #[test]
    fn many_parallel_requests_are_powers_of_two() {
        let t = SyntheticSdscSp2 {
            jobs: 5_000,
            ..Default::default()
        }
        .generate(7);
        let parallel: Vec<u32> = t
            .jobs()
            .iter()
            .filter(|j| j.procs > 1)
            .map(|j| j.procs)
            .collect();
        let pow2 = parallel.iter().filter(|p| p.is_power_of_two()).count();
        let frac = pow2 as f64 / parallel.len() as f64;
        assert!(frac > 0.6, "power-of-two fraction {frac}");
    }
}
