//! Trace analysis: the histograms and breakdowns workload papers report.
//!
//! Everything here is derived purely from a [`Trace`]; the experiment
//! harness uses it for the detailed `trace-stats` view, and downstream
//! users can validate their own SWF files against the paper's workload
//! assumptions before trusting simulation results.

use crate::job::{Job, Urgency};
use crate::trace::Trace;

/// A log-scaled histogram over a positive quantity.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// Inclusive lower edge of the first bucket.
    pub first_edge: f64,
    /// Multiplicative bucket width (e.g. 2 = doubling buckets).
    pub factor: f64,
    /// Counts per bucket; bucket `i` covers
    /// `[first_edge·factor^i, first_edge·factor^(i+1))`.
    pub counts: Vec<u64>,
    /// Samples below `first_edge`.
    pub underflow: u64,
}

impl LogHistogram {
    /// Builds a histogram with `buckets` doubling-style buckets.
    ///
    /// # Panics
    /// Panics if `first_edge ≤ 0`, `factor ≤ 1` or `buckets == 0`.
    pub fn new(first_edge: f64, factor: f64, buckets: usize) -> Self {
        assert!(first_edge > 0.0 && factor > 1.0 && buckets > 0);
        LogHistogram {
            first_edge,
            factor,
            counts: vec![0; buckets],
            underflow: 0,
        }
    }

    /// Adds one sample (values beyond the last bucket land in it).
    pub fn add(&mut self, x: f64) {
        if x < self.first_edge {
            self.underflow += 1;
            return;
        }
        let i = ((x / self.first_edge).ln() / self.factor.ln()).floor() as usize;
        let i = i.min(self.counts.len() - 1);
        self.counts[i] += 1;
    }

    /// Total samples recorded (including underflow).
    pub fn total(&self) -> u64 {
        self.underflow + self.counts.iter().sum::<u64>()
    }

    /// `(lower_edge, upper_edge, count)` per bucket.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = self.first_edge * self.factor.powi(i as i32);
                (lo, lo * self.factor, c)
            })
            .collect()
    }
}

/// Estimate-accuracy classification of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EstimateClass {
    /// `estimate == runtime` (to 1 ‰).
    Exact,
    /// `estimate < runtime`.
    Under,
    /// `runtime < estimate ≤ 2 × runtime`.
    MildOver,
    /// `estimate > 2 × runtime`.
    GrossOver,
}

/// Classifies a job's estimate.
pub fn classify_estimate(job: &Job) -> EstimateClass {
    let f = job.estimate_factor();
    if (f - 1.0).abs() <= 1e-3 {
        EstimateClass::Exact
    } else if f < 1.0 {
        EstimateClass::Under
    } else if f <= 2.0 {
        EstimateClass::MildOver
    } else {
        EstimateClass::GrossOver
    }
}

/// Full analysis of a trace.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Runtime histogram (doubling buckets from 1 min).
    pub runtime_hist: LogHistogram,
    /// Inter-arrival histogram (doubling buckets from 1 min).
    pub inter_arrival_hist: LogHistogram,
    /// Processor-count histogram (doubling buckets from 1).
    pub procs_hist: LogHistogram,
    /// Count per estimate class.
    pub estimate_classes: [(EstimateClass, u64); 4],
    /// Jobs per urgency class `(high, low)`.
    pub urgency_counts: (u64, u64),
    /// Fraction of parallel (procs > 1) requests that are powers of two.
    pub power_of_two_fraction: f64,
}

/// Analyses a trace.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let mut runtime_hist = LogHistogram::new(60.0, 2.0, 12);
    let mut inter_arrival_hist = LogHistogram::new(60.0, 2.0, 12);
    let mut procs_hist = LogHistogram::new(1.0, 2.0, 9);
    let mut classes = std::collections::HashMap::new();
    let mut high = 0u64;
    let mut low = 0u64;
    let mut parallel = 0u64;
    let mut pow2 = 0u64;
    let mut prev_submit: Option<f64> = None;
    for j in trace.jobs() {
        runtime_hist.add(j.runtime.as_secs());
        procs_hist.add(f64::from(j.procs));
        if let Some(prev) = prev_submit {
            inter_arrival_hist.add(j.submit.as_secs() - prev);
        }
        prev_submit = Some(j.submit.as_secs());
        *classes.entry(classify_estimate(j)).or_insert(0u64) += 1;
        match j.urgency {
            Urgency::High => high += 1,
            Urgency::Low => low += 1,
        }
        if j.procs > 1 {
            parallel += 1;
            if j.procs.is_power_of_two() {
                pow2 += 1;
            }
        }
    }
    let get = |c: EstimateClass| (c, classes.get(&c).copied().unwrap_or(0));
    TraceAnalysis {
        runtime_hist,
        inter_arrival_hist,
        procs_hist,
        estimate_classes: [
            get(EstimateClass::Exact),
            get(EstimateClass::Under),
            get(EstimateClass::MildOver),
            get(EstimateClass::GrossOver),
        ],
        urgency_counts: (high, low),
        power_of_two_fraction: if parallel == 0 {
            0.0
        } else {
            pow2 as f64 / parallel as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use sim::{SimDuration, SimTime};

    fn job(id: u64, submit: f64, runtime: f64, est: f64, procs: u32) -> Job {
        Job {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(est),
            procs,
            deadline: SimDuration::from_secs(runtime * 2.0),
            urgency: if id.is_multiple_of(2) {
                Urgency::High
            } else {
                Urgency::Low
            },
        }
    }

    #[test]
    fn log_histogram_buckets_cover_geometrically() {
        let mut h = LogHistogram::new(60.0, 2.0, 4);
        h.add(10.0); // underflow
        h.add(60.0); // bucket 0: [60,120)
        h.add(119.0); // bucket 0
        h.add(120.0); // bucket 1: [120,240)
        h.add(1e9); // clamps into the last bucket
        assert_eq!(h.underflow, 1);
        assert_eq!(h.counts, vec![2, 1, 0, 1]);
        assert_eq!(h.total(), 5);
        let b = h.buckets();
        assert_eq!(b[0], (60.0, 120.0, 2));
        assert_eq!(b[3].2, 1);
    }

    #[test]
    #[should_panic]
    fn log_histogram_rejects_bad_parameters() {
        LogHistogram::new(0.0, 2.0, 4);
    }

    #[test]
    fn estimate_classification() {
        assert_eq!(
            classify_estimate(&job(0, 0.0, 100.0, 100.0, 1)),
            EstimateClass::Exact
        );
        assert_eq!(
            classify_estimate(&job(0, 0.0, 100.0, 50.0, 1)),
            EstimateClass::Under
        );
        assert_eq!(
            classify_estimate(&job(0, 0.0, 100.0, 150.0, 1)),
            EstimateClass::MildOver
        );
        assert_eq!(
            classify_estimate(&job(0, 0.0, 100.0, 900.0, 1)),
            EstimateClass::GrossOver
        );
    }

    #[test]
    fn analyze_counts_everything_once() {
        let trace = Trace::new(vec![
            job(0, 0.0, 100.0, 100.0, 1),
            job(1, 100.0, 200.0, 100.0, 4),
            job(2, 300.0, 400.0, 3000.0, 6),
            job(3, 600.0, 800.0, 900.0, 8),
        ]);
        let a = analyze(&trace);
        assert_eq!(a.runtime_hist.total(), 4);
        assert_eq!(a.inter_arrival_hist.total(), 3);
        assert_eq!(a.procs_hist.total(), 4);
        let classified: u64 = a.estimate_classes.iter().map(|(_, c)| c).sum();
        assert_eq!(classified, 4);
        assert_eq!(a.urgency_counts, (2, 2));
        // Parallel jobs: 4 (pow2), 6 (no), 8 (pow2) → 2/3.
        assert!((a.power_of_two_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_trace_has_documented_estimate_mix() {
        let trace = crate::synthetic::SyntheticSdscSp2::default().generate(1);
        let a = analyze(&trace);
        let count = |class: EstimateClass| {
            a.estimate_classes
                .iter()
                .find(|(c, _)| *c == class)
                .unwrap()
                .1 as f64
        };
        let n = trace.len() as f64;
        assert!((count(EstimateClass::Exact) / n - 0.10).abs() < 0.03);
        assert!((count(EstimateClass::Under) / n - 0.10).abs() < 0.03);
        assert!(count(EstimateClass::GrossOver) / n > 0.4);
    }
}
