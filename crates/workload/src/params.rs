//! Every constant of the paper's experimental methodology (§4), named.
//!
//! The provided OCR of the paper strips most numeric literals. Constants
//! marked `(reconstructed)` were recovered from the published version of
//! the paper and from the companion methodology it cites (Irwin et al.,
//! HPDC'04); they are ordinary configuration values, so any of them can be
//! overridden when building a scenario.

/// Number of computation nodes in the SDSC SP2 cluster. (reconstructed: the
/// IBM SP2 at San Diego Supercomputer Center has 128 batch nodes.)
pub const SDSC_SP2_NODES: usize = 128;

/// SPEC rating of every SDSC SP2 node (reconstructed; homogeneous).
pub const SDSC_SP2_SPEC_RATING: f64 = 168.0;

/// Size of the trace subset used by the paper: the last 3000 jobs,
/// representing about 2.5 months.
pub const TRACE_JOBS: usize = 3000;

/// Average inter-arrival time of the subset, seconds (35.52 minutes).
pub const MEAN_INTER_ARRIVAL_SECS: f64 = 2131.0;

/// Average actual runtime of the subset, seconds (2.7 hours).
pub const MEAN_RUNTIME_SECS: f64 = 9720.0;

/// Average number of processors requested per job.
pub const MEAN_PROCS: f64 = 17.0;

/// Fraction of jobs in the high-urgency class by default. (reconstructed:
/// 20 %, with the remaining 80 % low urgency.)
pub const DEFAULT_HIGH_URGENCY_FRACTION: f64 = 0.2;

/// Default deadline high:low ratio — the ratio between the mean
/// `deadline/runtime` factor of low-urgency jobs and that of high-urgency
/// jobs. (reconstructed: 4.)
pub const DEFAULT_DEADLINE_HIGH_LOW_RATIO: f64 = 4.0;

/// Mean of the *low* `deadline/runtime` factor, i.e. the mean factor of
/// **high-urgency** jobs. (reconstructed: 2.)
pub const MEAN_LOW_DEADLINE_FACTOR: f64 = 2.0;

/// The deadline factor distribution is normal within each class; we use a
/// coefficient of variation of 1/4 (σ = mean/4) and truncate below
/// [`MIN_DEADLINE_FACTOR`] so that "the deadline of a job is always
/// assigned a higher factored value based on the real runtime".
pub const DEADLINE_FACTOR_CV: f64 = 0.25;

/// Deadlines are always strictly longer than the real runtime.
pub const MIN_DEADLINE_FACTOR: f64 = 1.05;

/// Default arrival delay factor (1 = trace arrival process unchanged;
/// smaller values compress inter-arrival gaps, i.e. heavier load).
pub const DEFAULT_ARRIVAL_DELAY_FACTOR: f64 = 1.0;

/// Sweep of arrival delay factors for Figure 1 (reconstructed: 0.1..1.0;
/// the paper narrates crossovers at 0.3 and 0.5 inside this range).
pub const FIG1_ARRIVAL_DELAY_FACTORS: [f64; 10] =
    [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Sweep of deadline high:low ratios for Figure 2 (reconstructed: 1..10).
pub const FIG2_DEADLINE_RATIOS: [f64; 10] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];

/// Sweep of high-urgency job percentages for Figure 3 (reconstructed:
/// 0..100 %).
pub const FIG3_HIGH_URGENCY_PCTS: [f64; 6] = [0.0, 20.0, 40.0, 60.0, 80.0, 100.0];

/// Sweep of estimate-inaccuracy percentages for Figure 4: 0 % means
/// perfectly accurate estimates, 100 % means the (inaccurate) estimates
/// recorded in the trace.
pub const FIG4_INACCURACY_PCTS: [f64; 6] = [0.0, 20.0, 40.0, 60.0, 80.0, 100.0];

/// The two high-urgency mixes Figure 4 contrasts (reconstructed: 20 % and
/// 80 %).
pub const FIG4_HIGH_URGENCY_PCTS: [f64; 2] = [20.0, 80.0];

/// Trace-like estimate model: fraction of users whose estimate is exact.
pub const EST_EXACT_FRACTION: f64 = 0.10;

/// Trace-like estimate model: fraction of jobs whose runtime is
/// *under*-estimated. Kill-free clusters observe both directions of error
/// (Lee et al., "Are user runtime estimates inherently inaccurate?",
/// JSSPP'04 — measured at SDSC); under-estimates are what turn into
/// observed deadline delays.
pub const EST_UNDER_FRACTION: f64 = 0.10;

/// Trace-like estimate model: mean of the exponential over-estimation
/// excess (estimate = runtime × (1 + Exp(mean))).
pub const EST_OVER_EXCESS_MEAN: f64 = 3.5;

/// Trace-like estimate model: cap on the over-estimation factor.
pub const EST_OVER_FACTOR_CAP: f64 = 20.0;

/// Trace-like estimate model: probability an over-estimate is snapped up
/// to the next "human" canonical value (15 min, 1 h, ...), per the modal
/// estimates observed by Mu'alem & Feitelson and Tsafrir et al.
pub const EST_SNAP_PROBABILITY: f64 = 0.7;

/// Canonical runtime-estimate values users actually type (seconds).
pub const CANONICAL_ESTIMATES_SECS: [f64; 12] = [
    300.0,    // 5 min
    600.0,    // 10 min
    900.0,    // 15 min
    1800.0,   // 30 min
    3600.0,   // 1 h
    7200.0,   // 2 h
    14400.0,  // 4 h
    21600.0,  // 6 h
    28800.0,  // 8 h
    43200.0,  // 12 h
    64800.0,  // 18 h
    129600.0, // 36 h
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_estimates_sorted_ascending() {
        assert!(CANONICAL_ESTIMATES_SECS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fractions_are_probabilities() {
        let fractions = [
            DEFAULT_HIGH_URGENCY_FRACTION,
            EST_EXACT_FRACTION,
            EST_UNDER_FRACTION,
            EST_SNAP_PROBABILITY,
            EST_EXACT_FRACTION + EST_UNDER_FRACTION,
        ];
        for f in fractions {
            assert!((0.0..=1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn sweeps_cover_paper_narration() {
        // The paper narrates an EDF crossover at arrival delay factor 0.3
        // and a LibraRisk takeover beyond 0.5: both must be grid points.
        assert!(FIG1_ARRIVAL_DELAY_FACTORS.contains(&0.3));
        assert!(FIG1_ARRIVAL_DELAY_FACTORS.contains(&0.5));
        assert!(FIG2_DEADLINE_RATIOS.contains(&DEFAULT_DEADLINE_HIGH_LOW_RATIO));
        assert!(FIG3_HIGH_URGENCY_PCTS.contains(&20.0));
        assert!(FIG4_INACCURACY_PCTS.contains(&0.0) && FIG4_INACCURACY_PCTS.contains(&100.0));
    }

    #[test]
    fn deadline_floor_exceeds_runtime() {
        let floors = [
            MIN_DEADLINE_FACTOR - 1.0,
            MEAN_LOW_DEADLINE_FACTOR - MIN_DEADLINE_FACTOR,
        ];
        assert!(floors.iter().all(|&d| d > 0.0));
    }
}
