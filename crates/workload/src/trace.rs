//! Trace container: an arrival-ordered job list plus the transformations
//! the paper's methodology applies to it.

use crate::job::Job;
use sim::SimTime;

/// An arrival-ordered sequence of jobs.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    jobs: Vec<Job>,
}

/// Aggregate statistics of a trace (the §4 numbers of the paper).
#[derive(Clone, Copy, Debug)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean inter-arrival gap in seconds.
    pub mean_inter_arrival: f64,
    /// Mean actual runtime in seconds.
    pub mean_runtime: f64,
    /// Mean requested processors.
    pub mean_procs: f64,
    /// Mean `estimate / runtime` factor.
    pub mean_estimate_factor: f64,
    /// Fraction of jobs with `estimate ≥ runtime`.
    pub overestimated_fraction: f64,
    /// Total span from first submit to last submit, seconds.
    pub span: f64,
    /// Offered load against a cluster of `procs` processors: total
    /// `runtime × procs` work divided by `span × procs` capacity.
    pub offered_load: f64,
}

impl Trace {
    /// Builds a trace, sorting by submit time (stable, preserving relative
    /// order of simultaneous submissions).
    ///
    /// # Panics
    /// Panics if any job fails [`Job::validate`].
    pub fn new(mut jobs: Vec<Job>) -> Self {
        for j in &jobs {
            if let Err(e) = j.validate() {
                panic!("invalid job in trace: {e}");
            }
        }
        jobs.sort_by_key(|j| j.submit);
        Trace { jobs }
    }

    /// The jobs in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Mutable access for the model stages (deadlines, estimates).
    pub fn jobs_mut(&mut self) -> &mut [Job] {
        &mut self.jobs
    }

    /// Consumes the trace, returning the jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Keeps only the last `n` jobs (the paper uses the last 3000 jobs of
    /// the SDSC SP2 trace), re-basing submit times so the subset starts at
    /// zero.
    pub fn tail(mut self, n: usize) -> Self {
        if self.jobs.len() > n {
            self.jobs.drain(..self.jobs.len() - n);
        }
        self.rebase();
        self
    }

    /// Shifts all submit times so the first job arrives at `t = 0`.
    pub fn rebase(&mut self) {
        if let Some(first) = self.jobs.first().map(|j| j.submit) {
            for j in &mut self.jobs {
                j.submit = SimTime::ZERO + (j.submit - first);
            }
        }
    }

    /// Applies the paper's *arrival delay factor*: every inter-arrival gap
    /// from the trace is multiplied by `factor`, so `factor < 1` compresses
    /// arrivals (heavier load) and `factor > 1` stretches them.
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive.
    pub fn scale_arrivals(&mut self, factor: f64) {
        assert!(
            factor > 0.0,
            "arrival delay factor must be > 0, got {factor}"
        );
        if self.jobs.is_empty() {
            return;
        }
        let base = self.jobs[0].submit;
        let mut prev_original = base;
        let mut prev_scaled = base;
        for j in &mut self.jobs {
            let gap = j.submit - prev_original;
            prev_original = j.submit;
            prev_scaled += gap * factor;
            j.submit = prev_scaled;
        }
    }

    /// Computes the aggregate statistics against a cluster of
    /// `cluster_procs` processors.
    pub fn stats(&self, cluster_procs: usize) -> TraceStats {
        let n = self.jobs.len();
        if n == 0 {
            return TraceStats {
                jobs: 0,
                mean_inter_arrival: 0.0,
                mean_runtime: 0.0,
                mean_procs: 0.0,
                mean_estimate_factor: 0.0,
                overestimated_fraction: 0.0,
                span: 0.0,
                offered_load: 0.0,
            };
        }
        let span = (self.jobs[n - 1].submit - self.jobs[0].submit).as_secs();
        let mean_inter_arrival = if n > 1 { span / (n - 1) as f64 } else { 0.0 };
        let mean_runtime = self.jobs.iter().map(|j| j.runtime.as_secs()).sum::<f64>() / n as f64;
        let mean_procs = self.jobs.iter().map(|j| f64::from(j.procs)).sum::<f64>() / n as f64;
        let mean_estimate_factor =
            self.jobs.iter().map(|j| j.estimate_factor()).sum::<f64>() / n as f64;
        let overestimated_fraction =
            self.jobs.iter().filter(|j| j.is_overestimated()).count() as f64 / n as f64;
        let work: f64 = self
            .jobs
            .iter()
            .map(|j| j.runtime.as_secs() * f64::from(j.procs))
            .sum();
        let offered_load = if span > 0.0 && cluster_procs > 0 {
            work / (span * cluster_procs as f64)
        } else {
            0.0
        };
        TraceStats {
            jobs: n,
            mean_inter_arrival,
            mean_runtime,
            mean_procs,
            mean_estimate_factor,
            overestimated_fraction,
            span,
            offered_load,
        }
    }

    /// Total work (runtime × procs) in processor-seconds.
    pub fn total_work(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.runtime.as_secs() * f64::from(j.procs))
            .sum()
    }

    /// Largest processor request in the trace.
    pub fn max_procs(&self) -> u32 {
        self.jobs.iter().map(|j| j.procs).max().unwrap_or(0)
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = Job;
    fn index(&self, i: usize) -> &Job {
        &self.jobs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Urgency};
    use sim::SimDuration;

    fn job(id: u64, submit: f64, runtime: f64, procs: u32) -> Job {
        Job {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime * 2.0),
            procs,
            deadline: SimDuration::from_secs(runtime * 3.0),
            urgency: Urgency::Low,
        }
    }

    #[test]
    fn construction_sorts_by_submit() {
        let t = Trace::new(vec![job(1, 50.0, 10.0, 1), job(2, 10.0, 10.0, 1)]);
        assert_eq!(t[0].id, JobId(2));
        assert_eq!(t[1].id, JobId(1));
    }

    #[test]
    #[should_panic(expected = "invalid job")]
    fn construction_rejects_invalid_jobs() {
        let mut j = job(1, 0.0, 10.0, 1);
        j.procs = 0;
        let _ = Trace::new(vec![j]);
    }

    #[test]
    fn tail_keeps_last_n_and_rebases() {
        let t = Trace::new((0..10).map(|i| job(i, i as f64 * 100.0, 10.0, 1)).collect());
        let t = t.tail(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].id, JobId(7));
        assert_eq!(t[0].submit, SimTime::ZERO);
        assert_eq!(t[2].submit, SimTime::from_secs(200.0));
    }

    #[test]
    fn tail_larger_than_trace_is_identity_modulo_rebase() {
        let t = Trace::new(vec![job(1, 5.0, 10.0, 1)]).tail(100);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].submit, SimTime::ZERO);
    }

    #[test]
    fn scale_arrivals_halves_gaps() {
        let mut t = Trace::new(vec![
            job(0, 0.0, 10.0, 1),
            job(1, 100.0, 10.0, 1),
            job(2, 300.0, 10.0, 1),
        ]);
        t.scale_arrivals(0.5);
        let submits: Vec<f64> = t.jobs().iter().map(|j| j.submit.as_secs()).collect();
        assert_eq!(submits, vec![0.0, 50.0, 150.0]);
    }

    #[test]
    fn scale_arrivals_identity_at_one() {
        let mut t = Trace::new(vec![job(0, 0.0, 1.0, 1), job(1, 77.0, 1.0, 1)]);
        t.scale_arrivals(1.0);
        assert_eq!(t[1].submit.as_secs(), 77.0);
    }

    #[test]
    #[should_panic(expected = "> 0")]
    fn scale_arrivals_rejects_zero() {
        Trace::new(vec![]).scale_arrivals(0.0);
    }

    #[test]
    fn stats_match_hand_computation() {
        let t = Trace::new(vec![job(0, 0.0, 100.0, 2), job(1, 100.0, 300.0, 4)]);
        let s = t.stats(10);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.mean_inter_arrival, 100.0);
        assert_eq!(s.mean_runtime, 200.0);
        assert_eq!(s.mean_procs, 3.0);
        assert_eq!(s.mean_estimate_factor, 2.0);
        assert_eq!(s.overestimated_fraction, 1.0);
        assert_eq!(s.span, 100.0);
        // work = 100*2 + 300*4 = 1400; capacity = 100 * 10.
        assert!((s.offered_load - 1.4).abs() < 1e-12);
        assert_eq!(t.total_work(), 1400.0);
        assert_eq!(t.max_procs(), 4);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = Trace::new(vec![]).stats(128);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.offered_load, 0.0);
    }
}
