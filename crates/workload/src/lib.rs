//! # `workload` — jobs, traces, deadlines and runtime-estimate models
//!
//! This crate supplies everything the admission-control simulation consumes:
//!
//! * [`job::Job`] — a parallel job: submit time, actual runtime, user
//!   runtime *estimate*, processor requirement, relative deadline, urgency
//!   class.
//! * [`swf`] — a parser/writer for Feitelson's Standard Workload Format so
//!   the genuine SDSC SP2 trace can be replayed when available.
//! * [`synthetic`] — a seeded generator producing an SDSC-SP2-like trace
//!   matching the statistics the paper reports (mean inter-arrival 2131 s,
//!   mean runtime ≈ 2.7 h, mean 17 processors, heavy over-estimation).
//! * [`deadlines`] — the urgency-class deadline model of the paper
//!   (high/low urgency, deadline high:low ratio, normally distributed
//!   `deadline/runtime` factors, always > 1).
//! * [`estimates`] — user runtime-estimate error models plus the paper's
//!   inaccuracy interpolation (0 % = accurate, 100 % = trace estimates).
//! * [`params`] — every constant of the experimental methodology, named
//!   and documented (including which values were reconstructed from the
//!   published paper because the provided OCR stripped digits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod deadlines;
pub mod distributions;
pub mod estimates;
pub mod job;
pub mod lublin;
pub mod params;
pub mod swf;
pub mod synthetic;
pub mod trace;

pub use job::{Job, JobId, Urgency};
pub use trace::Trace;
