//! A Lublin–Feitelson-style workload generator.
//!
//! The synthetic SDSC-SP2-like generator in [`crate::synthetic`] matches
//! the *moments* the paper reports. This module adds the richer structure
//! of the canonical parallel-workload model of Lublin & Feitelson
//! ("The workload on parallel supercomputers: modeling the
//! characteristics of rigid jobs", JPDC 2003), which downstream users of
//! the library may prefer:
//!
//! * **daily-cycle arrivals** — a non-homogeneous Poisson process whose
//!   rate follows a day/night sinusoid (thinning method);
//! * **hyper-gamma runtimes** — a short mode plus a heavy long mode, with
//!   the mixing probability depending on the job's degree of parallelism;
//! * **two-stage parallelism** — a serial fraction plus a power-of-two
//!   biased log-uniform parallel part.
//!
//! Parameters are expressed operationally (target means) rather than as
//! the paper's raw regression coefficients, so the generator stays
//! calibratable against any trace.

use crate::distributions::{hyper_gamma, loguniform, nearest_power_of_two};
use crate::estimates::TraceLikeEstimator;
use crate::job::{Job, JobId, Urgency};
use crate::trace::Trace;
use sim::{Rng64, SimDuration, SimTime};

/// Configuration of the Lublin-style generator.
#[derive(Clone, Copy, Debug)]
pub struct LublinModel {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean inter-arrival time over a whole day, seconds.
    pub mean_inter_arrival: f64,
    /// Peak-to-trough ratio of the daily arrival-rate cycle (≥ 1;
    /// 1 = homogeneous Poisson).
    pub daily_peak_ratio: f64,
    /// Hour of peak arrival rate (0–24).
    pub peak_hour: f64,
    /// Probability a runtime comes from the short mode.
    pub short_mode_probability: f64,
    /// Gamma shape/scale of the short runtime mode, seconds.
    pub short_shape: f64,
    /// Scale of the short runtime mode.
    pub short_scale: f64,
    /// Gamma shape of the long runtime mode.
    pub long_shape: f64,
    /// Scale of the long runtime mode.
    pub long_scale: f64,
    /// Maximum runtime, seconds (queue limit).
    pub max_runtime: f64,
    /// Fraction of serial jobs.
    pub serial_fraction: f64,
    /// Probability a parallel request snaps to a power of two.
    pub power_of_two_probability: f64,
    /// Machine size (largest request).
    pub max_procs: u32,
}

impl Default for LublinModel {
    fn default() -> Self {
        LublinModel {
            jobs: crate::params::TRACE_JOBS,
            mean_inter_arrival: crate::params::MEAN_INTER_ARRIVAL_SECS,
            daily_peak_ratio: 3.0,
            peak_hour: 15.0, // mid-afternoon peak, as measured by Lublin
            short_mode_probability: 0.45,
            // Short mode: mean ~15 min (shape 2 × scale 450).
            short_shape: 2.0,
            short_scale: 450.0,
            // Long mode: mean ~4.6 h (shape 2.5 × scale 6600), heavy tail.
            long_shape: 2.5,
            long_scale: 6600.0,
            max_runtime: 64_800.0,
            serial_fraction: 0.3,
            power_of_two_probability: 0.7,
            max_procs: crate::params::SDSC_SP2_NODES as u32,
        }
    }
}

const DAY: f64 = 86_400.0;

impl LublinModel {
    /// Instantaneous arrival-rate multiplier at second-of-day `t` (mean 1
    /// over a day): a sinusoid with the configured peak ratio.
    pub fn daily_cycle(&self, t: f64) -> f64 {
        if self.daily_peak_ratio <= 1.0 {
            return 1.0;
        }
        // amplitude a such that (1+a)/(1-a) = peak ratio.
        let a = (self.daily_peak_ratio - 1.0) / (self.daily_peak_ratio + 1.0);
        let phase = (t / DAY - self.peak_hour / 24.0) * std::f64::consts::TAU;
        1.0 + a * phase.cos()
    }

    /// Generates the trace for `seed`. Estimates are trace-like (see
    /// [`crate::estimates::TraceLikeEstimator`]); deadlines are a
    /// placeholder for a [`crate::deadlines::DeadlineModel`].
    pub fn generate(&self, seed: u64) -> Trace {
        let root = Rng64::new(seed);
        let mut arrivals = root.split("lublin-arrivals");
        let mut runtimes = root.split("lublin-runtimes");
        let mut procs_rng = root.split("lublin-procs");
        let mut est_rng = root.split("lublin-estimates");
        let estimator = TraceLikeEstimator::default();

        // Thinning: candidate events at the peak rate, accepted with
        // probability cycle(t)/peak.
        let peak = self.daily_cycle(self.peak_hour / 24.0 * DAY);
        let candidate_mean = self.mean_inter_arrival / peak;

        let mut jobs = Vec::with_capacity(self.jobs);
        let mut clock = 0.0f64;
        for i in 0..self.jobs {
            if i > 0 {
                loop {
                    clock += crate::distributions::exponential(&mut arrivals, candidate_mean);
                    let accept = self.daily_cycle(clock % DAY) / peak;
                    if arrivals.chance(accept) {
                        break;
                    }
                }
            }
            let runtime = self.sample_runtime(&mut runtimes);
            let procs = self.sample_procs(&mut procs_rng);
            let runtime_d = SimDuration::from_secs(runtime);
            let estimate = estimator.sample(&mut est_rng, runtime_d);
            jobs.push(Job {
                id: JobId(i as u64),
                submit: SimTime::from_secs(clock),
                runtime: runtime_d,
                estimate,
                procs,
                deadline: SimDuration::from_secs(runtime * 3.0),
                urgency: Urgency::Low,
            });
        }
        Trace::new(jobs)
    }

    fn sample_runtime(&self, rng: &mut Rng64) -> f64 {
        loop {
            let x = hyper_gamma(
                rng,
                self.short_mode_probability,
                self.short_shape,
                self.short_scale,
                self.long_shape,
                self.long_scale,
            );
            if x <= self.max_runtime {
                return x.max(1.0);
            }
        }
    }

    fn sample_procs(&self, rng: &mut Rng64) -> u32 {
        if rng.chance(self.serial_fraction) {
            return 1;
        }
        let raw = loguniform(rng, 2.0, f64::from(self.max_procs));
        let p = if rng.chance(self.power_of_two_probability) {
            nearest_power_of_two(raw)
        } else {
            raw.round() as u64
        };
        (p as u32).clamp(1, self.max_procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let m = LublinModel {
            jobs: 200,
            ..Default::default()
        };
        assert_eq!(m.generate(5).jobs(), m.generate(5).jobs());
        assert_ne!(m.generate(5).jobs(), m.generate(6).jobs());
    }

    #[test]
    fn daily_cycle_has_configured_peak_ratio() {
        let m = LublinModel::default();
        let samples: Vec<f64> = (0..24 * 60)
            .map(|min| m.daily_cycle(min as f64 * 60.0))
            .collect();
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            ((max / min) - m.daily_peak_ratio).abs() < 0.05,
            "ratio {}",
            max / min
        );
        // Mean multiplier over the day is ~1 (rate conservation).
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        // Peak sits at the configured hour.
        let peak_min = samples
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((peak_min as f64 / 60.0 - m.peak_hour).abs() < 0.5);
    }

    #[test]
    fn flat_cycle_when_ratio_is_one() {
        let m = LublinModel {
            daily_peak_ratio: 1.0,
            ..Default::default()
        };
        assert_eq!(m.daily_cycle(0.0), 1.0);
        assert_eq!(m.daily_cycle(12.0 * 3600.0), 1.0);
    }

    #[test]
    fn arrivals_concentrate_around_the_peak() {
        let m = LublinModel {
            jobs: 8000,
            mean_inter_arrival: 200.0, // many jobs per day
            ..Default::default()
        };
        let t = m.generate(3);
        // Count arrivals in the 6 h window around the peak vs the 6 h
        // window around the trough.
        let in_window = |center_h: f64| {
            t.jobs()
                .iter()
                .filter(|j| {
                    let h = (j.submit.as_secs() % DAY) / 3600.0;
                    let d = (h - center_h).abs().min(24.0 - (h - center_h).abs());
                    d <= 3.0
                })
                .count()
        };
        let peak = in_window(m.peak_hour);
        let trough = in_window((m.peak_hour + 12.0) % 24.0);
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak window {peak} vs trough window {trough}"
        );
    }

    #[test]
    fn runtime_and_procs_bounds_hold() {
        let m = LublinModel {
            jobs: 3000,
            ..Default::default()
        };
        let t = m.generate(9);
        for j in t.jobs() {
            assert!(j.runtime.as_secs() >= 1.0 && j.runtime.as_secs() <= m.max_runtime);
            assert!(j.procs >= 1 && j.procs <= m.max_procs);
            assert!(j.validate().is_ok());
        }
        // Mean inter-arrival lands near the configured value.
        let stats = t.stats(128);
        assert!(
            (stats.mean_inter_arrival - m.mean_inter_arrival).abs() < 0.15 * m.mean_inter_arrival,
            "inter-arrival {}",
            stats.mean_inter_arrival
        );
    }

    #[test]
    fn runtime_mixture_is_bimodal_ish() {
        let m = LublinModel {
            jobs: 6000,
            ..Default::default()
        };
        let t = m.generate(4);
        let short = t
            .jobs()
            .iter()
            .filter(|j| j.runtime.as_secs() < 3600.0)
            .count();
        let long = t
            .jobs()
            .iter()
            .filter(|j| j.runtime.as_secs() > 7200.0)
            .count();
        // Both modes are well represented.
        assert!(short > t.len() / 5, "short {short}");
        assert!(long > t.len() / 5, "long {long}");
    }
}
