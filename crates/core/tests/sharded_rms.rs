//! Differential suite for the shard router.
//!
//! Two oracles pin [`ShardedRms`] to the unsharded facade:
//!
//! 1. **1-shard bitwise identity.** A router over a single shard must
//!    reproduce a plain [`ClusterRms`] run event-for-event — same seqs,
//!    same outcome instants to the bit — both on the full policy
//!    catalogue (the golden-fixture scenario) and on the bench workload,
//!    where LibraRisk's fulfilled count is pinned at the committed
//!    golden value (1563, see `BENCH_admission.json`).
//!
//! 2. **Union-of-independent-runs.** With [`RouteBy::JobHash`], a job's
//!    placement depends only on its id, so an N-shard run must be
//!    structurally equal to N *independent* single-`ClusterRms` runs over
//!    the hash partition of the workload — per-job outcomes, churn
//!    aggregates, everything. The proptest drives both arms with
//!    interleaved submit/advance under per-shard churn plans (fail +
//!    restore events firing mid-run) for shards ∈ {2, 4, 8}.
//!
//! On top of the routing oracles, the aggregate merge laws are pinned:
//! [`OnlineReport::merge`] and `ChurnStats::merge` must be associative
//! and commutative (counts exactly; Welford float moments to tight
//! relative tolerance — their merge is not bitwise associative).

use cluster::Cluster;
use librisk::prelude::*;
use librisk::report::JobRecord;
use librisk::{job_hash_shard, PolicyKind};
use proptest::prelude::*;
use sim::{Rng64, SimDuration, SimTime};
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;

/// The golden-fixture scenario: 16 nodes, SDSC-SP2-like jobs with the
/// paper's deadline model (mirrors `differential_rms.rs`).
fn synthetic_trace(jobs: usize, seed: u64) -> Trace {
    let mut trace = SyntheticSdscSp2 {
        jobs,
        ..Default::default()
    }
    .generate(seed);
    DeadlineModel::default().assign(&mut Rng64::new(seed ^ 0x9e37), trace.jobs_mut());
    trace
}

/// The bench workload behind the committed `unified_driver` numbers:
/// 2000 SDSC-SP2-like jobs (trace seed 11, deadline seed 12) on the full
/// 128-node machine.
fn bench_trace() -> Trace {
    let mut trace = SyntheticSdscSp2 {
        jobs: 2000,
        ..Default::default()
    }
    .generate(11);
    DeadlineModel::default().assign(&mut Rng64::new(12), trace.jobs_mut());
    trace
}

/// Fingerprint of one outcome with bit-exact instants.
fn key(outcome: &Outcome) -> (u8, u64, u64) {
    match *outcome {
        Outcome::Rejected { at, .. } => (0, at.as_secs().to_bits(), 0),
        Outcome::Completed { started, finish } => {
            (1, started.as_secs().to_bits(), finish.as_secs().to_bits())
        }
        Outcome::Killed { at, .. } => (2, at.as_secs().to_bits(), 0),
    }
}

/// Drives a trace through a plain facade, advancing to each arrival.
fn run_plain(mut rms: ClusterRms<'_>, trace: &Trace) -> Vec<(u64, JobRecord)> {
    let mut out = Vec::new();
    for job in trace.jobs() {
        out.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
        rms.submit(job.clone(), job.submit);
    }
    out.extend(rms.drain().map(|e| (e.seq, e.record)));
    out
}

/// The same drive through a router.
fn run_sharded(rms: &mut ShardedRms<'_>, trace: &Trace) -> Vec<(u64, JobRecord)> {
    let mut out = Vec::new();
    for job in trace.jobs() {
        out.extend(
            rms.advance(job.submit)
                .expect("no shard panics in the oracle drive")
                .into_iter()
                .map(|e| (e.seq, e.record)),
        );
        rms.submit(job.clone(), job.submit);
    }
    out.extend(
        rms.drain()
            .expect("no shard panics in the oracle drive")
            .into_iter()
            .map(|e| (e.seq, e.record)),
    );
    out
}

/// A 1-shard router is the plain facade, bitwise, for every policy in
/// the catalogue on the golden-fixture scenario.
#[test]
fn one_shard_router_is_bitwise_identical_for_every_policy() {
    for seed in [7u64, 4242] {
        let trace = synthetic_trace(180, seed);
        let cluster = Cluster::homogeneous(16, 168.0);
        for kind in PolicyKind::ALL {
            let plain = run_plain(kind.rms(&cluster), &trace);
            let mut router = ShardedRms::new(vec![kind.rms(&cluster)], RouteBy::JobHash).unwrap();
            let sharded = run_sharded(&mut router, &trace);
            assert_eq!(
                plain.len(),
                sharded.len(),
                "{kind:?} seed {seed}: event counts"
            );
            for ((ps, pr), (ss, sr)) in plain.iter().zip(&sharded) {
                assert_eq!(ps, ss, "{kind:?} seed {seed}: seq diverged");
                assert_eq!(pr.job, sr.job, "{kind:?} seed {seed} seq {ps}: job");
                assert_eq!(
                    key(&pr.outcome),
                    key(&sr.outcome),
                    "{kind:?} seed {seed} seq {ps}: outcome bits diverged"
                );
            }
        }
    }
}

/// The bench-workload golden pin: LibraRisk through a 1-shard router on
/// the full 128-node machine fulfils exactly the committed golden count
/// and matches the plain facade event-for-event.
#[test]
fn one_shard_router_reproduces_bench_golden_fulfilled() {
    let trace = bench_trace();
    let cluster = Cluster::sdsc_sp2();

    let plain = run_plain(PolicyKind::LibraRisk.rms(&cluster), &trace);
    let mut router =
        ShardedRms::new(vec![PolicyKind::LibraRisk.rms(&cluster)], RouteBy::JobHash).unwrap();
    let sharded = run_sharded(&mut router, &trace);

    assert_eq!(plain.len(), sharded.len());
    for ((ps, pr), (ss, sr)) in plain.iter().zip(&sharded) {
        assert_eq!(ps, ss);
        assert_eq!(pr.job, sr.job);
        assert_eq!(key(&pr.outcome), key(&sr.outcome), "seq {ps}");
    }

    let fulfilled =
        |records: &[(u64, JobRecord)]| records.iter().filter(|(_, r)| r.fulfilled()).count() as u64;
    assert_eq!(
        fulfilled(&sharded),
        1563,
        "golden fulfilled count (BENCH_admission.json unified_driver)"
    );
    assert_eq!(fulfilled(&plain), 1563);
    assert_eq!(router.submitted(), trace.len() as u64);
    assert_eq!(router.in_flight(), 0);
}

/// A per-shard churn plan: fail + restore events across the span of the
/// trace, distinct per shard.
fn shard_churn_plan(trace: &Trace, nodes: usize, seed: u64) -> FaultPlan {
    let span = trace
        .jobs()
        .last()
        .map(|j| j.submit.as_secs())
        .unwrap_or(0.0)
        + 5_000.0;
    FaultPlan::exponential(
        nodes,
        span / 4.0,
        span / 16.0,
        SimTime::from_secs(span),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The union oracle: an N-shard JobHash run with per-shard churn
    // plans and interleaved advances equals N independent single-shard
    // runs over the hash partition — per-job outcome bits, per-shard
    // churn, merged churn, and the global-seq mapping all agree.
    #[test]
    fn hash_placement_equals_union_of_independent_runs(
        seed in 0u64..200,
        fracs in proptest::collection::vec(0.0..1.0f64, 1..4),
        shards in prop_oneof![Just(2usize), Just(4), Just(8)],
        kind_idx in 0usize..3,
    ) {
        let kind = [PolicyKind::LibraRisk, PolicyKind::EdfBackfill, PolicyKind::Qops][kind_idx];
        let trace = synthetic_trace(48, seed);
        let sub_cluster = Cluster::homogeneous(4, 168.0);
        let plans: Vec<FaultPlan> = (0..shards)
            .map(|s| shard_churn_plan(&trace, 4, 0xC0FFEE ^ seed ^ (s as u64) << 8))
            .collect();

        // Arm 1: the router.
        let mut router = ShardedRms::new(
            (0..shards)
                .map(|s| {
                    kind.rms(&sub_cluster)
                        .with_faults(plans[s].clone(), RecoveryPolicy::Requeue)
                })
                .collect(),
            RouteBy::JobHash,
        )
        .unwrap();
        let mut merged: Vec<(u64, JobRecord)> = Vec::new();
        let mut prev = SimTime::ZERO;
        let collect = |events: Vec<JobEvent>, out: &mut Vec<(u64, JobRecord)>| {
            out.extend(events.into_iter().map(|e| (e.seq, e.record)));
        };
        for (i, job) in trace.jobs().iter().enumerate() {
            let gap = job.submit - prev;
            if gap > SimDuration::ZERO {
                let frac = fracs[i % fracs.len()].clamp(0.0, 0.999);
                let mid = prev + SimDuration::from_secs(gap.as_secs() * frac);
                collect(router.advance(mid).unwrap(), &mut merged);
            }
            collect(router.advance(job.submit).unwrap(), &mut merged);
            let (placed, _) = router.submit_routed(job.clone(), job.submit);
            prop_assert_eq!(placed, job_hash_shard(job.id, shards), "hash placement");
            prev = job.submit;
        }
        collect(router.drain().unwrap(), &mut merged);
        prop_assert_eq!(merged.len(), trace.len(), "every job resolves once");
        let stamps: Vec<SimTime> = merged
            .iter()
            .map(|(_, r)| r.outcome.resolved_at())
            .collect();
        prop_assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "merged stream is time-ordered"
        );
        let router_churn = router.churn();

        // Arm 2: N independent plain facades over the hash partition,
        // driven with the *same* advance schedule.
        let mut oracle: Vec<Option<(u8, u64, u64)>> = vec![None; trace.len()];
        let mut oracle_churn = ChurnStats::default();
        for (s, plan) in plans.iter().enumerate().take(shards) {
            let mut rms = kind
                .rms(&sub_cluster)
                .with_faults(plan.clone(), RecoveryPolicy::Requeue);
            // Shard-local seq → position in the full trace.
            let mut global: Vec<usize> = Vec::new();
            let mut prev = SimTime::ZERO;
            let take = |events: Vec<(u64, JobRecord)>,
                            global: &[usize],
                            oracle: &mut Vec<Option<(u8, u64, u64)>>| {
                for (seq, record) in events {
                    oracle[global[seq as usize]] = Some(key(&record.outcome));
                }
            };
            for (i, job) in trace.jobs().iter().enumerate() {
                let gap = job.submit - prev;
                if gap > SimDuration::ZERO {
                    let frac = fracs[i % fracs.len()].clamp(0.0, 0.999);
                    let mid = prev + SimDuration::from_secs(gap.as_secs() * frac);
                    let evs: Vec<_> = rms.advance(mid).map(|e| (e.seq, e.record)).collect();
                    take(evs, &global, &mut oracle);
                }
                let evs: Vec<_> = rms.advance(job.submit).map(|e| (e.seq, e.record)).collect();
                take(evs, &global, &mut oracle);
                if job_hash_shard(job.id, shards) == s {
                    global.push(i);
                    rms.submit(job.clone(), job.submit);
                }
                prev = job.submit;
            }
            let evs: Vec<_> = rms.drain().map(|e| (e.seq, e.record)).collect();
            take(evs, &global, &mut oracle);
            oracle_churn.merge(rms.churn());
        }

        for (seq, record) in &merged {
            prop_assert_eq!(
                Some(key(&record.outcome)),
                oracle[*seq as usize],
                "{:?} shards {} seq {}: sharded run diverged from independent-run union",
                kind, shards, seq
            );
        }
        prop_assert_eq!(
            router_churn, oracle_churn,
            "merged churn equals the union of per-shard churn"
        );
    }
}

// ---------------------------------------------------------------------
// Merge laws for the shard-mergeable aggregates.
// ---------------------------------------------------------------------

/// Strategy for one synthetic job record covering all outcome kinds,
/// both urgencies and every rejection reason.
fn arb_record() -> impl Strategy<Value = JobRecord> {
    (
        (0u64..5_000, 0.0..1e4f64, 1.0..500.0f64, 1u32..32),
        (
            1.0..2e3f64,
            any::<bool>(),
            0usize..3,
            0.0..1e3f64,
            0usize..RejectReason::ALL.len(),
        ),
    )
        .prop_map(
            |((id, submit, runtime, procs), (deadline, high, kind, skew, reason))| {
                let job = Job {
                    id: JobId(id),
                    submit: SimTime::from_secs(submit),
                    runtime: SimDuration::from_secs(runtime),
                    estimate: SimDuration::from_secs(runtime * 1.5),
                    procs,
                    deadline: SimDuration::from_secs(deadline),
                    urgency: if high { Urgency::High } else { Urgency::Low },
                };
                let at = SimTime::from_secs(submit + skew);
                let outcome = match kind {
                    0 => Outcome::Rejected {
                        at,
                        reason: RejectReason::ALL[reason],
                    },
                    // `skew` decides whether the deadline is made or
                    // missed, so both fulfilled and delayed jobs appear.
                    1 => Outcome::Completed {
                        started: at,
                        finish: at + SimDuration::from_secs(runtime),
                    },
                    _ => Outcome::Killed {
                        at,
                        node: cluster::NodeId(0),
                    },
                };
                JobRecord { job, outcome }
            },
        )
}

/// Folds records into an [`OnlineReport`] shard summary.
fn report_of(records: &[JobRecord], utilization: f64) -> OnlineReport {
    let mut sink = OnlineReport::new();
    for (i, r) in records.iter().enumerate() {
        sink.record(i as u64, r.clone());
    }
    sink.set_utilization(utilization);
    sink
}

/// Exact count-level fingerprint of a summary.
fn counts(r: &OnlineReport) -> Vec<u64> {
    let mut out = vec![
        r.submitted(),
        r.accepted(),
        r.rejected(),
        r.fulfilled(),
        r.delayed(),
        r.killed(),
    ];
    out.extend(r.rejections_by_reason());
    out
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Float-stat fingerprint, compared to tight relative tolerance (Welford
/// merges are order-sensitive in the last ulps, not in any digit that
/// matters).
fn floats(r: &OnlineReport) -> [f64; 5] {
    [
        r.utilization(),
        r.fulfilled_pct(),
        r.avg_slowdown(),
        r.avg_delay(),
        r.avg_response_time(),
    ]
}

fn arb_churn() -> impl Strategy<Value = ChurnStats> {
    (
        0u64..100,
        0u64..100,
        0u64..50,
        0u64..50,
        0u64..20,
        0u64..30,
        0u64..30,
    )
        .prop_map(|(nf, nr, kills, requeues, rejects, hits, misses)| {
            let mut c = ChurnStats {
                node_failures: nf,
                node_restores: nr,
                kills,
                requeues,
                requeue_rejects: rejects,
                ..Default::default()
            };
            for _ in 0..hits {
                c.requeued_fulfilled.observe(true);
            }
            for _ in 0..misses {
                c.requeued_fulfilled.observe(false);
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // OnlineReport::merge is associative and commutative: counts match
    // exactly, float moments to 1e-9 relative.
    #[test]
    fn online_report_merge_is_associative_and_commutative(
        ra in proptest::collection::vec(arb_record(), 0..40),
        rb in proptest::collection::vec(arb_record(), 0..40),
        rc in proptest::collection::vec(arb_record(), 0..40),
        ua in 0.0..1.0f64,
        ub in 0.0..1.0f64,
        uc in 0.0..1.0f64,
    ) {
        let (a, b, c) = (report_of(&ra, ua), report_of(&rb, ub), report_of(&rc, uc));

        // ((a ⊕ b) ⊕ c) vs (a ⊕ (b ⊕ c)).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(counts(&left), counts(&right), "associativity: counts");
        for (x, y) in floats(&left).iter().zip(floats(&right)) {
            prop_assert!(close(*x, y), "associativity: {} vs {}", x, y);
        }

        // (a ⊕ b) vs (b ⊕ a).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(counts(&ab), counts(&ba), "commutativity: counts");
        for (x, y) in floats(&ab).iter().zip(floats(&ba)) {
            prop_assert!(close(*x, y), "commutativity: {} vs {}", x, y);
        }

        // The merged whole equals one sink fed everything (counts).
        let mut all = Vec::new();
        all.extend_from_slice(&ra);
        all.extend_from_slice(&rb);
        all.extend_from_slice(&rc);
        let whole = report_of(&all, 0.0);
        prop_assert_eq!(counts(&left), counts(&whole), "merge equals one big sink");
    }

    // ChurnStats::merge is exactly associative and commutative — every
    // field is an integer tally.
    #[test]
    fn churn_stats_merge_is_associative_and_commutative(
        a in arb_churn(),
        b in arb_churn(),
        c in arb_churn(),
    ) {
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right, "associativity");

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba, "commutativity");

        let mut with_empty = a;
        with_empty.merge(&ChurnStats::default());
        prop_assert_eq!(with_empty, a, "default is the identity");
    }
}
