//! Crash-safety suite for `librisk::ckpt`.
//!
//! Three pillars pin the checkpoint subsystem:
//!
//! 1. **Bitwise resume.** Checkpointing at a random instant mid-run and
//!    restoring into a blank RMS must continue *bitwise identically* to
//!    the unbroken run — same event stream, same outcome instants to
//!    the bit, same churn and utilisation — for every policy in the
//!    catalogue, under node churn (proptest).
//!
//! 2. **Corruption is loud.** Any truncation and any bit flip anywhere
//!    in a snapshot must surface as a structured [`CkptError`] — never
//!    a panic, never a silently misparsed state (proptest). The
//!    [`CheckpointStore`] recovery path falls back past corrupt
//!    snapshots to the newest good one.
//!
//! 3. **Reshard restore.** Restoring an N-shard checkpoint into M
//!    blanks (grow and shrink) under [`RouteBy::JobHash`] stays equal
//!    to the union of independent per-shard runs: a job submitted
//!    before the reshard routes by `hash mod N`, after it by
//!    `hash mod M`. Shrinking onto non-quiescent shards is refused.
//!
//! A golden fixture (`tests/fixtures/golden.ckpt`) pins the wire format
//! itself: regenerate with `LIBRISK_REGEN_GOLDEN=1 cargo test -p
//! librisk --test checkpoint` after a deliberate format change (and
//! bump `ckpt::VERSION`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use cluster::Cluster;
use librisk::ckpt::{self, CkptError};
use librisk::prelude::*;
use librisk::report::JobRecord;
use librisk::{job_hash_shard, PolicyKind};
use proptest::prelude::*;
use sim::{Rng64, SimDuration, SimTime};
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;

/// The golden-fixture scenario (mirrors `sharded_rms.rs`).
fn synthetic_trace(jobs: usize, seed: u64) -> Trace {
    let mut trace = SyntheticSdscSp2 {
        jobs,
        ..Default::default()
    }
    .generate(seed);
    DeadlineModel::default().assign(&mut Rng64::new(seed ^ 0x9e37), trace.jobs_mut());
    trace
}

/// Fingerprint of one outcome with bit-exact instants.
fn key(outcome: &Outcome) -> (u8, u64, u64) {
    match *outcome {
        Outcome::Rejected { at, .. } => (0, at.as_secs().to_bits(), 0),
        Outcome::Completed { started, finish } => {
            (1, started.as_secs().to_bits(), finish.as_secs().to_bits())
        }
        Outcome::Killed { at, .. } => (2, at.as_secs().to_bits(), 0),
    }
}

/// A churn plan spanning the trace (fail + restore events mid-run).
fn churn_plan(trace: &Trace, nodes: usize, seed: u64) -> FaultPlan {
    let span = trace
        .jobs()
        .last()
        .map(|j| j.submit.as_secs())
        .unwrap_or(0.0)
        + 5_000.0;
    FaultPlan::exponential(
        nodes,
        span / 4.0,
        span / 16.0,
        SimTime::from_secs(span),
        seed,
    )
}

/// Advances to each arrival and submits, collecting resolved events.
fn drive(rms: &mut ClusterRms<'_>, jobs: &[Job], out: &mut Vec<(u64, JobRecord)>) {
    for job in jobs {
        out.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
        rms.submit(job.clone(), job.submit);
    }
}

fn drain_into(rms: &mut ClusterRms<'_>, out: &mut Vec<(u64, JobRecord)>) {
    out.extend(rms.drain().map(|e| (e.seq, e.record)));
}

/// A fresh scratch directory under the system temp dir, unique per
/// call within this test process.
fn scratch_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("librisk-ckpt-{}-{label}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

// ---------------------------------------------------------------------
// Pillar 1: bitwise checkpoint/resume for every policy, under churn.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Checkpoint at a random instant + resume == the unbroken run, to
    // the bit, for the full policy catalogue under node churn. Also
    // pins canonical encoding: re-saving the restored RMS reproduces
    // the checkpoint bytes exactly.
    #[test]
    fn checkpoint_resume_is_bitwise_equal_for_every_policy(
        seed in 0u64..500,
        cut_frac in 0.0..1.0f64,
    ) {
        let trace = synthetic_trace(48, seed);
        let cluster = Cluster::homogeneous(8, 168.0);
        let plan = churn_plan(&trace, 8, seed ^ 0xFA11);
        let cut = ((trace.len() as f64 * cut_frac) as usize).min(trace.len());

        for kind in PolicyKind::ALL {
            // Unbroken arm.
            let mut unbroken = Vec::new();
            let mut rms = kind
                .rms(&cluster)
                .with_faults(plan.clone(), RecoveryPolicy::Requeue);
            drive(&mut rms, trace.jobs(), &mut unbroken);
            drain_into(&mut rms, &mut unbroken);
            let unbroken_util = rms.utilization();
            let unbroken_churn = *rms.churn();

            // Checkpointed arm: drive to the cut, snapshot, restore
            // into a blank, continue.
            let mut resumed = Vec::new();
            let mut rms = kind
                .rms(&cluster)
                .with_faults(plan.clone(), RecoveryPolicy::Requeue);
            drive(&mut rms, &trace.jobs()[..cut], &mut resumed);
            let bytes = ckpt::save(&rms, None);
            drop(rms);
            let loaded = ckpt::load(&bytes).unwrap();
            let mut rms = loaded.restore_into(kind.rms(&cluster)).unwrap();
            prop_assert_eq!(
                ckpt::save(&rms, None),
                bytes,
                "{:?}: re-saving the restored RMS must reproduce the snapshot",
                kind
            );
            drive(&mut rms, &trace.jobs()[cut..], &mut resumed);
            drain_into(&mut rms, &mut resumed);

            prop_assert_eq!(
                unbroken.len(),
                resumed.len(),
                "{:?} seed {} cut {}: event counts",
                kind, seed, cut
            );
            for ((us, ur), (rs, rr)) in unbroken.iter().zip(&resumed) {
                prop_assert_eq!(us, rs, "{:?}: seq diverged after resume", kind);
                prop_assert_eq!(&ur.job, &rr.job, "{:?} seq {}: job", kind, us);
                prop_assert_eq!(
                    key(&ur.outcome),
                    key(&rr.outcome),
                    "{:?} seed {} cut {} seq {}: outcome bits diverged after resume",
                    kind, seed, cut, us
                );
            }
            prop_assert_eq!(
                unbroken_util.to_bits(),
                rms.utilization().to_bits(),
                "{:?}: utilisation bits",
                kind
            );
            prop_assert_eq!(unbroken_churn, *rms.churn(), "{:?}: churn", kind);
        }
    }
}

// ---------------------------------------------------------------------
// Pillar 2: corruption injection — always a structured error.
// ---------------------------------------------------------------------

/// A representative mid-flight snapshot: residents + queue + pending
/// events + mid-cursor fault plan + a report section.
fn sample_snapshot() -> Vec<u8> {
    let trace = synthetic_trace(40, 77);
    let cluster = Cluster::homogeneous(8, 168.0);
    let plan = churn_plan(&trace, 8, 0xBADD);
    let mut rms = PolicyKind::LibraRisk
        .rms(&cluster)
        .with_faults(plan, RecoveryPolicy::Requeue);
    let mut sink = OnlineReport::new();
    for job in &trace.jobs()[..25] {
        for e in rms.advance(job.submit) {
            sink.record(e.seq, e.record);
        }
        rms.submit(job.clone(), job.submit);
    }
    ckpt::save(&rms, Some(&sink))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every strict prefix of a snapshot fails to load with a structured
    // error (and never panics).
    #[test]
    fn truncation_is_always_detected(frac in 0.0..1.0f64) {
        let bytes = sample_snapshot();
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        let err = ckpt::load(&bytes[..cut]).expect_err("truncated snapshot must not load");
        // Any variant but a filesystem error is a legitimate diagnosis.
        prop_assert!(!matches!(err, CkptError::Io(_)), "unexpected Io: {}", err);
    }

    // Bit flips at arbitrary offsets are always detected. (Multiple
    // flips may cancel; skip the no-op case by comparing buffers.)
    #[test]
    fn bit_flips_are_always_detected(
        flips in proptest::collection::vec((0usize..1_000_000, 0u32..8), 1..5),
    ) {
        let bytes = sample_snapshot();
        let mut corrupt = bytes.clone();
        for (off, bit) in flips {
            let off = off % corrupt.len();
            corrupt[off] ^= 1 << bit;
        }
        if corrupt != bytes {
            let err = ckpt::load(&corrupt).expect_err("corrupted snapshot must not load");
            prop_assert!(!matches!(err, CkptError::Io(_)), "unexpected Io: {}", err);
        }
    }
}

#[test]
fn version_bump_is_rejected_structurally() {
    let mut bytes = sample_snapshot();
    // Version is the u32 after the 8-byte magic.
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        ckpt::load(&bytes),
        Err(CkptError::UnsupportedVersion(2))
    ));
    let mut garbage = sample_snapshot();
    garbage[0] ^= 0xFF;
    assert!(matches!(ckpt::load(&garbage), Err(CkptError::BadMagic)));
}

#[test]
fn store_falls_back_to_the_last_good_snapshot() {
    let dir = scratch_dir("store");
    let store = ckpt::CheckpointStore::open(&dir).unwrap();
    assert!(store.load_latest().unwrap().is_none(), "empty store");

    let good = store.save(&sample_snapshot()).unwrap();
    let newer = store.save(&sample_snapshot()).unwrap();
    assert_ne!(good, newer);

    // Tear the newest snapshot: recovery must fall back to `good`.
    let mut bytes = std::fs::read(&newer).unwrap();
    let cut = bytes.len() / 2;
    bytes.truncate(cut);
    std::fs::write(&newer, &bytes).unwrap();
    let (path, ckpt) = store.load_latest().unwrap().expect("good snapshot remains");
    assert_eq!(path, good);
    assert_eq!(ckpt.policy_name(), "LibraRisk");
    assert_eq!(ckpt.submitted(), 25);

    // Corrupt the last good one too: recovery reports "nothing usable",
    // not an error.
    let mut bytes = std::fs::read(&good).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&good, &bytes).unwrap();
    assert!(store.load_latest().unwrap().is_none());

    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Restore-target validation.
// ---------------------------------------------------------------------

#[test]
fn restore_refuses_a_mismatched_or_dirty_blank() {
    let bytes = sample_snapshot();
    let loaded = ckpt::load(&bytes).unwrap();
    let cluster = Cluster::homogeneous(8, 168.0);

    // Wrong policy.
    let err = loaded
        .restore_into(PolicyKind::Libra.rms(&cluster))
        .err()
        .expect("wrong policy must be refused");
    assert!(matches!(err, CkptError::Mismatch(_)), "{err}");

    // Wrong cluster.
    let err = loaded
        .restore_into(PolicyKind::LibraRisk.rms(&Cluster::homogeneous(4, 168.0)))
        .err()
        .expect("wrong cluster must be refused");
    assert!(matches!(err, CkptError::Mismatch(_)), "{err}");

    // Non-blank target.
    let mut dirty = PolicyKind::LibraRisk.rms(&cluster);
    let job = synthetic_trace(1, 3).jobs()[0].clone();
    let now = job.submit;
    dirty.submit(job, now);
    let err = loaded
        .restore_into(dirty)
        .err()
        .expect("dirty target must be refused");
    assert!(matches!(err, CkptError::Mismatch(_)), "{err}");

    // The matching blank restores fine.
    let restored = loaded
        .restore_into(PolicyKind::LibraRisk.rms(&cluster))
        .unwrap();
    assert_eq!(restored.submitted(), 25);
}

// ---------------------------------------------------------------------
// Recorder ring + report round-trip.
// ---------------------------------------------------------------------

#[test]
fn recorder_ring_and_report_round_trip() {
    let trace = synthetic_trace(30, 9);
    let cluster = Cluster::homogeneous(8, 168.0);
    let mut rec = TraceRecorder::new(64).with_audit_gauges();
    let mut rms = PolicyKind::LibraRisk.rms(&cluster).with_recorder(&mut rec);
    let mut sink = OnlineReport::new();
    for job in &trace.jobs()[..20] {
        for e in rms.advance(job.submit) {
            sink.record(e.seq, e.record);
        }
        rms.submit(job.clone(), job.submit);
    }
    sink.set_utilization(rms.utilization());
    let bytes = ckpt::save(&rms, Some(&sink));
    drop(rms);

    let loaded = ckpt::load(&bytes).unwrap();

    let report = loaded.report().expect("report section present");
    assert_eq!(report.submitted(), sink.submitted());
    assert_eq!(report.accepted(), sink.accepted());
    assert_eq!(report.rejected(), sink.rejected());
    assert_eq!(report.fulfilled(), sink.fulfilled());
    assert_eq!(
        report.avg_slowdown().to_bits(),
        sink.avg_slowdown().to_bits(),
        "float moments restore bitwise"
    );
    assert_eq!(report.utilization().to_bits(), sink.utilization().to_bits());

    let restored = loaded.recorder().expect("ring section present");
    let (orig, back) = (rec.snapshot(), restored.snapshot());
    assert_eq!(orig.capacity, back.capacity);
    assert_eq!(orig.dropped, back.dropped);
    assert_eq!(orig.events.len(), back.events.len());
    for (a, b) in orig.events.iter().zip(&back.events) {
        assert_eq!(a.sim_secs.to_bits(), b.sim_secs.to_bits());
        assert_eq!(a.wall_ns, b.wall_ns);
    }
    let counters = |reg: &obs::Registry| -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = reg.counters().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(counters(rec.registry()), counters(restored.registry()));
}

// ---------------------------------------------------------------------
// Pillar 3: sharded checkpoints + reshard restore vs the union oracle.
// ---------------------------------------------------------------------

/// Offsets a trace so it can act as a disjoint "phase 2" workload:
/// fresh job ids and strictly later submit instants.
fn offset_trace(trace: &Trace, id_base: u64, time_base: f64) -> Vec<Job> {
    trace
        .jobs()
        .iter()
        .map(|j| {
            let mut job = j.clone();
            job.id = JobId(job.id.0 + id_base);
            job.submit += SimDuration::from_secs(time_base);
            job
        })
        .collect()
}

/// Runs the union oracle for one post-reshard shard: an independent
/// plain facade over exactly the jobs that hash to it in each phase,
/// driven with the same advance schedule as the router arms.
#[allow(clippy::too_many_arguments)]
fn union_oracle(
    kind: PolicyKind,
    sub: &Cluster,
    plan: Option<&FaultPlan>,
    phase1: &[Job],
    phase1_mod: (usize, usize),
    phase2: &[Job],
    phase2_mod: Option<(usize, usize)>,
    drain_between: bool,
) -> (BTreeMap<u64, (u8, u64, u64)>, ChurnStats) {
    let mut rms = kind.rms(sub);
    if let Some(plan) = plan {
        rms = rms.with_faults(plan.clone(), RecoveryPolicy::Requeue);
    }
    let mut events = Vec::new();
    let mut members: Vec<u64> = Vec::new();
    for job in phase1 {
        events.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
        if job_hash_shard(job.id, phase1_mod.1) == phase1_mod.0 {
            members.push(job.id.0);
            rms.submit(job.clone(), job.submit);
        }
    }
    if drain_between {
        drain_into(&mut rms, &mut events);
    }
    if let Some((shard, modulus)) = phase2_mod {
        for job in phase2 {
            events.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
            if job_hash_shard(job.id, modulus) == shard {
                members.push(job.id.0);
                rms.submit(job.clone(), job.submit);
            }
        }
    }
    drain_into(&mut rms, &mut events);
    let mut by_id = BTreeMap::new();
    for (seq, record) in events {
        assert_eq!(record.job.id.0, members[seq as usize]);
        by_id.insert(record.job.id.0, key(&record.outcome));
    }
    (by_id, *rms.churn())
}

#[test]
fn grow_reshard_matches_the_union_oracle() {
    let n = 2;
    let m = 4;
    let kind = PolicyKind::LibraRisk;
    let sub = Cluster::homogeneous(4, 168.0);
    let trace1 = synthetic_trace(36, 21);
    let phase1: Vec<Job> = trace1.jobs().to_vec();
    let span1 = phase1.last().unwrap().submit.as_secs() + 1e6;
    let phase2 = offset_trace(&synthetic_trace(36, 22), 100_000, span1);
    let plans: Vec<FaultPlan> = (0..n)
        .map(|s| churn_plan(&trace1, 4, 0xFEED ^ (s as u64) << 8))
        .collect();

    // Router arm: drive phase 1 on N shards mid-flight, checkpoint,
    // restore into M shards, drive phase 2, drain.
    let mut router = ShardedRms::new(
        (0..n)
            .map(|s| {
                kind.rms(&sub)
                    .with_faults(plans[s].clone(), RecoveryPolicy::Requeue)
            })
            .collect(),
        RouteBy::JobHash,
    )
    .unwrap();
    let mut submitted: Vec<u64> = Vec::new();
    let mut merged: Vec<(u64, JobRecord)> = Vec::new();
    for job in &phase1 {
        merged.extend(
            router
                .advance(job.submit)
                .unwrap()
                .into_iter()
                .map(|e| (e.seq, e.record)),
        );
        submitted.push(job.id.0);
        router.submit(job.clone(), job.submit);
    }
    let dir = scratch_dir("grow");
    ckpt::save_sharded(&router, &dir).unwrap();
    drop(router);

    let blanks: Vec<ClusterRms<'static>> = (0..m).map(|_| kind.rms(&sub)).collect();
    let mut router = ckpt::restore_sharded(&dir, blanks).unwrap();
    assert_eq!(router.submitted(), phase1.len() as u64);
    for job in &phase2 {
        merged.extend(
            router
                .advance(job.submit)
                .unwrap()
                .into_iter()
                .map(|e| (e.seq, e.record)),
        );
        submitted.push(job.id.0);
        let (placed, _) = router.submit_routed(job.clone(), job.submit);
        assert_eq!(placed, job_hash_shard(job.id, m), "post-reshard placement");
    }
    merged.extend(
        router
            .drain()
            .unwrap()
            .into_iter()
            .map(|e| (e.seq, e.record)),
    );
    assert_eq!(
        merged.len(),
        phase1.len() + phase2.len(),
        "every job resolves"
    );
    let mut router_by_id: BTreeMap<u64, (u8, u64, u64)> = BTreeMap::new();
    for (seq, record) in &merged {
        assert_eq!(record.job.id.0, submitted[*seq as usize], "seq→job mapping");
        router_by_id.insert(record.job.id.0, key(&record.outcome));
    }
    let router_churn = router.churn();

    // Oracle arm: M independent runs over the union partition.
    let mut oracle_by_id = BTreeMap::new();
    let mut oracle_churn = ChurnStats::default();
    for j in 0..m {
        let (by_id, churn) = union_oracle(
            kind,
            &sub,
            plans.get(j),
            &phase1,
            (j, n),
            &phase2,
            Some((j, m)),
            false,
        );
        oracle_churn.merge(&churn);
        oracle_by_id.extend(by_id);
    }
    assert_eq!(
        router_by_id, oracle_by_id,
        "grow reshard diverged from union"
    );
    assert_eq!(router_churn, oracle_churn, "grow reshard churn");
}

#[test]
fn shrink_reshard_matches_the_union_oracle_and_carries_churn() {
    let n = 4;
    let m = 2;
    let kind = PolicyKind::Qops;
    let sub = Cluster::homogeneous(4, 168.0);
    let trace1 = synthetic_trace(32, 31);
    let phase1: Vec<Job> = trace1.jobs().to_vec();
    let span1 = phase1.last().unwrap().submit.as_secs() + 1e7;
    let phase2 = offset_trace(&synthetic_trace(32, 32), 200_000, span1);
    let plans: Vec<FaultPlan> = (0..n)
        .map(|s| churn_plan(&trace1, 4, 0xD00D ^ (s as u64) << 8))
        .collect();

    // Phase 1 on N shards, drained to quiescence before shrinking.
    let mut router = ShardedRms::new(
        (0..n)
            .map(|s| {
                kind.rms(&sub)
                    .with_faults(plans[s].clone(), RecoveryPolicy::Requeue)
            })
            .collect(),
        RouteBy::JobHash,
    )
    .unwrap();
    let mut submitted: Vec<u64> = Vec::new();
    let mut merged: Vec<(u64, JobRecord)> = Vec::new();
    for job in &phase1 {
        merged.extend(
            router
                .advance(job.submit)
                .unwrap()
                .into_iter()
                .map(|e| (e.seq, e.record)),
        );
        submitted.push(job.id.0);
        router.submit(job.clone(), job.submit);
    }
    merged.extend(
        router
            .drain()
            .unwrap()
            .into_iter()
            .map(|e| (e.seq, e.record)),
    );
    let dir = scratch_dir("shrink");
    ckpt::save_sharded(&router, &dir).unwrap();
    drop(router);

    let blanks: Vec<ClusterRms<'static>> = (0..m).map(|_| kind.rms(&sub)).collect();
    let mut router = ckpt::restore_sharded(&dir, blanks).unwrap();
    for job in &phase2 {
        merged.extend(
            router
                .advance(job.submit)
                .unwrap()
                .into_iter()
                .map(|e| (e.seq, e.record)),
        );
        submitted.push(job.id.0);
        let (placed, _) = router.submit_routed(job.clone(), job.submit);
        assert_eq!(placed, job_hash_shard(job.id, m), "post-shrink placement");
    }
    merged.extend(
        router
            .drain()
            .unwrap()
            .into_iter()
            .map(|e| (e.seq, e.record)),
    );
    assert_eq!(merged.len(), phase1.len() + phase2.len());
    let mut router_by_id: BTreeMap<u64, (u8, u64, u64)> = BTreeMap::new();
    for (seq, record) in &merged {
        assert_eq!(record.job.id.0, submitted[*seq as usize], "seq→job mapping");
        router_by_id.insert(record.job.id.0, key(&record.outcome));
    }

    // Oracle: retired shards only see phase 1; surviving shards see
    // their phase-1 partition (mod N) plus the phase-2 partition
    // (mod M), with the same drain at the reshard boundary.
    let mut oracle_by_id = BTreeMap::new();
    let mut oracle_churn = ChurnStats::default();
    for (j, plan) in plans.iter().enumerate() {
        let phase2_mod = if j < m { Some((j, m)) } else { None };
        let (by_id, churn) = union_oracle(
            kind,
            &sub,
            Some(plan),
            &phase1,
            (j, n),
            &phase2,
            phase2_mod,
            true,
        );
        oracle_churn.merge(&churn);
        oracle_by_id.extend(by_id);
    }
    assert_eq!(
        router_by_id, oracle_by_id,
        "shrink reshard diverged from union"
    );
    assert_eq!(
        router.churn(),
        oracle_churn,
        "retired shards' churn must be carried across the shrink"
    );
}

#[test]
fn shrink_onto_in_flight_shards_is_refused() {
    let n = 4;
    let kind = PolicyKind::LibraRisk;
    let sub = Cluster::homogeneous(4, 168.0);
    let trace = synthetic_trace(40, 41);

    let mut router =
        ShardedRms::new((0..n).map(|_| kind.rms(&sub)).collect(), RouteBy::JobHash).unwrap();
    for job in trace.jobs() {
        router.advance(job.submit).unwrap();
        router.submit(job.clone(), job.submit);
    }
    assert!(router.in_flight() > 0, "scenario must leave work in flight");
    let dir = scratch_dir("shrink-refused");
    ckpt::save_sharded(&router, &dir).unwrap();
    drop(router);

    // At least one retired shard holds work, so shrinking must refuse.
    let blanks: Vec<ClusterRms<'static>> = (0..2).map(|_| kind.rms(&sub)).collect();
    let err = ckpt::restore_sharded(&dir, blanks)
        .err()
        .expect("shrink over in-flight shards must be refused");
    assert!(matches!(err, CkptError::Mismatch(_)), "{err}");

    // Same checkpoint restores fine at the original width.
    let blanks: Vec<ClusterRms<'static>> = (0..n).map(|_| kind.rms(&sub)).collect();
    let router = ckpt::restore_sharded(&dir, blanks).unwrap();
    assert_eq!(router.submitted(), trace.len() as u64);

    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Golden fixture: the committed wire format stays loadable.
// ---------------------------------------------------------------------

/// The fixture scenario. No recorder ring (wall-clock stamps are not
/// reproducible); state + report sections only.
fn golden_bytes() -> Vec<u8> {
    let trace = synthetic_trace(60, 5);
    let cluster = Cluster::homogeneous(8, 168.0);
    let plan = churn_plan(&trace, 8, 0x601D);
    let mut rms = PolicyKind::LibraRisk
        .rms(&cluster)
        .with_faults(plan, RecoveryPolicy::Requeue);
    let mut sink = OnlineReport::new();
    for job in &trace.jobs()[..37] {
        for e in rms.advance(job.submit) {
            sink.record(e.seq, e.record);
        }
        rms.submit(job.clone(), job.submit);
    }
    ckpt::save(&rms, Some(&sink))
}

#[test]
fn golden_checkpoint_fixture_stays_loadable() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.ckpt");
    let fresh = golden_bytes();
    if std::env::var_os("LIBRISK_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &fresh).unwrap();
    }
    let committed =
        std::fs::read(&path).expect("fixture missing — regenerate with LIBRISK_REGEN_GOLDEN=1");
    assert_eq!(
        committed, fresh,
        "checkpoint bytes for the fixture scenario drifted; if the wire \
         format changed deliberately, bump ckpt::VERSION and regenerate"
    );

    let loaded = ckpt::load(&committed).unwrap();
    assert_eq!(loaded.policy_name(), "LibraRisk");
    assert_eq!(loaded.submitted(), 37);
    assert!(loaded.report().is_some());

    // The committed snapshot restores and finishes the run.
    let cluster = Cluster::homogeneous(8, 168.0);
    let mut rms = loaded
        .restore_into(PolicyKind::LibraRisk.rms(&cluster))
        .unwrap();
    let trace = synthetic_trace(60, 5);
    let mut out = Vec::new();
    drive(&mut rms, &trace.jobs()[37..], &mut out);
    drain_into(&mut rms, &mut out);
    assert_eq!(rms.submitted(), 60);
    assert_eq!(rms.in_flight(), 0);
}
