//! Recorders must be behaviourally inert.
//!
//! The observability layer promises that attaching any `Recorder` to the
//! online facade — the default none, an explicit `NoopRecorder`, or a
//! full ring-buffer `TraceRecorder` (including one small enough to
//! overflow) — leaves every policy's outcome stream **bitwise**
//! identical. A divergence means a hook leaked into the decision path
//! (e.g. an audit gauge perturbing a policy cache), which would make
//! "turn on tracing" change simulation results.

use cluster::{Cluster, FaultEvent, FaultKind, FaultPlan, NodeId, RecoveryPolicy};
use librisk::policy::PolicyKind;
use librisk::report::Outcome;
use librisk::rms::ClusterRms;
use obs::{Event, NoopRecorder, Recorder, TraceRecorder};
use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use workload::{Job, JobId, Urgency};

/// One randomized arrival, relative to the previous one.
#[derive(Debug, Clone)]
struct Arrival {
    gap: f64,
    runtime: f64,
    est_factor: f64,
    deadline: f64,
    procs: u32,
}

fn arrival() -> impl Strategy<Value = Arrival> {
    (
        0.0..300.0f64,
        1.0..800.0f64,
        0.2..4.0f64,
        20.0..5_000.0f64,
        1u32..4,
    )
        .prop_map(|(gap, runtime, est_factor, deadline, procs)| Arrival {
            gap,
            runtime,
            est_factor,
            deadline,
            procs,
        })
}

/// A down/up pair for one node, expressed in absolute seconds.
fn churn_plan(down_at: f64, outage: f64, node: u32) -> FaultPlan {
    FaultPlan::from_events(vec![
        FaultEvent {
            at: SimTime::from_secs(down_at),
            node: NodeId(node),
            kind: FaultKind::NodeDown,
        },
        FaultEvent {
            at: SimTime::from_secs(down_at + outage),
            node: NodeId(node),
            kind: FaultKind::NodeUp,
        },
    ])
}

/// Exact-bits fingerprint of one resolved outcome.
fn fingerprint(seq: u64, outcome: &Outcome) -> (u64, u8, u64, u64) {
    match *outcome {
        Outcome::Rejected { at, reason } => (seq, reason.index() as u8, at.as_secs().to_bits(), 0),
        Outcome::Completed { started, finish } => (
            seq,
            100,
            started.as_secs().to_bits(),
            finish.as_secs().to_bits(),
        ),
        Outcome::Killed { at, node } => (seq, 101, at.as_secs().to_bits(), u64::from(node.0)),
    }
}

/// Runs one policy over the arrivals (with a mid-run advance per job and
/// a node outage) and returns every outcome fingerprint + the final
/// utilization bits.
fn run(
    kind: PolicyKind,
    arrivals: &[Arrival],
    down_at: f64,
    outage: f64,
    recorder: Option<&mut (dyn Recorder + Send)>,
) -> (Vec<(u64, u8, u64, u64)>, u64) {
    let cluster = Cluster::homogeneous(3, 168.0);
    let rms = kind
        .rms(&cluster)
        .with_faults(churn_plan(down_at, outage, 0), RecoveryPolicy::Requeue);
    match recorder {
        Some(rec) => drive(rms.with_recorder(rec), arrivals),
        None => drive(rms, arrivals),
    }
}

fn drive(mut rms: ClusterRms<'_>, arrivals: &[Arrival]) -> (Vec<(u64, u8, u64, u64)>, u64) {
    let mut out = Vec::new();
    let mut now = 0.0;
    for (i, a) in arrivals.iter().enumerate() {
        now += a.gap;
        let t = SimTime::from_secs(now);
        for e in rms.advance(t) {
            out.push(fingerprint(e.seq, &e.record.outcome));
        }
        let job = Job {
            id: JobId(i as u64),
            submit: t,
            runtime: SimDuration::from_secs(a.runtime),
            estimate: SimDuration::from_secs(a.runtime * a.est_factor),
            procs: a.procs,
            deadline: SimDuration::from_secs(a.deadline),
            urgency: Urgency::Low,
        };
        rms.submit(job, t);
    }
    for e in rms.drain() {
        out.push(fingerprint(e.seq, &e.record.outcome));
    }
    out.sort_unstable();
    (out, rms.utilization().to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // No recorder, `NoopRecorder`, a roomy `TraceRecorder` with audit
    // gauges enabled (the only hook that runs policy code), and a
    // 16-slot ring that certainly overflows: all four runs must agree
    // bit-for-bit, for all 13 policies, under churn.
    #[test]
    fn any_recorder_leaves_all_policies_bitwise_identical(
        arrivals in proptest::collection::vec(arrival(), 5..25),
        down_at in 10.0..2_000.0f64,
        outage in 10.0..1_000.0f64,
    ) {
        for kind in PolicyKind::ALL {
            let plain = run(kind, &arrivals, down_at, outage, None);
            let mut noop = NoopRecorder;
            let with_noop = run(kind, &arrivals, down_at, outage, Some(&mut noop));
            prop_assert_eq!(&plain, &with_noop, "{:?}: noop recorder diverged", kind);
            let mut ring = TraceRecorder::new(4096).with_audit_gauges();
            let with_ring = run(kind, &arrivals, down_at, outage, Some(&mut ring));
            prop_assert_eq!(&plain, &with_ring, "{:?}: ring recorder diverged", kind);
            prop_assert!(!ring.is_empty(), "{:?}: ring recorded nothing", kind);
            let mut tiny = TraceRecorder::new(16);
            let with_tiny = run(kind, &arrivals, down_at, outage, Some(&mut tiny));
            prop_assert_eq!(&plain, &with_tiny, "{:?}: overflowing ring diverged", kind);
            // The tiny ring dropped the oldest events and said so.
            prop_assert_eq!(tiny.len() as u64 + tiny.dropped(), ring.len() as u64 + ring.dropped(),
                "{:?}: ring accounting leaked events", kind);
            if ring.len() > 16 {
                prop_assert!(tiny.dropped() > 0, "{:?}: overflow not counted", kind);
                // The tiny ring keeps exactly the newest events. Compare
                // by label + sim time: latency/wall stamps legitimately
                // differ between the two runs.
                let kept: Vec<_> = tiny
                    .events()
                    .map(|e| (e.event.label(), e.sim_secs.to_bits()))
                    .collect();
                let suffix: Vec<_> = ring
                    .events()
                    .skip(ring.len() - tiny.len())
                    .map(|e| (e.event.label(), e.sim_secs.to_bits()))
                    .collect();
                prop_assert_eq!(kept, suffix, "{:?}: ring did not keep the newest suffix", kind);
            }
        }
    }

    // The phase profiler is process-global state the engine hooks read
    // on every advance and decide — exactly the shape of plumbing that
    // could leak into a decision if a hook ever did more than observe.
    // Profiler-on runs must stay bitwise identical to profiler-off for
    // all 13 policies under churn, and must actually have profiled.
    #[test]
    fn enabled_profiler_leaves_all_policies_bitwise_identical(
        arrivals in proptest::collection::vec(arrival(), 5..20),
        down_at in 10.0..2_000.0f64,
        outage in 10.0..1_000.0f64,
    ) {
        obs::phase::reset();
        for kind in PolicyKind::ALL {
            obs::phase::set_enabled(false);
            let plain = run(kind, &arrivals, down_at, outage, None);
            obs::phase::set_enabled(true);
            let profiled = run(kind, &arrivals, down_at, outage, None);
            obs::phase::set_enabled(false);
            prop_assert_eq!(&plain, &profiled, "{:?}: profiler-on run diverged", kind);
        }
        // Aggregated across all 13 profiled runs the profiler must have
        // seen real work (individual policies may reject everything).
        let snap = obs::phase::snapshot();
        prop_assert!(
            snap.ns(obs::phase::Phase::AdvanceTotal) > 0,
            "profiler saw no advance work"
        );
        prop_assert!(
            snap.calls(obs::phase::Phase::ProgressPass) > 0,
            "no progress-pass laps recorded"
        );
        obs::phase::reset();
    }

    // The JSONL and Chrome trace exporters round-trip through the
    // bundled JSON parser for arbitrary recorded runs — one line per
    // event, and a Chrome event per span/instant.
    #[test]
    fn exports_parse_back(
        arrivals in proptest::collection::vec(arrival(), 3..12),
        down_at in 10.0..1_000.0f64,
    ) {
        let mut ring = TraceRecorder::new(8192).with_audit_gauges();
        run(PolicyKind::LibraRisk, &arrivals, down_at, 50.0, Some(&mut ring));
        let jsonl = ring.to_jsonl();
        let mut lines = 0;
        for line in jsonl.lines() {
            let v = obs::json::parse(line).expect("JSONL line parses");
            prop_assert!(v.get("type").and_then(|t| t.as_str()).is_some());
            prop_assert!(v.get("sim_secs").and_then(|t| t.as_f64()).is_some());
            lines += 1;
        }
        prop_assert_eq!(lines, ring.len());
        let trace = obs::json::parse(&ring.to_chrome_trace()).expect("chrome trace parses");
        let events = trace
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        prop_assert_eq!(events.len(), ring.len());
        let spans = ring
            .events()
            .filter(|e| matches!(e.event, Event::AdvanceSpan { .. }))
            .count();
        let complete = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        prop_assert_eq!(spans, complete);
    }
}
