//! Differential tests for the online RMS facade.
//!
//! The bespoke per-engine event loops are gone; their behaviour survives
//! as a golden fixture (`tests/fixtures/golden_outcomes.txt`) snapshotted
//! from the last commit that carried them. The unified driver
//! (`PolicyKind::run`, one generic loop over `ClusterRms`) must reproduce
//! that snapshot *bitwise* — every per-job outcome instant, the
//! utilisation and the policy name — for every policy in the catalogue.
//! Any divergence means the facade's event ordering drifted (a completion
//! processed on the wrong side of a same-instant arrival, a spurious
//! rate-recomputation point) and would silently change simulation
//! results.
//!
//! On top of the batch equivalence, property tests cover the fault
//! subsystem's two structural contracts: an **empty** `FaultPlan` is
//! bitwise inert for every policy, and streamed outcomes under a fixed
//! non-empty plan are independent of how often `advance` is called
//! between submissions.

use cluster::Cluster;
use librisk::prelude::*;
use librisk::report::JobRecord;
use proptest::prelude::*;
use sim::{Rng64, SimDuration, SimTime};
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;

/// A small but busy scenario: 16 nodes, a few hundred SDSC-SP2-like jobs
/// with the paper's deadline model — enough contention that queues form,
/// backfilling fires and admission tests reject.
fn synthetic_trace(jobs: usize, seed: u64) -> Trace {
    let mut trace = SyntheticSdscSp2 {
        jobs,
        ..Default::default()
    }
    .generate(seed);
    DeadlineModel::default().assign(&mut Rng64::new(seed ^ 0x9e37), trace.jobs_mut());
    trace
}

fn small_cluster() -> Cluster {
    Cluster::homogeneous(16, 168.0)
}

/// A churn plan that repeatedly takes nodes down and back up across the
/// whole span of a trace.
fn churn_plan(trace: &Trace, seed: u64) -> FaultPlan {
    let span = trace
        .jobs()
        .last()
        .map(|j| j.submit.as_secs())
        .unwrap_or(0.0)
        + 5_000.0;
    FaultPlan::exponential(16, span / 4.0, span / 16.0, SimTime::from_secs(span), seed)
}

/// The unified driver replayed against the golden snapshot of the retired
/// reference loops: 13 policies × 2 seeds × 180 jobs, compared bitwise.
#[test]
fn unified_driver_matches_golden_fixture() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_outcomes.txt"
    ))
    .expect("golden fixture present");
    let mut lines = text.lines();
    let mut sections = 0usize;
    while let Some(header) = lines.next() {
        let f: Vec<&str> = header.split(' ').collect();
        assert_eq!(
            (f[0], f[2], f[4], f[6]),
            ("policy", "name", "seed", "utilization"),
            "malformed fixture header: {header}"
        );
        let kind = PolicyKind::ALL
            .iter()
            .copied()
            .find(|k| format!("{k:?}") == f[1])
            .unwrap_or_else(|| panic!("unknown policy {} in fixture", f[1]));
        let seed: u64 = f[5].parse().expect("seed");
        let util_bits = u64::from_str_radix(f[7], 16).expect("utilization bits");

        let trace = synthetic_trace(180, seed);
        let report = kind.run(&small_cluster(), &trace);
        assert_eq!(
            report.policy, f[3],
            "{kind:?} (seed {seed}): policy name diverged from golden"
        );
        assert_eq!(
            report.utilization.to_bits(),
            util_bits,
            "{kind:?} (seed {seed}): utilization diverged from golden"
        );
        for (i, rec) in report.records.iter().enumerate() {
            let line = lines.next().expect("record line");
            let p: Vec<&str> = line.split(' ').collect();
            assert_eq!(p[0].parse::<usize>().unwrap(), i, "{kind:?} seed {seed}");
            let bits = |s: &str| u64::from_str_radix(s, 16).expect("outcome bits");
            match rec.outcome {
                Outcome::Rejected { at, .. } => {
                    assert_eq!(p[1], "R", "{kind:?} seed {seed} job {i}: kind flipped");
                    assert_eq!(
                        at.as_secs().to_bits(),
                        bits(p[2]),
                        "{kind:?} seed {seed} job {i}: rejection instant"
                    );
                }
                Outcome::Completed { started, finish } => {
                    assert_eq!(p[1], "C", "{kind:?} seed {seed} job {i}: kind flipped");
                    assert_eq!(
                        started.as_secs().to_bits(),
                        bits(p[2]),
                        "{kind:?} seed {seed} job {i}: start instant"
                    );
                    assert_eq!(
                        finish.as_secs().to_bits(),
                        bits(p[3]),
                        "{kind:?} seed {seed} job {i}: finish instant"
                    );
                }
                Outcome::Killed { .. } => {
                    panic!("{kind:?} seed {seed} job {i}: killed without faults")
                }
            }
        }
        sections += 1;
    }
    assert_eq!(
        sections,
        PolicyKind::ALL.len() * 2,
        "fixture covers every policy at both seeds"
    );
}

/// Rewrites the golden fixture from the current unified driver. Ignored
/// by default — run explicitly (`cargo test -p librisk --test
/// differential_rms -- --ignored regenerate_golden_fixture`) only after
/// an *intentional* semantic re-pin, and review the resulting diff like
/// any other code change. Last re-pin: canonical projection order — risk
/// projections now evaluate residents sorted by (deadline, remaining)
/// rather than by engine slot order, so `(μ_j, σ_j)` bits are functions
/// of the resident multiset and no longer leak admission history; the
/// only observable drift was LibraRisk-NaiveProj placement in
/// σ-at-noise-scale boundary cases.
#[test]
#[ignore = "writes the golden fixture; run only for an intentional semantic re-pin"]
fn regenerate_golden_fixture() {
    let mut out = String::new();
    for seed in [7u64, 4242] {
        for kind in PolicyKind::ALL {
            let trace = synthetic_trace(180, seed);
            let report = kind.run(&small_cluster(), &trace);
            out.push_str(&format!(
                "policy {kind:?} name {} seed {seed} utilization {:016x}\n",
                report.policy,
                report.utilization.to_bits()
            ));
            for (i, rec) in report.records.iter().enumerate() {
                match rec.outcome {
                    Outcome::Rejected { at, .. } => {
                        out.push_str(&format!("{i} R {:016x}\n", at.as_secs().to_bits()));
                    }
                    Outcome::Completed { started, finish } => {
                        out.push_str(&format!(
                            "{i} C {:016x} {:016x}\n",
                            started.as_secs().to_bits(),
                            finish.as_secs().to_bits()
                        ));
                    }
                    Outcome::Killed { .. } => {
                        panic!("{kind:?} seed {seed} job {i}: killed without faults")
                    }
                }
            }
        }
    }
    std::fs::write(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/golden_outcomes.txt"
        ),
        out,
    )
    .expect("fixture written");
}

/// Replays a trace through the facade with extra `advance` calls wedged
/// between submissions at `frac` of each inter-arrival gap, collecting
/// every streamed event.
fn run_interleaved(
    kind: PolicyKind,
    trace: &Trace,
    fracs: &[f64],
    faults: Option<(FaultPlan, RecoveryPolicy)>,
) -> Vec<(u64, JobRecord)> {
    let mut rms = kind.rms(&small_cluster());
    if let Some((plan, recovery)) = faults {
        rms = rms.with_faults(plan, recovery);
    }
    let mut out: Vec<(u64, JobRecord)> = Vec::new();
    let mut prev = SimTime::ZERO;
    for (i, job) in trace.jobs().iter().enumerate() {
        let gap = job.submit - prev;
        if gap > SimDuration::ZERO && !fracs.is_empty() {
            // Wedge intermediate advances strictly inside the gap.
            let frac = fracs[i % fracs.len()].clamp(0.0, 0.999);
            let mid = prev + SimDuration::from_secs(gap.as_secs() * frac);
            out.extend(rms.advance(mid).map(|e| (e.seq, e.record)));
        }
        out.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
        rms.submit(job.clone(), job.submit);
        prev = job.submit;
    }
    out.extend(rms.drain().map(|e| (e.seq, e.record)));
    out.sort_by_key(|(seq, _)| *seq);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Submitting with arbitrary intermediate advances produces exactly
    // the same outcomes as the batch drive, for a queued, a
    // proportional and the QoPS backend.
    #[test]
    fn interleaved_advances_never_change_outcomes(
        seed in 0u64..1_000,
        fracs in proptest::collection::vec(0.0..1.0f64, 1..6),
    ) {
        let trace = synthetic_trace(60, seed);
        for kind in [PolicyKind::LibraRisk, PolicyKind::EdfBackfill, PolicyKind::Qops] {
            let batch = kind.run(&small_cluster(), &trace);
            let streamed = run_interleaved(kind, &trace, &fracs, None);
            prop_assert_eq!(streamed.len(), batch.records.len());
            for (i, (seq, record)) in streamed.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64);
                prop_assert_eq!(record, &batch.records[i], "{:?} job {}", kind, i);
            }
        }
    }

    // An empty fault plan is structurally inert: for every policy in the
    // catalogue the report (records, outcome instants, utilisation and
    // churn aggregates) is bitwise identical to a run without any fault
    // plumbing attached.
    #[test]
    fn empty_fault_plan_is_bitwise_inert_for_every_policy(seed in 0u64..500) {
        let trace = synthetic_trace(80, seed);
        for kind in PolicyKind::ALL {
            let plain = kind.run(&small_cluster(), &trace);
            let faulted = kind
                .rms(&small_cluster())
                .with_faults(FaultPlan::empty(), RecoveryPolicy::Requeue)
                .run_to_report(&trace);
            prop_assert_eq!(&plain, &faulted, "{:?} (seed {})", kind, seed);
            prop_assert!(faulted.churn.is_empty());
        }
    }

    // Under a fixed non-empty plan, streamed outcomes are still
    // independent of how often time is advanced between submissions:
    // faults fire at their plan instants no matter who moves the clock.
    #[test]
    fn interleaved_advances_are_invariant_under_churn(
        seed in 0u64..200,
        fracs in proptest::collection::vec(0.0..1.0f64, 1..6),
    ) {
        let trace = synthetic_trace(60, seed);
        let plan = churn_plan(&trace, 0xC0FFEE ^ seed);
        for (kind, recovery) in [
            (PolicyKind::LibraRisk, RecoveryPolicy::Requeue),
            (PolicyKind::EdfBackfill, RecoveryPolicy::Kill),
            (PolicyKind::Qops, RecoveryPolicy::Requeue),
        ] {
            let batch = kind
                .rms(&small_cluster())
                .with_faults(plan.clone(), recovery)
                .run_to_report(&trace);
            let streamed =
                run_interleaved(kind, &trace, &fracs, Some((plan.clone(), recovery)));
            prop_assert_eq!(streamed.len(), batch.records.len());
            for (i, (seq, record)) in streamed.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64);
                prop_assert_eq!(record, &batch.records[i], "{:?} job {}", kind, i);
            }
        }
    }
}

/// Churn safety for the whole catalogue: under a busy fault plan, every
/// submitted job still resolves exactly once, `Killed` only appears under
/// the `Kill` recovery policy, and the streamed kill count agrees with
/// the churn aggregates.
#[test]
fn every_job_resolves_exactly_once_under_churn() {
    let trace = synthetic_trace(120, 7);
    let plan = churn_plan(&trace, 99);
    for kind in PolicyKind::ALL {
        for recovery in [RecoveryPolicy::Kill, RecoveryPolicy::Requeue] {
            let report = kind
                .rms(&small_cluster())
                .with_faults(plan.clone(), recovery)
                .run_to_report(&trace);
            assert_eq!(
                report.records.len(),
                trace.len(),
                "{kind:?}/{recovery:?}: every job resolves exactly once"
            );
            let killed = report
                .records
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Killed { .. }))
                .count() as u64;
            match recovery {
                RecoveryPolicy::Kill => {
                    assert_eq!(report.churn.requeues, 0, "{kind:?}: kill never requeues");
                }
                RecoveryPolicy::Requeue => {
                    assert_eq!(killed, 0, "{kind:?}: requeue never kills");
                    // `requeues` counts displacement events (one job can be
                    // displaced repeatedly along a fault chain); the tally
                    // judges each distinct requeued job exactly once.
                    let judged = report.churn.requeued_fulfilled.total();
                    assert!(
                        judged <= report.churn.requeues,
                        "{kind:?}: distinct jobs ≤ requeue events"
                    );
                    assert!(
                        report.churn.requeue_rejects <= judged,
                        "{kind:?}: rejects are a subset of judged requeues"
                    );
                    if report.churn.requeues > 0 {
                        assert!(judged > 0, "{kind:?}: requeued jobs are judged");
                    }
                }
            }
            assert_eq!(report.churn.kills, killed, "{kind:?}: kill count agrees");
            assert!(report.churn.node_failures > 0, "plan actually fired");
            // Record identity: outcomes are reported against the job as
            // originally submitted, even after a requeue chain.
            for (rec, original) in report.records.iter().zip(trace.jobs()) {
                assert_eq!(&rec.job, original, "{kind:?}/{recovery:?}");
            }
        }
    }
}

/// The streaming sink summarises a 100k-job trace with O(1) state — no
/// per-job outcome vector anywhere (the facade's seq map only holds
/// *resident* jobs, and `OnlineReport` folds records into scalar
/// aggregates as they resolve).
#[test]
fn online_sink_streams_a_hundred_thousand_jobs() {
    let n: u64 = 100_000;
    let jobs: Vec<Job> = (0..n)
        .map(|i| Job {
            id: JobId(i),
            submit: SimTime::from_secs(i as f64 * 10.0),
            runtime: SimDuration::from_secs(5.0),
            estimate: SimDuration::from_secs(5.0),
            procs: 1,
            deadline: SimDuration::from_secs(if i % 10 == 0 { 4.0 } else { 100.0 }),
            urgency: if i % 3 == 0 {
                Urgency::High
            } else {
                Urgency::Low
            },
        })
        .collect();
    let trace = Trace::new(jobs);
    let mut rms = PolicyKind::Fcfs.rms(&Cluster::homogeneous(2, 168.0));
    let mut sink = OnlineReport::new();
    drive_trace(&mut rms, &trace, &mut sink);
    sink.set_utilization(rms.utilization());
    assert_eq!(sink.submitted(), n);
    assert_eq!(sink.accepted(), n, "FCFS never rejects");
    // Every 10th job has a 4 s deadline < 5 s runtime → unfulfilled.
    assert_eq!(sink.fulfilled(), n - n / 10);
    assert_eq!(sink.delayed(), n / 10);
    assert!((sink.fulfilled_pct() - 90.0).abs() < 1e-9);
    assert!(
        (sink.avg_slowdown() - 1.0).abs() < 1e-9,
        "no queueing: slowdown 1"
    );
    assert!(sink.utilization() > 0.0);
    assert!(sink.fulfilled_pct_of(Urgency::High) > 0.0);
}

/// The facade's irrevocability invariant: decisions returned by `submit`
/// never contradict the eventually streamed outcome.
#[test]
fn decisions_agree_with_streamed_outcomes() {
    let trace = synthetic_trace(120, 99);
    for kind in [PolicyKind::LibraRisk, PolicyKind::Edf, PolicyKind::QopsHard] {
        let mut rms = kind.rms(&small_cluster());
        let mut decisions: Vec<Decision> = Vec::new();
        let mut outcomes: Vec<Option<JobRecord>> = vec![None; trace.len()];
        for job in trace.jobs() {
            for e in rms.advance(job.submit) {
                outcomes[e.seq as usize] = Some(e.record);
            }
            decisions.push(rms.submit(job.clone(), job.submit));
        }
        for e in rms.drain() {
            outcomes[e.seq as usize] = Some(e.record);
        }
        for (i, d) in decisions.iter().enumerate() {
            let outcome = &outcomes[i].as_ref().expect("every job resolves").outcome;
            match d {
                Decision::Accepted => assert!(
                    matches!(outcome, Outcome::Completed { .. }),
                    "{kind:?} job {i}: accepted jobs complete"
                ),
                Decision::Rejected(reason) => assert!(
                    matches!(outcome, Outcome::Rejected { reason: r, .. } if r == reason),
                    "{kind:?} job {i}: rejections are final and keep their reason"
                ),
                Decision::Queued => {} // either way, via the queue
            }
        }
    }
}

/// The full reference-oracle loop, hand-rolled: `decide_reference` +
/// `advance_reference` + `next_event_time_scan` driving a bare
/// `ProportionalCluster`, compared outcome-for-outcome (bitwise instants)
/// against the unified driver running the incremental paths end to end.
/// This is the whole-pipeline version of the per-layer differentials: if
/// any incremental layer (decision memos, profile dedupe, cached event
/// times, arena advance) drifted from its oracle *in composition*, the
/// two runs would part ways. Churn composition is pinned separately
/// (`interleaved_advances_are_invariant_under_churn` and the engine-level
/// churn differentials in `cluster`).
#[test]
fn hand_rolled_reference_loop_matches_unified_driver() {
    use cluster::proportional::{ProportionalCluster, ProportionalConfig};
    use librisk::libra_risk::LibraRisk;
    use librisk::report::Outcome;
    use std::collections::HashMap;

    // (discriminant, t0 bits, t1 bits) per job id.
    fn key(outcome: &Outcome) -> (u8, u64, u64) {
        match outcome {
            Outcome::Rejected { at, .. } => (0, at.as_secs().to_bits(), 0),
            Outcome::Completed { started, finish } => {
                (1, started.as_secs().to_bits(), finish.as_secs().to_bits())
            }
            Outcome::Killed { at, .. } => (2, at.as_secs().to_bits(), 0),
        }
    }

    for seed in [7u64, 99] {
        let trace = synthetic_trace(240, seed);
        let cluster = small_cluster();

        let mut rms = PolicyKind::LibraRisk.rms(&cluster);
        let mut unified: HashMap<u64, (u8, u64, u64)> = HashMap::new();
        for job in trace.jobs() {
            for e in rms.advance(job.submit) {
                unified.insert(e.record.job.id.0, key(&e.record.outcome));
            }
            rms.submit(job.clone(), job.submit);
        }
        for e in rms.drain() {
            unified.insert(e.record.job.id.0, key(&e.record.outcome));
        }

        let mut engine = ProportionalCluster::new(cluster, ProportionalConfig::default());
        let policy = LibraRisk::paper();
        let mut reference: HashMap<u64, (u8, u64, u64)> = HashMap::new();
        let complete = |engine: &mut ProportionalCluster,
                        to: sim::SimTime,
                        reference: &mut HashMap<u64, (u8, u64, u64)>| {
            for done in engine.advance_reference(to) {
                reference.insert(
                    done.job.id.0,
                    (
                        1,
                        done.started.as_secs().to_bits(),
                        done.finish.as_secs().to_bits(),
                    ),
                );
            }
        };
        for job in trace.jobs() {
            let now = job.submit;
            while let Some(t) = engine.next_event_time_scan() {
                if t > now {
                    break;
                }
                complete(&mut engine, t, &mut reference);
            }
            complete(&mut engine, now, &mut reference);
            match policy.decide_reference(&engine, job) {
                Some(nodes) => engine.admit(job.clone(), nodes, now),
                None => {
                    reference.insert(job.id.0, (0, now.as_secs().to_bits(), 0));
                }
            }
        }
        while let Some(t) = engine.next_event_time_scan() {
            complete(&mut engine, t, &mut reference);
        }

        assert_eq!(
            unified.len(),
            reference.len(),
            "seed {seed}: outcome counts diverged"
        );
        for (id, u) in &unified {
            assert_eq!(
                Some(u),
                reference.get(id),
                "seed {seed}: job {id} outcome diverged between unified driver and reference loop"
            );
        }
    }
}
