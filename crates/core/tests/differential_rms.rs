//! Differential tests for the online RMS facade.
//!
//! The unified driver (`PolicyKind::run`, one generic loop over
//! `ClusterRms`) must reproduce the retired bespoke event loops
//! (`PolicyKind::run_reference`) *identically* — every per-job outcome,
//! the utilisation and the policy name — for every policy in the
//! catalogue, over realistic synthetic traces. Any divergence means the
//! facade's event ordering differs from the batch loops' (a completion
//! processed on the wrong side of a same-instant arrival, a spurious
//! rate-recomputation point) and would silently change simulation
//! results.
//!
//! On top of the batch equivalence, a property test interleaves
//! `advance` calls at arbitrary intermediate instants between
//! submissions: the facade contract says `advance(to)` brings the RMS to
//! exactly the state an arrival at `to` would observe, so the streamed
//! outcomes must be independent of how often time is advanced.

use cluster::Cluster;
use librisk::prelude::*;
use librisk::report::JobRecord;
use proptest::prelude::*;
use sim::{Rng64, SimDuration, SimTime};
use workload::deadlines::DeadlineModel;
use workload::synthetic::SyntheticSdscSp2;

/// A small but busy scenario: 16 nodes, a few hundred SDSC-SP2-like jobs
/// with the paper's deadline model — enough contention that queues form,
/// backfilling fires and admission tests reject.
fn synthetic_trace(jobs: usize, seed: u64) -> Trace {
    let mut trace = SyntheticSdscSp2 {
        jobs,
        ..Default::default()
    }
    .generate(seed);
    DeadlineModel::default().assign(&mut Rng64::new(seed ^ 0x9e37), trace.jobs_mut());
    trace
}

fn small_cluster() -> Cluster {
    Cluster::homogeneous(16, 168.0)
}

#[test]
fn facade_reproduces_reference_loops_for_every_policy() {
    for seed in [7u64, 4242] {
        let trace = synthetic_trace(180, seed);
        let cluster = small_cluster();
        for kind in PolicyKind::ALL {
            let facade = kind.run(&cluster, &trace);
            let reference = kind.run_reference(&cluster, &trace);
            assert_eq!(
                facade.policy, reference.policy,
                "{kind:?} (seed {seed}): policy name"
            );
            assert_eq!(
                facade.utilization, reference.utilization,
                "{kind:?} (seed {seed}): utilization"
            );
            assert_eq!(
                facade.records.len(),
                reference.records.len(),
                "{kind:?} (seed {seed}): record count"
            );
            for (i, (f, r)) in facade
                .records
                .iter()
                .zip(reference.records.iter())
                .enumerate()
            {
                assert_eq!(f, r, "{kind:?} (seed {seed}): job {i} outcome diverged");
            }
        }
    }
}

/// Replays a trace through the facade with extra `advance` calls wedged
/// between submissions at `frac` of each inter-arrival gap, collecting
/// every streamed event.
fn run_interleaved(kind: PolicyKind, trace: &Trace, fracs: &[f64]) -> Vec<(u64, JobRecord)> {
    let mut rms = kind.rms(&small_cluster());
    let mut out: Vec<(u64, JobRecord)> = Vec::new();
    let mut prev = SimTime::ZERO;
    for (i, job) in trace.jobs().iter().enumerate() {
        let gap = job.submit - prev;
        if gap > SimDuration::ZERO && !fracs.is_empty() {
            // Wedge intermediate advances strictly inside the gap.
            let frac = fracs[i % fracs.len()].clamp(0.0, 0.999);
            let mid = prev + SimDuration::from_secs(gap.as_secs() * frac);
            out.extend(rms.advance(mid).map(|e| (e.seq, e.record)));
        }
        out.extend(rms.advance(job.submit).map(|e| (e.seq, e.record)));
        rms.submit(job.clone(), job.submit);
        prev = job.submit;
    }
    out.extend(rms.drain().map(|e| (e.seq, e.record)));
    out.sort_by_key(|(seq, _)| *seq);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Submitting with arbitrary intermediate advances produces exactly
    // the same outcomes as the batch drive, for a queued, a
    // proportional and the QoPS backend.
    #[test]
    fn interleaved_advances_never_change_outcomes(
        seed in 0u64..1_000,
        fracs in proptest::collection::vec(0.0..1.0f64, 1..6),
    ) {
        let trace = synthetic_trace(60, seed);
        for kind in [PolicyKind::LibraRisk, PolicyKind::EdfBackfill, PolicyKind::Qops] {
            let batch = kind.run(&small_cluster(), &trace);
            let streamed = run_interleaved(kind, &trace, &fracs);
            prop_assert_eq!(streamed.len(), batch.records.len());
            for (i, (seq, record)) in streamed.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64);
                prop_assert_eq!(record, &batch.records[i], "{:?} job {}", kind, i);
            }
        }
    }
}

/// The streaming sink summarises a 100k-job trace with O(1) state — no
/// per-job outcome vector anywhere (the facade's seq map only holds
/// *resident* jobs, and `OnlineReport` folds records into scalar
/// aggregates as they resolve).
#[test]
fn online_sink_streams_a_hundred_thousand_jobs() {
    let n: u64 = 100_000;
    let jobs: Vec<Job> = (0..n)
        .map(|i| Job {
            id: JobId(i),
            submit: SimTime::from_secs(i as f64 * 10.0),
            runtime: SimDuration::from_secs(5.0),
            estimate: SimDuration::from_secs(5.0),
            procs: 1,
            deadline: SimDuration::from_secs(if i % 10 == 0 { 4.0 } else { 100.0 }),
            urgency: if i % 3 == 0 {
                Urgency::High
            } else {
                Urgency::Low
            },
        })
        .collect();
    let trace = Trace::new(jobs);
    let mut rms = PolicyKind::Fcfs.rms(&Cluster::homogeneous(2, 168.0));
    let mut sink = OnlineReport::new();
    drive_trace(&mut rms, &trace, &mut sink);
    sink.set_utilization(rms.utilization());
    assert_eq!(sink.submitted(), n);
    assert_eq!(sink.accepted(), n, "FCFS never rejects");
    // Every 10th job has a 4 s deadline < 5 s runtime → unfulfilled.
    assert_eq!(sink.fulfilled(), n - n / 10);
    assert_eq!(sink.delayed(), n / 10);
    assert!((sink.fulfilled_pct() - 90.0).abs() < 1e-9);
    assert!(
        (sink.avg_slowdown() - 1.0).abs() < 1e-9,
        "no queueing: slowdown 1"
    );
    assert!(sink.utilization() > 0.0);
    assert!(sink.fulfilled_pct_of(Urgency::High) > 0.0);
}

/// The facade's irrevocability invariant: decisions returned by `submit`
/// never contradict the eventually streamed outcome.
#[test]
fn decisions_agree_with_streamed_outcomes() {
    let trace = synthetic_trace(120, 99);
    for kind in [PolicyKind::LibraRisk, PolicyKind::Edf, PolicyKind::QopsHard] {
        let mut rms = kind.rms(&small_cluster());
        let mut decisions: Vec<Decision> = Vec::new();
        let mut outcomes: Vec<Option<JobRecord>> = vec![None; trace.len()];
        for job in trace.jobs() {
            for e in rms.advance(job.submit) {
                outcomes[e.seq as usize] = Some(e.record);
            }
            decisions.push(rms.submit(job.clone(), job.submit));
        }
        for e in rms.drain() {
            outcomes[e.seq as usize] = Some(e.record);
        }
        for (i, d) in decisions.iter().enumerate() {
            let outcome = &outcomes[i].as_ref().expect("every job resolves").outcome;
            match d {
                Decision::Accepted => assert!(
                    matches!(outcome, Outcome::Completed { .. }),
                    "{kind:?} job {i}: accepted jobs complete"
                ),
                Decision::Rejected => assert!(
                    matches!(outcome, Outcome::Rejected { .. }),
                    "{kind:?} job {i}: rejections are final"
                ),
                Decision::Queued => {} // either way, via the queue
            }
        }
    }
}
