//! Differential property tests for the incremental admission decision
//! path.
//!
//! The cached/incremental `decide` of every share-based policy (the
//! proportional-share members of `PolicyKind::PAPER` — Libra and
//! LibraRisk — plus every LibraRisk ablation variant) must return
//! decisions *identical* to its from-scratch `decide_reference` —
//! accept/reject and the exact chosen node list — over randomized
//! admit/advance/complete sequences. Any divergence means a cache key
//! misses an invalidation (an epoch not bumped, a `now` leaking through)
//! and would silently change simulation results.

use cluster::proportional::{ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, NodeId};
use librisk::libra::Libra;
use librisk::libra_risk::{LibraRisk, NodeOrdering};
use librisk::policy::ShareAdmission;
use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use workload::{Job, JobId, Urgency};

/// One randomized arrival: job shape plus how far to advance afterwards.
#[derive(Debug, Clone)]
struct Arrival {
    runtime: f64,
    est_factor: f64,
    deadline: f64,
    procs: u32,
    /// Fraction of the next event gap to advance after the decision
    /// (0 → next arrival at the same instant; 1 → land on the event).
    advance_frac: f64,
}

fn arrival() -> impl Strategy<Value = Arrival> {
    (
        1.0..2_000.0f64,
        0.2..6.0f64,
        10.0..10_000.0f64,
        1u32..4,
        0.0..1.0f64,
    )
        .prop_map(
            |(runtime, est_factor, deadline, procs, advance_frac)| Arrival {
                runtime,
                est_factor,
                deadline,
                procs,
                advance_frac,
            },
        )
}

fn job_at(id: u64, a: &Arrival, now: SimTime) -> Job {
    Job {
        id: JobId(id),
        submit: now,
        runtime: SimDuration::from_secs(a.runtime),
        estimate: SimDuration::from_secs(a.runtime * a.est_factor),
        procs: a.procs,
        deadline: SimDuration::from_secs(a.deadline),
        urgency: Urgency::Low,
    }
}

/// Feeds a randomized trace through one policy, asserting at every
/// arrival that the cached decision equals the from-scratch reference,
/// then applying the decision so caches face real admissions,
/// completions, overrun re-arms, and time advances.
fn assert_cached_matches_reference<P, R>(
    policy: &mut P,
    reference: R,
    arrivals: &[Arrival],
    nodes: usize,
) where
    P: ShareAdmission,
    R: Fn(&P, &ProportionalCluster, &Job) -> Option<Vec<NodeId>>,
{
    let cfg = ProportionalConfig::default();
    let mut engine = ProportionalCluster::new(Cluster::homogeneous(nodes, 168.0), cfg);
    for (i, a) in arrivals.iter().enumerate() {
        let now = engine.now();
        let j = job_at(i as u64, a, now);
        let cached = policy.decide(&engine, &j);
        let scratch = reference(policy, &engine, &j);
        assert_eq!(
            cached,
            scratch,
            "{}: cached decision diverged from reference at arrival {i}",
            policy.name()
        );
        if let Some(alloc) = cached {
            engine.admit(j, alloc, now);
        }
        if a.advance_frac > 0.0 {
            if let Some(next) = engine.next_event_time() {
                let dt = (next - now).as_secs() * a.advance_frac;
                engine.advance(now + SimDuration::from_secs(dt));
            }
        }
    }
    // Drain: decisions already verified; the engine must still converge.
    let mut guard = 0;
    while let Some(t) = engine.next_event_time() {
        engine.advance(t);
        guard += 1;
        assert!(guard < 200_000, "engine failed to converge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn libra_cached_equals_from_scratch(
        arrivals in proptest::collection::vec(arrival(), 1..40),
    ) {
        let mut p = Libra::new();
        assert_cached_matches_reference(
            &mut p,
            |p: &Libra, e, j| p.decide_reference(e, j),
            &arrivals,
            6,
        );
    }

    #[test]
    fn libra_risk_cached_equals_from_scratch(
        arrivals in proptest::collection::vec(arrival(), 1..40),
    ) {
        let mut p = LibraRisk::paper();
        assert_cached_matches_reference(
            &mut p,
            |p: &LibraRisk, e, j| p.decide_reference(e, j),
            &arrivals,
            6,
        );
    }

    #[test]
    fn libra_risk_variants_cached_equal_from_scratch(
        arrivals in proptest::collection::vec(arrival(), 1..24),
    ) {
        for variant in [
            LibraRisk::paper().require_unit_mu(true),
            LibraRisk::paper().with_naive_projection(true),
            LibraRisk::paper().with_ordering(NodeOrdering::MostLoadedFirst),
            LibraRisk::paper().with_ordering(NodeOrdering::LeastLoadedFirst),
        ] {
            let mut p = variant;
            assert_cached_matches_reference(
                &mut p,
                |p: &LibraRisk, e, j| p.decide_reference(e, j),
                &arrivals,
                4,
            );
        }
    }

    // Satellite: rejected candidates must not mutate the cached
    // cluster-risk contributions, and the incrementally maintained
    // aggregate must stay bitwise equal to a from-scratch rebuild across
    // admits, rejects, advances, completions and overrun re-arms.
    #[test]
    fn cluster_risk_cache_equals_from_scratch_rebuild(
        arrivals in proptest::collection::vec(arrival(), 1..40),
    ) {
        let cfg = ProportionalConfig::default();
        let mut engine = ProportionalCluster::new(Cluster::homogeneous(8, 168.0), cfg);
        let mut p = LibraRisk::paper();
        for (i, a) in arrivals.iter().enumerate() {
            let now = engine.now();
            let j = job_at(i as u64, a, now);
            let before = p.cluster_risk(&engine);
            prop_assert!(
                before.bits_eq(&LibraRisk::cluster_risk_reference(&engine)),
                "cached aggregate diverged from rebuild before arrival {i}"
            );
            // Evaluating a candidate — accepted or rejected — must leave
            // the resident-only contributions bitwise untouched.
            let decision = p.decide(&engine, &j);
            let after = p.cluster_risk(&engine);
            prop_assert!(
                after.bits_eq(&before),
                "decide() mutated cached contributions at arrival {i} \
                 (decision was {:?})",
                decision.as_ref().map(|_| "accept").unwrap_or("reject")
            );
            if let Some(alloc) = decision {
                engine.admit(j, alloc, now);
                prop_assert!(
                    p.cluster_risk(&engine)
                        .bits_eq(&LibraRisk::cluster_risk_reference(&engine)),
                    "aggregate stale after admit at arrival {i}"
                );
            }
            if a.advance_frac > 0.0 {
                if let Some(next) = engine.next_event_time() {
                    let dt = (next - now).as_secs() * a.advance_frac;
                    engine.advance(now + SimDuration::from_secs(dt));
                }
            }
        }
        prop_assert!(
            p.cluster_risk(&engine).bits_eq(&LibraRisk::cluster_risk_reference(&engine))
        );
    }
}

// The 128-node sweep uses fewer cases: the from-scratch reference is
// O(nodes × residents²) per arrival, so each case is much heavier than
// the 6-node ones above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn decisions_match_reference_at_128_nodes(
        arrivals in proptest::collection::vec(arrival(), 1..48),
    ) {
        let mut libra = Libra::new();
        assert_cached_matches_reference(
            &mut libra,
            |p: &Libra, e, j| p.decide_reference(e, j),
            &arrivals,
            128,
        );
        let mut lr = LibraRisk::paper();
        assert_cached_matches_reference(
            &mut lr,
            |p: &LibraRisk, e, j| p.decide_reference(e, j),
            &arrivals,
            128,
        );
    }
}

/// One churn action, folded over the live node state: the target's
/// current up/down status decides between `fail_node` and
/// `restore_node`, so any index sequence is valid and both transitions
/// get exercised against the same decision stream.
fn apply_churn(engine: &mut ProportionalCluster, target: u32) {
    let node = NodeId(target % engine.cluster().len() as u32);
    let now = engine.now();
    if engine.node_is_up(node) {
        // Displaced jobs are dropped: the point here is cache
        // invalidation, not recovery policy (covered elsewhere).
        engine.fail_node(node, now);
    } else {
        engine.restore_node(node, now);
    }
}

/// Mirrors [`assert_cached_matches_reference`] with node churn woven
/// between arrivals: every decision the classified scan produces after a
/// `fail_node`/`restore_node` must still equal the from-scratch
/// reference's verdict and node list.
fn assert_cached_matches_reference_under_churn<P, R>(
    policy: &mut P,
    reference: R,
    arrivals: &[Arrival],
    churn: &[u32],
    nodes: usize,
) where
    P: ShareAdmission,
    R: Fn(&P, &ProportionalCluster, &Job) -> Option<Vec<NodeId>>,
{
    let cfg = ProportionalConfig::default();
    let mut engine = ProportionalCluster::new(Cluster::homogeneous(nodes, 168.0), cfg);
    for (i, a) in arrivals.iter().enumerate() {
        if let Some(&target) = churn.get(i % churn.len().max(1)) {
            if (target as usize) < nodes {
                apply_churn(&mut engine, target);
            }
        }
        let now = engine.now();
        let j = job_at(i as u64, a, now);
        let cached = policy.decide(&engine, &j);
        let scratch = reference(policy, &engine, &j);
        assert_eq!(
            cached,
            scratch,
            "{}: cached decision diverged from reference at arrival {i} (churned)",
            policy.name()
        );
        if let Some(alloc) = cached {
            engine.admit(j, alloc, now);
        }
        if a.advance_frac > 0.0 {
            if let Some(next) = engine.next_event_time() {
                let dt = (next - now).as_secs() * a.advance_frac;
                engine.advance(now + SimDuration::from_secs(dt));
            }
        }
    }
    let mut guard = 0;
    while let Some(t) = engine.next_event_time() {
        engine.advance(t);
        guard += 1;
        assert!(guard < 200_000, "engine failed to converge");
    }
}

// Tentpole pin: the classified candidate scan (equivalence classes,
// pairing replay, verdict-kernel bail-outs, screens) under *churn* at
// full cluster width. Fewer cases for the same reason as the fault-free
// 128-node sweep: the from-scratch reference is the expensive half.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn decisions_match_reference_at_128_nodes_under_churn(
        arrivals in proptest::collection::vec(arrival(), 1..40),
        // A draw below the node count churns that node; the upper half
        // of the range is a no-op step (~50% churn density).
        churn in proptest::collection::vec(0u32..256, 1..40),
    ) {
        let mut libra = Libra::new();
        assert_cached_matches_reference_under_churn(
            &mut libra,
            |p: &Libra, e, j| p.decide_reference(e, j),
            &arrivals,
            &churn,
            128,
        );
        let mut lr = LibraRisk::paper();
        assert_cached_matches_reference_under_churn(
            &mut lr,
            |p: &LibraRisk, e, j| p.decide_reference(e, j),
            &arrivals,
            &churn,
            128,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite: the per-node class signature (canonical key list, hash,
    // first-segment share prefix sum, min resident deadline) must never
    // go stale. After every interleaved submit / advance / fail_node /
    // restore_node step, the epoch-cached state handed back by
    // `node_class_state` is compared against a from-scratch rebuild off
    // the engine's authoritative projection.
    #[test]
    fn class_signature_never_stale_under_churn(
        arrivals in proptest::collection::vec(arrival(), 1..32),
        churn in proptest::collection::vec(0u32..16, 1..32),
    ) {
        use cluster::projection::{
            canonical_class_keys, canonicalize_projection, first_segment_shares,
        };
        let nodes = 8usize;
        let cfg = ProportionalConfig::default();
        let mut engine = ProportionalCluster::new(Cluster::homogeneous(nodes, 168.0), cfg);
        let mut p = LibraRisk::paper();
        let check = |p: &mut LibraRisk, engine: &ProportionalCluster, ctx: &str| {
            let now = engine.now().as_secs();
            for n in 0..nodes {
                let node = NodeId(n as u32);
                let (hash, share_sum, min_dl, keys) = p.node_class_state(engine, node);
                let mut jobs = engine.node_projection(node, None);
                canonicalize_projection(&mut jobs);
                let mut oracle_keys = Vec::new();
                let oracle_hash = canonical_class_keys(&jobs, &mut oracle_keys);
                let mut oracle_shares = Vec::new();
                let oracle_sum = first_segment_shares(&jobs, now, &mut oracle_shares);
                let oracle_min_dl = jobs
                    .iter()
                    .fold(f64::INFINITY, |m, j| m.min(j.abs_deadline));
                prop_assert_eq!(keys, oracle_keys, "stale class keys on {} {}", node, ctx);
                prop_assert_eq!(hash, oracle_hash, "stale class hash on {} {}", node, ctx);
                prop_assert_eq!(
                    share_sum.to_bits(),
                    oracle_sum.to_bits(),
                    "stale share prefix sum on {} {}",
                    node,
                    ctx
                );
                prop_assert_eq!(
                    min_dl.to_bits(),
                    oracle_min_dl.to_bits(),
                    "stale min deadline on {} {}",
                    node,
                    ctx
                );
            }
        };
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(&target) = churn.get(i % churn.len().max(1)) {
                if (target as usize) < nodes {
                    apply_churn(&mut engine, target);
                    check(&mut p, &engine, "after churn");
                }
            }
            let now = engine.now();
            let j = job_at(i as u64, a, now);
            if let Some(alloc) = p.decide(&engine, &j) {
                engine.admit(j, alloc, now);
                check(&mut p, &engine, "after admit");
            }
            if a.advance_frac > 0.0 {
                if let Some(next) = engine.next_event_time() {
                    let dt = (next - now).as_secs() * a.advance_frac;
                    engine.advance(now + SimDuration::from_secs(dt));
                    check(&mut p, &engine, "after advance");
                }
            }
        }
    }
}
