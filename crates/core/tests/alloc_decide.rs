//! Steady-state allocation audit for the *decision* path: once caches
//! are warm, `decide` must not touch the heap beyond the accepted node
//! list it hands back — no per-decision worklists, no class-table or
//! memo growth, no workspace churn. Rejections return `None` and must
//! therefore be exactly zero-allocation; acceptances may allocate only
//! the returned `Vec<NodeId>` (one allocation). The class-index
//! maintenance path is deliberately on the measured path: a `dt > 0`
//! advance between decisions moves every occupied node's epoch pair, so
//! each measured decision rebuilds signatures, re-hashes classes and
//! re-runs the verdict kernel instead of replaying a whole-decision
//! memo. A counting global allocator makes the claim checkable; the
//! allocator is process-global, so this file holds a single `#[test]`.

use cluster::proportional::{ProportionalCluster, ProportionalConfig};
use cluster::{Cluster, NodeId};
use librisk::libra::Libra;
use librisk::libra_risk::LibraRisk;
use librisk::policy::ShareAdmission;
use sim::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use workload::{Job, JobId, Urgency};

/// `System`, with every allocation and reallocation counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn job(id: u64, runtime: f64, estimate: f64, deadline: f64, submit: SimTime) -> Job {
    Job {
        id: JobId(id),
        submit,
        runtime: SimDuration::from_secs(runtime),
        estimate: SimDuration::from_secs(estimate),
        procs: 1,
        deadline: SimDuration::from_secs(deadline),
        urgency: Urgency::Low,
    }
}

/// Advances by a tiny positive step (well under the next event gap, so
/// residency never changes) purely to move the engine's global epoch:
/// the next decision lands on a fresh stamp, misses every whole-decision
/// memo, and exercises the full class rebuild + kernel path.
fn nudge(engine: &mut ProportionalCluster) {
    let now = engine.now();
    let gap = engine
        .next_event_time()
        .map(|t| (t - now).as_secs())
        .unwrap_or(1.0);
    engine.advance(now + SimDuration::from_secs((gap * 0.001).clamp(1e-6, 1.0)));
}

/// Runs `iters` varied decisions against `engine`, interleaved with
/// epoch-moving nudges, and returns `(allocations, accepts)` counted
/// around the `decide` calls only.
fn measure<P: ShareAdmission>(
    policy: &mut P,
    engine: &mut ProportionalCluster,
    iters: usize,
    base_est: f64,
    deadline: f64,
) -> (u64, u64) {
    let mut allocs = 0u64;
    let mut accepts = 0u64;
    for i in 0..iters {
        nudge(engine);
        // Vary the estimate so the candidate signature differs every
        // iteration: no memo can answer, classes are re-proven live.
        let j = job(
            90_000 + i as u64,
            100.0,
            base_est + i as f64,
            deadline,
            engine.now(),
        );
        let before = ALLOCS.load(Ordering::Relaxed);
        let d = policy.decide(engine, &j);
        allocs += ALLOCS.load(Ordering::Relaxed) - before;
        if d.is_some() {
            accepts += 1;
        }
    }
    (allocs, accepts)
}

#[test]
fn steady_state_decide_allocates_only_accepted_node_lists() {
    // Saturated regime: every node carries one heavy resident whose
    // estimate dwarfs its deadline, in 16 distinct shapes so the class
    // table, pairing and verdict kernel all stay busy. A tight-deadline
    // candidate is provably risky everywhere -> every decision rejects.
    let mut engine = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    let nodes = engine.cluster().len();
    for i in 0..nodes {
        let est = 20_000.0 + (i % 16) as f64 * 500.0;
        engine.admit(
            job(i as u64, 50_000.0, est, 3_000.0, SimTime::ZERO),
            vec![NodeId(i as u32)],
            SimTime::ZERO,
        );
    }
    let mut lr = LibraRisk::paper();
    let mut libra = Libra::new();
    // Warm-up sizes every cache: per-node class caches, class table,
    // projection workspace, the suitable-node worklist.
    measure(&mut lr, &mut engine, 48, 5_000.0, 800.0);
    measure(&mut libra, &mut engine, 48, 5_000.0, 800.0);
    let (lr_allocs, lr_accepts) = measure(&mut lr, &mut engine, 256, 5_000.0, 800.0);
    assert_eq!(lr_accepts, 0, "saturated cluster accepted a risky job");
    assert_eq!(
        lr_allocs, 0,
        "LibraRisk reject path allocated {lr_allocs} times over 256 decisions"
    );
    let (l_allocs, l_accepts) = measure(&mut libra, &mut engine, 256, 5_000.0, 800.0);
    assert_eq!(l_accepts, 0, "saturated cluster accepted an infeasible job");
    assert_eq!(
        l_allocs, 0,
        "Libra reject path allocated {l_allocs} times over 256 decisions"
    );

    // Lightly loaded regime: half the nodes empty, generous deadlines ->
    // every decision accepts. The only permitted allocation is the
    // returned node list itself (one per accept).
    let mut light = ProportionalCluster::new(Cluster::sdsc_sp2(), ProportionalConfig::default());
    for i in 0..nodes / 2 {
        let est = 100.0 + (i % 16) as f64 * 10.0;
        light.admit(
            job(i as u64, 90_000.0, est, 90_000.0, SimTime::ZERO),
            vec![NodeId(i as u32)],
            SimTime::ZERO,
        );
    }
    let mut lr = LibraRisk::paper();
    let mut libra = Libra::new();
    measure(&mut lr, &mut light, 48, 10.0, 50_000.0);
    measure(&mut libra, &mut light, 48, 10.0, 50_000.0);
    let (lr_allocs, lr_accepts) = measure(&mut lr, &mut light, 256, 10.0, 50_000.0);
    assert_eq!(lr_accepts, 256, "light cluster rejected a safe job");
    assert!(
        lr_allocs <= lr_accepts,
        "LibraRisk accept path allocated {lr_allocs} times for {lr_accepts} node lists"
    );
    let (l_allocs, l_accepts) = measure(&mut libra, &mut light, 256, 10.0, 50_000.0);
    assert_eq!(l_accepts, 256, "light cluster rejected a feasible job");
    assert!(
        l_allocs <= l_accepts,
        "Libra accept path allocated {l_allocs} times for {l_accepts} node lists"
    );
}
