//! Per-job outcomes and the aggregate report every experiment consumes.

use cluster::NodeId;
use obs::{keys, Registry};
use sim::SimTime;
use workload::{Job, Urgency};

pub use obs::RejectReason;

/// What happened to one submitted job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// The admission control turned the job away.
    Rejected {
        /// When the rejection happened (submission for Libra/LibraRisk;
        /// selection time for EDF's relaxed control).
        at: SimTime,
        /// The stable machine-readable cause.
        reason: RejectReason,
    },
    /// The job ran to completion (possibly past its deadline).
    Completed {
        /// When execution began.
        started: SimTime,
        /// When the actual work finished.
        finish: SimTime,
    },
    /// The job was accepted but died with a failed node (the `Kill`
    /// recovery policy, or no capacity story at all): the SLA is lost.
    Killed {
        /// The fault instant.
        at: SimTime,
        /// The node whose failure took the job down.
        node: NodeId,
    },
}

impl Outcome {
    /// The instant the outcome became final: the rejection instant, the
    /// completion finish, or the fault instant of a kill. Every event
    /// stream a single RMS emits is nondecreasing in this timestamp, so
    /// it is the merge key for combining shard streams in time order.
    pub fn resolved_at(&self) -> SimTime {
        match *self {
            Outcome::Rejected { at, .. } => at,
            Outcome::Completed { finish, .. } => finish,
            Outcome::Killed { at, .. } => at,
        }
    }
}

/// A job together with its outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// The submitted job.
    pub job: Job,
    /// What happened to it.
    pub outcome: Outcome,
}

impl JobRecord {
    /// `true` when the job completed within its hard deadline (the SLA).
    pub fn fulfilled(&self) -> bool {
        match self.outcome {
            Outcome::Rejected { .. } | Outcome::Killed { .. } => false,
            Outcome::Completed { finish, .. } => finish <= self.job.absolute_deadline(),
        }
    }

    /// Eq. 3: `max(0, (finish − submit) − deadline)`; `None` unless
    /// completed.
    pub fn delay(&self) -> Option<f64> {
        match self.outcome {
            Outcome::Rejected { .. } | Outcome::Killed { .. } => None,
            Outcome::Completed { finish, .. } => Some(
                ((finish - self.job.submit) - self.job.deadline)
                    .as_secs()
                    .max(0.0),
            ),
        }
    }

    /// Response time (`finish − submit`, includes waiting); `None` unless
    /// completed.
    pub fn response_time(&self) -> Option<f64> {
        match self.outcome {
            Outcome::Rejected { .. } | Outcome::Killed { .. } => None,
            Outcome::Completed { finish, .. } => Some((finish - self.job.submit).as_secs()),
        }
    }

    /// Slowdown: response time over minimum runtime required; `None`
    /// unless completed.
    pub fn slowdown(&self) -> Option<f64> {
        self.response_time().map(|r| r / self.job.runtime.as_secs())
    }
}

/// Node-churn degradation aggregates: how much damage the fault plan did
/// and how the recovery policy coped. Shards [`merge`](ChurnStats::merge)
/// exactly like the tallies they contain.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChurnStats {
    /// `NodeDown` events applied to the engine.
    pub node_failures: u64,
    /// `NodeUp` events applied to the engine.
    pub node_restores: u64,
    /// Resident jobs killed by a node failure (`RecoveryPolicy::Kill`).
    pub kills: u64,
    /// Resident jobs displaced and re-admitted (`RecoveryPolicy::Requeue`).
    pub requeues: u64,
    /// Requeued jobs the admission control then rejected *late* — the
    /// accepted-then-broken SLAs a risk-aware control should minimise.
    pub requeue_rejects: u64,
    /// Deadline-fulfilment of jobs that went through at least one
    /// requeue: the fulfilled-ratio-under-churn.
    pub requeued_fulfilled: metrics::Tally,
}

impl ChurnStats {
    /// Folds another shard's churn aggregates into this one.
    pub fn merge(&mut self, other: &ChurnStats) {
        self.node_failures += other.node_failures;
        self.node_restores += other.node_restores;
        self.kills += other.kills;
        self.requeues += other.requeues;
        self.requeue_rejects += other.requeue_rejects;
        self.requeued_fulfilled.merge(&other.requeued_fulfilled);
    }

    /// `true` when no churn touched the run (fault-free or empty plan).
    pub fn is_empty(&self) -> bool {
        self.node_failures == 0 && self.node_restores == 0
    }

    /// Feeds the churn aggregates into a metrics registry (counters
    /// overwrite-by-delta is pointless for a snapshot, so callers dump
    /// once per run).
    pub fn export_metrics(&self, registry: &mut Registry) {
        registry.add("rms_churn_node_failures_total", self.node_failures);
        registry.add("rms_churn_node_restores_total", self.node_restores);
        registry.add("rms_churn_kills_total", self.kills);
        registry.add("rms_churn_requeues_total", self.requeues);
        registry.add("rms_churn_requeue_rejects_total", self.requeue_rejects);
        registry.set_gauge(
            "rms_churn_requeued_fulfilled_pct",
            self.requeued_fulfilled.pct(),
        );
    }
}

/// Aggregate result of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulationReport {
    /// Name of the admission-control policy that produced the run.
    pub policy: String,
    /// One record per submitted job, in submission order.
    pub records: Vec<JobRecord>,
    /// Mean processor utilisation over the run.
    pub utilization: f64,
    /// Node-churn degradation aggregates (all-zero on fault-free runs).
    pub churn: ChurnStats,
}

impl SimulationReport {
    /// Number of submitted jobs.
    pub fn submitted(&self) -> usize {
        self.records.len()
    }

    /// Number of accepted jobs: everything the admission control let in,
    /// whether it later completed or died with a failed node.
    pub fn accepted(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    Outcome::Completed { .. } | Outcome::Killed { .. }
                )
            })
            .count()
    }

    /// Number of accepted jobs killed by node failures.
    pub fn killed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Killed { .. }))
            .count()
    }

    /// Number of rejected jobs.
    pub fn rejected(&self) -> usize {
        self.submitted() - self.accepted()
    }

    /// Rejection counts broken down by [`RejectReason`], indexed like
    /// [`RejectReason::ALL`].
    pub fn rejections_by_reason(&self) -> [usize; RejectReason::ALL.len()] {
        let mut counts = [0usize; RejectReason::ALL.len()];
        for r in &self.records {
            if let Outcome::Rejected { reason, .. } = r.outcome {
                counts[reason.index()] += 1;
            }
        }
        counts
    }

    /// Number of rejections with the given cause.
    pub fn rejected_for(&self, reason: RejectReason) -> usize {
        self.rejections_by_reason()[reason.index()]
    }

    /// Number of jobs completed within their deadline.
    pub fn fulfilled(&self) -> usize {
        self.records.iter().filter(|r| r.fulfilled()).count()
    }

    /// The paper's headline metric: jobs with deadlines fulfilled as a
    /// percentage of **all submitted** jobs.
    pub fn fulfilled_pct(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        100.0 * self.fulfilled() as f64 / self.submitted() as f64
    }

    /// The paper's second metric: mean slowdown over **fulfilled** jobs
    /// only (0 when none fulfilled).
    pub fn avg_slowdown(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.records {
            if r.fulfilled() {
                sum += r.slowdown().expect("fulfilled implies completed");
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean delay (Eq. 3) over completed jobs (0 when none completed).
    pub fn avg_delay(&self) -> f64 {
        let delays: Vec<f64> = self.records.iter().filter_map(|r| r.delay()).collect();
        if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        }
    }

    /// Number of completed jobs that missed their deadline.
    pub fn delayed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Completed { .. }) && !r.fulfilled())
            .count()
    }

    /// Fulfilled percentage restricted to one urgency class.
    pub fn fulfilled_pct_of(&self, urgency: Urgency) -> f64 {
        let class: Vec<&JobRecord> = self
            .records
            .iter()
            .filter(|r| r.job.urgency == urgency)
            .collect();
        if class.is_empty() {
            return 0.0;
        }
        100.0 * class.iter().filter(|r| r.fulfilled()).count() as f64 / class.len() as f64
    }

    /// Folds another shard's batch report into this one — the documented
    /// shard-merge path for the batch collector: run one
    /// [`ReportCollector`] per shard, build each shard's report, then
    /// fold them together.
    ///
    /// Records are concatenated (callers who need global submission
    /// order sort by their own key afterwards — per-shard `seq` values
    /// overlap), utilisation is averaged weighted by each side's record
    /// count (empty shards don't dilute the mean), and churn merges via
    /// [`ChurnStats::merge`]. Every derived statistic (counts,
    /// percentages, means) is then computed over the union of records,
    /// so merge order cannot change any of them. The policy name is
    /// kept from `self`; merging reports of different policies is a
    /// caller bug and panics in debug builds.
    pub fn merge(&mut self, other: &SimulationReport) {
        debug_assert_eq!(
            self.policy, other.policy,
            "merging reports of different policies"
        );
        let (w1, w2) = (self.records.len() as f64, other.records.len() as f64);
        if w1 + w2 > 0.0 {
            self.utilization = (self.utilization * w1 + other.utilization * w2) / (w1 + w2);
        }
        self.records.extend(other.records.iter().cloned());
        self.churn.merge(&other.churn);
    }
}

/// Streaming consumer of per-job outcomes.
///
/// The RMS facade emits one [`JobRecord`] per submitted job, in
/// *resolution* order (rejections at submission or selection time,
/// completions as they finish). `seq` is the job's submission sequence
/// number — submission order, 0-based — so sinks that need submission
/// order can restore it without the facade buffering anything.
pub trait ReportSink {
    /// One job's outcome became final. Called exactly once per submitted
    /// job.
    fn record(&mut self, seq: u64, record: JobRecord);
}

/// The batch sink: collects every record and reassembles the classic
/// [`SimulationReport`] (records in submission order) — exactly what the
/// retired per-loop report assembly produced.
#[derive(Clone, Debug, Default)]
pub struct ReportCollector {
    records: Vec<Option<JobRecord>>,
}

impl ReportCollector {
    /// An empty collector.
    pub fn new() -> Self {
        ReportCollector::default()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the collector into a full report.
    ///
    /// # Panics
    /// Panics if any submitted job never resolved (a facade bug).
    pub fn into_report(self, policy: String, utilization: f64) -> SimulationReport {
        let records: Vec<JobRecord> = self
            .records
            .into_iter()
            .map(|r| r.expect("every submitted job resolves to exactly one outcome"))
            .collect();
        SimulationReport {
            policy,
            records,
            utilization,
            churn: ChurnStats::default(),
        }
    }
}

impl ReportSink for ReportCollector {
    fn record(&mut self, seq: u64, record: JobRecord) {
        let i = seq as usize;
        if i >= self.records.len() {
            self.records.resize(i + 1, None);
        }
        assert!(self.records[i].is_none(), "job {seq} resolved twice");
        self.records[i] = Some(record);
    }
}

/// The streaming sink: folds each record into O(1) online aggregates
/// (counts, [`metrics::Tally`] rates, Welford moments) so arbitrarily
/// long traces summarise without a per-job outcome buffer.
///
/// Accessors mirror [`SimulationReport`]'s; means are Welford means, so
/// they may differ from the batch report's naive sums in the last few
/// ulps — everything else (counts, percentages) is identical.
#[derive(Clone, Debug, Default)]
pub struct OnlineReport {
    fulfilled: metrics::Tally,
    accepted: metrics::Tally,
    high_fulfilled: metrics::Tally,
    low_fulfilled: metrics::Tally,
    slowdown: metrics::OnlineStats,
    delay: metrics::OnlineStats,
    response: metrics::OnlineStats,
    killed: u64,
    reject_reasons: [u64; RejectReason::ALL.len()],
    churn: ChurnStats,
    utilization: f64,
}

impl OnlineReport {
    /// An empty summary.
    pub fn new() -> Self {
        OnlineReport::default()
    }

    /// Sets the run's mean utilisation (available from the engine only
    /// after the drain).
    pub fn set_utilization(&mut self, utilization: f64) {
        self.utilization = utilization;
    }

    /// Mean processor utilisation of the run.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Number of submitted jobs.
    pub fn submitted(&self) -> u64 {
        self.fulfilled.total()
    }

    /// Number of accepted jobs (completed or killed by a node failure).
    pub fn accepted(&self) -> u64 {
        self.accepted.hits()
    }

    /// Number of accepted jobs killed by node failures.
    pub fn killed(&self) -> u64 {
        self.killed
    }

    /// Number of rejected jobs.
    pub fn rejected(&self) -> u64 {
        self.accepted.total() - self.accepted.hits()
    }

    /// Number of jobs completed within their deadline.
    pub fn fulfilled(&self) -> u64 {
        self.fulfilled.hits()
    }

    /// Rejection counts broken down by [`RejectReason`], indexed like
    /// [`RejectReason::ALL`].
    pub fn rejections_by_reason(&self) -> [u64; RejectReason::ALL.len()] {
        self.reject_reasons
    }

    /// Number of rejections with the given cause.
    pub fn rejected_for(&self, reason: RejectReason) -> u64 {
        self.reject_reasons[reason.index()]
    }

    /// Number of completed jobs that missed their deadline.
    pub fn delayed(&self) -> u64 {
        self.accepted() - self.killed() - self.fulfilled()
    }

    /// The paper's headline metric: % of submitted jobs fulfilled.
    pub fn fulfilled_pct(&self) -> f64 {
        self.fulfilled.pct()
    }

    /// Mean slowdown over fulfilled jobs (0 when none fulfilled).
    pub fn avg_slowdown(&self) -> f64 {
        self.slowdown.mean()
    }

    /// Mean deadline delay (Eq. 3) over completed jobs.
    pub fn avg_delay(&self) -> f64 {
        self.delay.mean()
    }

    /// Mean response time over completed jobs.
    pub fn avg_response_time(&self) -> f64 {
        self.response.mean()
    }

    /// Fulfilled percentage restricted to one urgency class.
    pub fn fulfilled_pct_of(&self, urgency: Urgency) -> f64 {
        match urgency {
            Urgency::High => self.high_fulfilled.pct(),
            Urgency::Low => self.low_fulfilled.pct(),
        }
    }

    /// Node-churn degradation aggregates (set by the RMS after a run).
    pub fn churn(&self) -> &ChurnStats {
        &self.churn
    }

    /// Installs the run's churn aggregates (available from the RMS only
    /// after the drain, like utilisation).
    pub fn set_churn(&mut self, churn: ChurnStats) {
        self.churn = churn;
    }

    /// Folds another shard's summary into this one, so a sharded sweep
    /// can summarise per-worker and combine afterwards. Utilisation is
    /// averaged weighted by submitted jobs; everything else merges via
    /// the underlying tallies and Welford moments.
    pub fn merge(&mut self, other: &OnlineReport) {
        let (w1, w2) = (self.submitted() as f64, other.submitted() as f64);
        if w1 + w2 > 0.0 {
            self.utilization = (self.utilization * w1 + other.utilization * w2) / (w1 + w2);
        }
        self.fulfilled.merge(&other.fulfilled);
        self.accepted.merge(&other.accepted);
        self.high_fulfilled.merge(&other.high_fulfilled);
        self.low_fulfilled.merge(&other.low_fulfilled);
        self.slowdown.merge(&other.slowdown);
        self.delay.merge(&other.delay);
        self.response.merge(&other.response);
        self.killed += other.killed;
        for (mine, theirs) in self.reject_reasons.iter_mut().zip(&other.reject_reasons) {
            *mine += theirs;
        }
        self.churn.merge(&other.churn);
    }

    /// Feeds the summary into a metrics registry — the bridge between
    /// the streaming report and the Prometheus-style dump.
    pub fn export_metrics(&self, registry: &mut Registry) {
        registry.add(keys::DECISIONS, self.submitted());
        registry.add(keys::ACCEPTED, self.accepted());
        registry.add(keys::REJECTED, self.rejected());
        registry.add(keys::RESOLVED, self.submitted());
        registry.add(keys::FULFILLED, self.fulfilled());
        registry.add(keys::OVERDUE, self.delayed());
        registry.add(keys::KILLED, self.killed());
        for reason in RejectReason::ALL {
            let n = self.rejected_for(reason);
            if n > 0 {
                registry.add(reason.counter_key(), n);
            }
        }
        registry.set_gauge(keys::UTILIZATION, self.utilization());
        if !self.churn.is_empty() {
            self.churn.export_metrics(registry);
        }
    }

    /// Extracts the raw aggregate parts for checkpoint serialisation.
    /// [`OnlineReport::from_parts`] is the exact inverse, so a
    /// checkpointed summary resumes bitwise identical.
    pub fn to_parts(&self) -> OnlineReportParts {
        OnlineReportParts {
            fulfilled: self.fulfilled,
            accepted: self.accepted,
            high_fulfilled: self.high_fulfilled,
            low_fulfilled: self.low_fulfilled,
            slowdown: self.slowdown,
            delay: self.delay,
            response: self.response,
            killed: self.killed,
            reject_reasons: self.reject_reasons,
            churn: self.churn,
            utilization: self.utilization,
        }
    }

    /// Rebuilds a summary from checkpointed parts.
    pub fn from_parts(parts: OnlineReportParts) -> Self {
        OnlineReport {
            fulfilled: parts.fulfilled,
            accepted: parts.accepted,
            high_fulfilled: parts.high_fulfilled,
            low_fulfilled: parts.low_fulfilled,
            slowdown: parts.slowdown,
            delay: parts.delay,
            response: parts.response,
            killed: parts.killed,
            reject_reasons: parts.reject_reasons,
            churn: parts.churn,
            utilization: parts.utilization,
        }
    }
}

/// The raw aggregates behind an [`OnlineReport`], exposed as plain data
/// so the checkpoint layer can serialise a summary without the report
/// giving up encapsulation of its update paths.
#[derive(Clone, Copy, Debug)]
pub struct OnlineReportParts {
    /// Deadline fulfilment over all submitted jobs.
    pub fulfilled: metrics::Tally,
    /// Acceptance over all submitted jobs.
    pub accepted: metrics::Tally,
    /// Fulfilment restricted to high-urgency jobs.
    pub high_fulfilled: metrics::Tally,
    /// Fulfilment restricted to low-urgency jobs.
    pub low_fulfilled: metrics::Tally,
    /// Welford moments of slowdown over fulfilled jobs.
    pub slowdown: metrics::OnlineStats,
    /// Welford moments of deadline delay over completed jobs.
    pub delay: metrics::OnlineStats,
    /// Welford moments of response time over completed jobs.
    pub response: metrics::OnlineStats,
    /// Jobs killed by node failures.
    pub killed: u64,
    /// Rejections by [`RejectReason`], indexed like [`RejectReason::ALL`].
    pub reject_reasons: [u64; RejectReason::ALL.len()],
    /// Node-churn degradation aggregates.
    pub churn: ChurnStats,
    /// Mean processor utilisation.
    pub utilization: f64,
}

impl ReportSink for OnlineReport {
    fn record(&mut self, _seq: u64, record: JobRecord) {
        let fulfilled = record.fulfilled();
        self.fulfilled.observe(fulfilled);
        self.accepted.observe(matches!(
            record.outcome,
            Outcome::Completed { .. } | Outcome::Killed { .. }
        ));
        if matches!(record.outcome, Outcome::Killed { .. }) {
            self.killed += 1;
        }
        if let Outcome::Rejected { reason, .. } = record.outcome {
            self.reject_reasons[reason.index()] += 1;
        }
        match record.job.urgency {
            Urgency::High => self.high_fulfilled.observe(fulfilled),
            Urgency::Low => self.low_fulfilled.observe(fulfilled),
        }
        if fulfilled {
            self.slowdown
                .push(record.slowdown().expect("fulfilled implies completed"));
        }
        if let Some(d) = record.delay() {
            self.delay.push(d);
        }
        if let Some(r) = record.response_time() {
            self.response.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;
    use workload::JobId;

    fn job(id: u64, submit: f64, runtime: f64, deadline: f64, urgency: Urgency) -> Job {
        Job {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime),
            procs: 1,
            deadline: SimDuration::from_secs(deadline),
            urgency,
        }
    }

    fn completed(j: Job, finish: f64) -> JobRecord {
        JobRecord {
            outcome: Outcome::Completed {
                started: j.submit,
                finish: SimTime::from_secs(finish),
            },
            job: j,
        }
    }

    fn rejected(j: Job) -> JobRecord {
        JobRecord {
            outcome: Outcome::Rejected {
                at: j.submit,
                reason: RejectReason::NoFit,
            },
            job: j,
        }
    }

    fn killed(j: Job, at: f64) -> JobRecord {
        JobRecord {
            outcome: Outcome::Killed {
                at: SimTime::from_secs(at),
                node: NodeId(3),
            },
            job: j,
        }
    }

    #[test]
    fn fulfilment_respects_hard_deadline() {
        // Deadline at 100+200=300.
        let on_time = completed(job(1, 100.0, 50.0, 200.0, Urgency::Low), 300.0);
        assert!(on_time.fulfilled());
        assert_eq!(on_time.delay(), Some(0.0));
        let late = completed(job(2, 100.0, 50.0, 200.0, Urgency::Low), 300.1);
        assert!(!late.fulfilled());
        assert!((late.delay().unwrap() - 0.1).abs() < 1e-9);
        assert!(!rejected(job(3, 0.0, 1.0, 2.0, Urgency::Low)).fulfilled());
    }

    #[test]
    fn slowdown_is_response_over_runtime() {
        let r = completed(job(1, 100.0, 50.0, 500.0, Urgency::Low), 250.0);
        assert_eq!(r.response_time(), Some(150.0));
        assert_eq!(r.slowdown(), Some(3.0));
        assert_eq!(
            rejected(job(2, 0.0, 1.0, 2.0, Urgency::Low)).slowdown(),
            None
        );
    }

    #[test]
    fn report_aggregates() {
        let report = SimulationReport {
            policy: "test".into(),
            records: vec![
                completed(job(1, 0.0, 100.0, 200.0, Urgency::High), 150.0), // fulfilled
                completed(job(2, 0.0, 100.0, 200.0, Urgency::Low), 260.0),  // late by 60
                rejected(job(3, 0.0, 100.0, 200.0, Urgency::Low)),
            ],
            utilization: 0.5,
            churn: ChurnStats::default(),
        };
        assert_eq!(report.submitted(), 3);
        assert_eq!(report.accepted(), 2);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.fulfilled(), 1);
        assert_eq!(report.delayed(), 1);
        assert!((report.fulfilled_pct() - 100.0 / 3.0).abs() < 1e-9);
        // Slowdown only over the fulfilled job: 150/100.
        assert!((report.avg_slowdown() - 1.5).abs() < 1e-9);
        // Delay averaged over the two completed jobs: (0 + 60)/2.
        assert!((report.avg_delay() - 30.0).abs() < 1e-9);
        assert_eq!(report.fulfilled_pct_of(Urgency::High), 100.0);
        assert_eq!(report.fulfilled_pct_of(Urgency::Low), 0.0);
    }

    #[test]
    fn collector_restores_submission_order() {
        let mut sink = ReportCollector::new();
        assert!(sink.is_empty());
        // Records arrive in resolution order; seq restores submission order.
        sink.record(
            1,
            completed(job(11, 0.0, 100.0, 200.0, Urgency::Low), 150.0),
        );
        sink.record(0, rejected(job(10, 0.0, 100.0, 200.0, Urgency::Low)));
        assert_eq!(sink.len(), 2);
        let report = sink.into_report("p".into(), 0.25);
        assert_eq!(report.records[0].job.id, JobId(10));
        assert_eq!(report.records[1].job.id, JobId(11));
        assert_eq!(report.utilization, 0.25);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn collector_rejects_double_resolution() {
        let mut sink = ReportCollector::new();
        sink.record(0, rejected(job(1, 0.0, 1.0, 2.0, Urgency::Low)));
        sink.record(0, rejected(job(1, 0.0, 1.0, 2.0, Urgency::Low)));
    }

    #[test]
    fn online_report_matches_batch_aggregates() {
        let records = vec![
            completed(job(1, 0.0, 100.0, 200.0, Urgency::High), 150.0),
            completed(job(2, 0.0, 100.0, 200.0, Urgency::Low), 260.0),
            rejected(job(3, 0.0, 100.0, 200.0, Urgency::Low)),
        ];
        let batch = SimulationReport {
            policy: "test".into(),
            records: records.clone(),
            utilization: 0.5,
            churn: ChurnStats::default(),
        };
        let mut online = OnlineReport::new();
        for (i, r) in records.into_iter().enumerate() {
            online.record(i as u64, r);
        }
        online.set_utilization(0.5);
        assert_eq!(online.submitted(), batch.submitted() as u64);
        assert_eq!(online.accepted(), batch.accepted() as u64);
        assert_eq!(online.rejected(), batch.rejected() as u64);
        assert_eq!(online.fulfilled(), batch.fulfilled() as u64);
        assert_eq!(online.delayed(), batch.delayed() as u64);
        assert!((online.fulfilled_pct() - batch.fulfilled_pct()).abs() < 1e-12);
        assert!((online.avg_slowdown() - batch.avg_slowdown()).abs() < 1e-12);
        assert!((online.avg_delay() - batch.avg_delay()).abs() < 1e-12);
        assert_eq!(online.fulfilled_pct_of(Urgency::High), 100.0);
        assert_eq!(online.fulfilled_pct_of(Urgency::Low), 0.0);
        assert_eq!(online.utilization(), 0.5);
    }

    #[test]
    fn killed_jobs_are_accepted_but_never_fulfilled() {
        let k = killed(job(1, 0.0, 100.0, 1000.0, Urgency::High), 40.0);
        assert!(!k.fulfilled());
        assert_eq!(k.delay(), None);
        assert_eq!(k.response_time(), None);
        assert_eq!(k.slowdown(), None);

        let report = SimulationReport {
            policy: "churn".into(),
            records: vec![
                completed(job(1, 0.0, 100.0, 200.0, Urgency::High), 150.0),
                killed(job(2, 0.0, 100.0, 1000.0, Urgency::Low), 40.0),
                rejected(job(3, 0.0, 100.0, 200.0, Urgency::Low)),
            ],
            utilization: 0.5,
            churn: ChurnStats::default(),
        };
        // The killed job counts as accepted (its SLA was taken on) but
        // neither fulfilled nor delayed (it never completed).
        assert_eq!(report.accepted(), 2);
        assert_eq!(report.killed(), 1);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.fulfilled(), 1);
        assert_eq!(report.delayed(), 0);

        let mut online = OnlineReport::new();
        for (i, r) in report.records.iter().cloned().enumerate() {
            online.record(i as u64, r);
        }
        assert_eq!(online.accepted(), 2);
        assert_eq!(online.killed(), 1);
        assert_eq!(online.rejected(), 1);
        assert_eq!(online.delayed(), 0);
    }

    #[test]
    fn churn_stats_merge_adds_shards() {
        let mut a = ChurnStats {
            node_failures: 2,
            node_restores: 1,
            kills: 3,
            requeues: 4,
            requeue_rejects: 1,
            requeued_fulfilled: metrics::Tally::default(),
        };
        a.requeued_fulfilled.observe(true);
        let mut b = ChurnStats {
            node_failures: 1,
            ..ChurnStats::default()
        };
        b.requeued_fulfilled.observe(false);
        a.merge(&b);
        assert_eq!(a.node_failures, 3);
        assert_eq!(a.node_restores, 1);
        assert_eq!(a.kills, 3);
        assert_eq!(a.requeues, 4);
        assert_eq!(a.requeue_rejects, 1);
        assert_eq!(a.requeued_fulfilled.total(), 2);
        assert_eq!(a.requeued_fulfilled.hits(), 1);
        assert!(!a.is_empty());
        assert!(ChurnStats::default().is_empty());
    }

    #[test]
    fn online_report_merge_matches_single_pass() {
        let records = [
            completed(job(1, 0.0, 100.0, 200.0, Urgency::High), 150.0),
            completed(job(2, 0.0, 100.0, 200.0, Urgency::Low), 260.0),
            rejected(job(3, 0.0, 100.0, 200.0, Urgency::Low)),
            killed(job(4, 0.0, 100.0, 400.0, Urgency::High), 50.0),
        ];
        let mut whole = OnlineReport::new();
        for (i, r) in records.iter().cloned().enumerate() {
            whole.record(i as u64, r);
        }
        whole.set_utilization(0.5);

        // Split the same records across two shards and merge.
        let (mut left, mut right) = (OnlineReport::new(), OnlineReport::new());
        for (i, r) in records.iter().cloned().enumerate() {
            if i < 2 {
                left.record(i as u64, r);
            } else {
                right.record(i as u64, r);
            }
        }
        left.set_utilization(0.6);
        right.set_utilization(0.4);
        right.set_churn(ChurnStats {
            node_failures: 1,
            kills: 1,
            ..ChurnStats::default()
        });
        left.merge(&right);

        assert_eq!(left.submitted(), whole.submitted());
        assert_eq!(left.accepted(), whole.accepted());
        assert_eq!(left.killed(), whole.killed());
        assert_eq!(left.rejected(), whole.rejected());
        assert_eq!(left.fulfilled(), whole.fulfilled());
        assert_eq!(left.delayed(), whole.delayed());
        assert!((left.fulfilled_pct() - whole.fulfilled_pct()).abs() < 1e-12);
        assert!((left.avg_slowdown() - whole.avg_slowdown()).abs() < 1e-12);
        assert!((left.avg_delay() - whole.avg_delay()).abs() < 1e-12);
        // Weighted utilisation: (0.6·2 + 0.4·2) / 4.
        assert!((left.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(left.churn().node_failures, 1);
        assert_eq!(left.churn().kills, 1);
    }

    #[test]
    fn rejection_reasons_are_tallied_everywhere() {
        let mut over_risk = rejected(job(4, 0.0, 100.0, 200.0, Urgency::Low));
        over_risk.outcome = Outcome::Rejected {
            at: SimTime::ZERO,
            reason: RejectReason::OverRisk,
        };
        let records = vec![
            completed(job(1, 0.0, 100.0, 200.0, Urgency::High), 150.0),
            rejected(job(2, 0.0, 100.0, 200.0, Urgency::Low)),
            rejected(job(3, 0.0, 100.0, 200.0, Urgency::Low)),
            over_risk,
        ];
        let batch = SimulationReport {
            policy: "test".into(),
            records: records.clone(),
            utilization: 0.5,
            churn: ChurnStats::default(),
        };
        assert_eq!(batch.rejected_for(RejectReason::NoFit), 2);
        assert_eq!(batch.rejected_for(RejectReason::OverRisk), 1);
        assert_eq!(batch.rejected_for(RejectReason::Width), 0);
        assert_eq!(batch.rejections_by_reason().iter().sum::<usize>(), 3);

        let mut online = OnlineReport::new();
        for (i, r) in records.into_iter().enumerate() {
            online.record(i as u64, r);
        }
        assert_eq!(online.rejected_for(RejectReason::NoFit), 2);
        assert_eq!(online.rejected_for(RejectReason::OverRisk), 1);
        assert_eq!(online.rejections_by_reason().iter().sum::<u64>(), 3);

        // Merge adds the breakdowns.
        let mut other = OnlineReport::new();
        other.record(0, rejected(job(9, 0.0, 1.0, 2.0, Urgency::Low)));
        online.merge(&other);
        assert_eq!(online.rejected_for(RejectReason::NoFit), 3);

        // And the registry export carries them.
        let mut registry = Registry::new();
        online.export_metrics(&mut registry);
        assert_eq!(registry.counter(keys::REJECTED), 4);
        assert_eq!(
            registry.counter(RejectReason::NoFit.counter_key()),
            3,
            "{}",
            registry.to_prometheus()
        );
        assert_eq!(registry.counter(RejectReason::Width.counter_key()), 0);
    }

    #[test]
    fn churn_stats_export_metrics() {
        let mut churn = ChurnStats {
            node_failures: 2,
            node_restores: 1,
            kills: 1,
            requeues: 3,
            requeue_rejects: 1,
            requeued_fulfilled: metrics::Tally::default(),
        };
        churn.requeued_fulfilled.observe(true);
        churn.requeued_fulfilled.observe(false);
        let mut registry = Registry::new();
        churn.export_metrics(&mut registry);
        assert_eq!(registry.counter("rms_churn_node_failures_total"), 2);
        assert_eq!(registry.counter("rms_churn_requeues_total"), 3);
        assert_eq!(
            registry.gauge("rms_churn_requeued_fulfilled_pct"),
            Some(50.0)
        );
    }

    #[test]
    fn empty_report_is_benign() {
        let report = SimulationReport {
            policy: "empty".into(),
            records: vec![],
            utilization: 0.0,
            churn: ChurnStats::default(),
        };
        assert_eq!(report.fulfilled_pct(), 0.0);
        assert_eq!(report.avg_slowdown(), 0.0);
        assert_eq!(report.avg_delay(), 0.0);
        assert_eq!(report.fulfilled_pct_of(Urgency::High), 0.0);
    }
}
