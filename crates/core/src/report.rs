//! Per-job outcomes and the aggregate report every experiment consumes.

use sim::SimTime;
use workload::{Job, Urgency};

/// What happened to one submitted job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// The admission control turned the job away.
    Rejected {
        /// When the rejection happened (submission for Libra/LibraRisk;
        /// selection time for EDF's relaxed control).
        at: SimTime,
    },
    /// The job ran to completion (possibly past its deadline).
    Completed {
        /// When execution began.
        started: SimTime,
        /// When the actual work finished.
        finish: SimTime,
    },
}

/// A job together with its outcome.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The submitted job.
    pub job: Job,
    /// What happened to it.
    pub outcome: Outcome,
}

impl JobRecord {
    /// `true` when the job completed within its hard deadline (the SLA).
    pub fn fulfilled(&self) -> bool {
        match self.outcome {
            Outcome::Rejected { .. } => false,
            Outcome::Completed { finish, .. } => finish <= self.job.absolute_deadline(),
        }
    }

    /// Eq. 3: `max(0, (finish − submit) − deadline)`; `None` if rejected.
    pub fn delay(&self) -> Option<f64> {
        match self.outcome {
            Outcome::Rejected { .. } => None,
            Outcome::Completed { finish, .. } => {
                Some(((finish - self.job.submit) - self.job.deadline).as_secs().max(0.0))
            }
        }
    }

    /// Response time (`finish − submit`, includes waiting); `None` if
    /// rejected.
    pub fn response_time(&self) -> Option<f64> {
        match self.outcome {
            Outcome::Rejected { .. } => None,
            Outcome::Completed { finish, .. } => Some((finish - self.job.submit).as_secs()),
        }
    }

    /// Slowdown: response time over minimum runtime required; `None` if
    /// rejected.
    pub fn slowdown(&self) -> Option<f64> {
        self.response_time().map(|r| r / self.job.runtime.as_secs())
    }
}

/// Aggregate result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Name of the admission-control policy that produced the run.
    pub policy: String,
    /// One record per submitted job, in submission order.
    pub records: Vec<JobRecord>,
    /// Mean processor utilisation over the run.
    pub utilization: f64,
}

impl SimulationReport {
    /// Number of submitted jobs.
    pub fn submitted(&self) -> usize {
        self.records.len()
    }

    /// Number of accepted (completed) jobs.
    pub fn accepted(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Completed { .. }))
            .count()
    }

    /// Number of rejected jobs.
    pub fn rejected(&self) -> usize {
        self.submitted() - self.accepted()
    }

    /// Number of jobs completed within their deadline.
    pub fn fulfilled(&self) -> usize {
        self.records.iter().filter(|r| r.fulfilled()).count()
    }

    /// The paper's headline metric: jobs with deadlines fulfilled as a
    /// percentage of **all submitted** jobs.
    pub fn fulfilled_pct(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        100.0 * self.fulfilled() as f64 / self.submitted() as f64
    }

    /// The paper's second metric: mean slowdown over **fulfilled** jobs
    /// only (0 when none fulfilled).
    pub fn avg_slowdown(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.records {
            if r.fulfilled() {
                sum += r.slowdown().expect("fulfilled implies completed");
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean delay (Eq. 3) over completed jobs (0 when none completed).
    pub fn avg_delay(&self) -> f64 {
        let delays: Vec<f64> = self.records.iter().filter_map(|r| r.delay()).collect();
        if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        }
    }

    /// Number of completed jobs that missed their deadline.
    pub fn delayed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Completed { .. }) && !r.fulfilled())
            .count()
    }

    /// Fulfilled percentage restricted to one urgency class.
    pub fn fulfilled_pct_of(&self, urgency: Urgency) -> f64 {
        let class: Vec<&JobRecord> = self
            .records
            .iter()
            .filter(|r| r.job.urgency == urgency)
            .collect();
        if class.is_empty() {
            return 0.0;
        }
        100.0 * class.iter().filter(|r| r.fulfilled()).count() as f64 / class.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;
    use workload::JobId;

    fn job(id: u64, submit: f64, runtime: f64, deadline: f64, urgency: Urgency) -> Job {
        Job {
            id: JobId(id),
            submit: SimTime::from_secs(submit),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime),
            procs: 1,
            deadline: SimDuration::from_secs(deadline),
            urgency,
        }
    }

    fn completed(j: Job, finish: f64) -> JobRecord {
        JobRecord {
            outcome: Outcome::Completed {
                started: j.submit,
                finish: SimTime::from_secs(finish),
            },
            job: j,
        }
    }

    fn rejected(j: Job) -> JobRecord {
        JobRecord {
            outcome: Outcome::Rejected { at: j.submit },
            job: j,
        }
    }

    #[test]
    fn fulfilment_respects_hard_deadline() {
        // Deadline at 100+200=300.
        let on_time = completed(job(1, 100.0, 50.0, 200.0, Urgency::Low), 300.0);
        assert!(on_time.fulfilled());
        assert_eq!(on_time.delay(), Some(0.0));
        let late = completed(job(2, 100.0, 50.0, 200.0, Urgency::Low), 300.1);
        assert!(!late.fulfilled());
        assert!((late.delay().unwrap() - 0.1).abs() < 1e-9);
        assert!(!rejected(job(3, 0.0, 1.0, 2.0, Urgency::Low)).fulfilled());
    }

    #[test]
    fn slowdown_is_response_over_runtime() {
        let r = completed(job(1, 100.0, 50.0, 500.0, Urgency::Low), 250.0);
        assert_eq!(r.response_time(), Some(150.0));
        assert_eq!(r.slowdown(), Some(3.0));
        assert_eq!(rejected(job(2, 0.0, 1.0, 2.0, Urgency::Low)).slowdown(), None);
    }

    #[test]
    fn report_aggregates() {
        let report = SimulationReport {
            policy: "test".into(),
            records: vec![
                completed(job(1, 0.0, 100.0, 200.0, Urgency::High), 150.0), // fulfilled
                completed(job(2, 0.0, 100.0, 200.0, Urgency::Low), 260.0),  // late by 60
                rejected(job(3, 0.0, 100.0, 200.0, Urgency::Low)),
            ],
            utilization: 0.5,
        };
        assert_eq!(report.submitted(), 3);
        assert_eq!(report.accepted(), 2);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.fulfilled(), 1);
        assert_eq!(report.delayed(), 1);
        assert!((report.fulfilled_pct() - 100.0 / 3.0).abs() < 1e-9);
        // Slowdown only over the fulfilled job: 150/100.
        assert!((report.avg_slowdown() - 1.5).abs() < 1e-9);
        // Delay averaged over the two completed jobs: (0 + 60)/2.
        assert!((report.avg_delay() - 30.0).abs() < 1e-9);
        assert_eq!(report.fulfilled_pct_of(Urgency::High), 100.0);
        assert_eq!(report.fulfilled_pct_of(Urgency::Low), 0.0);
    }

    #[test]
    fn empty_report_is_benign() {
        let report = SimulationReport {
            policy: "empty".into(),
            records: vec![],
            utilization: 0.0,
        };
        assert_eq!(report.fulfilled_pct(), 0.0);
        assert_eq!(report.avg_slowdown(), 0.0);
        assert_eq!(report.avg_delay(), 0.0);
        assert_eq!(report.fulfilled_pct_of(Urgency::High), 0.0);
    }
}
