//! Computation-at-Risk (CaR) analytics — the related-work risk framing
//! the paper contrasts itself against (§2: Kleban & Clearwater, IPDPS'04
//! / Cluster'04).
//!
//! CaR transplants Value-at-Risk from finance to job portfolios: "the
//! risk of completing jobs later than expected", quantified on either the
//! **makespan** (response time) or the **expansion factor** (slowdown) of
//! all jobs in the cluster. Where LibraRisk asks *before admission*
//! whether a node's projected deadline-delays disperse, CaR *describes
//! the realised portfolio*: the q-quantile of the chosen lateness measure
//! (the at-risk level) and the expected excess beyond it (the shortfall).
//!
//! Implementing both lets the experiments compare the admission controls
//! on the related work's own terms — e.g. LibraRisk does not only fulfil
//! more deadlines, it also carries a smaller expansion-factor tail.

use crate::report::SimulationReport;
use metrics::percentile::quantile;

/// Which lateness measure the CaR quantities are computed over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CarMeasure {
    /// Response time (`finish − submit`), seconds — CaR's "makespan".
    Makespan,
    /// Slowdown (`response / runtime`) — CaR's "expansion factor".
    ExpansionFactor,
    /// Realised deadline-delay metric (Eq. 4 of the paper, evaluated at
    /// submission: `(delay + deadline) / deadline`, ≥ 1).
    DeadlineDelay,
}

impl CarMeasure {
    /// Extracts the measure for every completed job.
    pub fn samples(&self, report: &SimulationReport) -> Vec<f64> {
        report
            .records
            .iter()
            .filter_map(|r| {
                let response = r.response_time()?;
                Some(match self {
                    CarMeasure::Makespan => response,
                    CarMeasure::ExpansionFactor => response / r.job.runtime.as_secs(),
                    CarMeasure::DeadlineDelay => {
                        let delay = r.delay().expect("completed");
                        let deadline = r.job.deadline.as_secs();
                        (delay + deadline) / deadline
                    }
                })
            })
            .collect()
    }
}

/// The CaR summary of one simulation run for one measure.
#[derive(Clone, Copy, Debug)]
pub struct CarAnalysis {
    /// The measure analysed.
    pub measure: CarMeasure,
    /// Quantile level used (e.g. 0.95).
    pub level: f64,
    /// Completed jobs the analysis covers.
    pub jobs: usize,
    /// Mean of the measure.
    pub mean: f64,
    /// The at-risk value: the `level`-quantile of the measure.
    pub value_at_risk: f64,
    /// Expected shortfall: mean of the samples at or beyond the VaR
    /// (the tail the provider actually pays for).
    pub expected_shortfall: f64,
}

/// Computes the CaR summary of a report.
///
/// Returns `None` when no job completed.
///
/// # Panics
/// Panics if `level` is outside `(0, 1)`.
pub fn computation_at_risk(
    report: &SimulationReport,
    measure: CarMeasure,
    level: f64,
) -> Option<CarAnalysis> {
    assert!(
        level > 0.0 && level < 1.0,
        "level must be in (0,1), got {level}"
    );
    let samples = measure.samples(report);
    if samples.is_empty() {
        return None;
    }
    let var = quantile(&samples, level).expect("non-empty");
    let tail: Vec<f64> = samples.iter().copied().filter(|&x| x >= var).collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let expected_shortfall = tail.iter().sum::<f64>() / tail.len() as f64;
    Some(CarAnalysis {
        measure,
        level,
        jobs: samples.len(),
        mean,
        value_at_risk: var,
        expected_shortfall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{JobRecord, Outcome};
    use sim::{SimDuration, SimTime};
    use workload::{Job, JobId, Urgency};

    fn completed(id: u64, runtime: f64, deadline: f64, response: f64) -> JobRecord {
        let job = Job {
            id: JobId(id),
            submit: SimTime::from_secs(100.0),
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(runtime),
            procs: 1,
            deadline: SimDuration::from_secs(deadline),
            urgency: Urgency::Low,
        };
        JobRecord {
            outcome: Outcome::Completed {
                started: job.submit,
                finish: job.submit + SimDuration::from_secs(response),
            },
            job,
        }
    }

    fn report(records: Vec<JobRecord>) -> SimulationReport {
        SimulationReport {
            policy: "test".into(),
            records,
            utilization: 0.5,
            churn: Default::default(),
        }
    }

    #[test]
    fn samples_extract_each_measure() {
        let r = report(vec![completed(0, 100.0, 300.0, 200.0)]);
        assert_eq!(CarMeasure::Makespan.samples(&r), vec![200.0]);
        assert_eq!(CarMeasure::ExpansionFactor.samples(&r), vec![2.0]);
        // delay = max(0, 200 - 300) = 0 → dd = 1.
        assert_eq!(CarMeasure::DeadlineDelay.samples(&r), vec![1.0]);
        // A late job: response 500, deadline 300 → delay 200, dd = 5/3.
        let late = report(vec![completed(1, 100.0, 300.0, 500.0)]);
        let dd = CarMeasure::DeadlineDelay.samples(&late)[0];
        assert!((dd - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejected_jobs_are_excluded() {
        let mut records = vec![completed(0, 100.0, 300.0, 200.0)];
        records.push(JobRecord {
            outcome: Outcome::Rejected {
                at: SimTime::from_secs(100.0),
                reason: crate::report::RejectReason::NoFit,
            },
            job: records[0].job.clone(),
        });
        let r = report(records);
        assert_eq!(CarMeasure::Makespan.samples(&r).len(), 1);
    }

    #[test]
    fn var_and_shortfall_match_hand_computation() {
        // Responses 100..=1000 step 100: the 0.9-quantile (type-7) is 910;
        // tail {1000} → shortfall 1000.
        let records: Vec<JobRecord> = (1..=10)
            .map(|i| completed(i, 100.0, 1e6, 100.0 * i as f64))
            .collect();
        let car = computation_at_risk(&report(records), CarMeasure::Makespan, 0.9).unwrap();
        assert_eq!(car.jobs, 10);
        assert!((car.mean - 550.0).abs() < 1e-9);
        assert!((car.value_at_risk - 910.0).abs() < 1e-9);
        assert!((car.expected_shortfall - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_yields_none() {
        assert!(computation_at_risk(&report(vec![]), CarMeasure::Makespan, 0.95).is_none());
    }

    #[test]
    #[should_panic(expected = "level")]
    fn bad_level_panics() {
        let _ = computation_at_risk(&report(vec![]), CarMeasure::Makespan, 1.0);
    }

    #[test]
    fn shortfall_dominates_var_dominates_mean_for_skewed_tails() {
        let mut records: Vec<JobRecord> =
            (0..50).map(|i| completed(i, 100.0, 1e6, 110.0)).collect();
        records.push(completed(99, 100.0, 1e6, 10_000.0)); // one disaster
        let car = computation_at_risk(&report(records), CarMeasure::Makespan, 0.9).unwrap();
        assert!(car.mean < car.value_at_risk || car.value_at_risk <= car.expected_shortfall);
        assert!(car.expected_shortfall >= car.value_at_risk);
    }
}
